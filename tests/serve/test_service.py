"""MatMulService: the deploy/submit/run_stream facade and its telemetry."""

import asyncio

import numpy as np
import pytest

from repro.reservoir import quantize_esn, random_input_weights, random_reservoir
from repro.reservoir.hw_esn import HardwareESN
from repro.serve import CompileCache, MatMulService


def _matrix(seed=0, shape=(16, 12)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-100, 101, size=shape)
    matrix[rng.random(shape) < 0.7] = 0
    return matrix


def _esn(seed=5, dim=18):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, element_sparsity=0.8, rng=rng)
    w_in = random_input_weights(dim, 1, scale=1.0, rng=rng)
    return quantize_esn(w, w_in, weight_width=6, state_width=8)


class TestDeployAndSubmit:
    def test_submitted_requests_are_exact_products(self):
        matrix = _matrix()
        with MatMulService() as service:
            handle = service.deploy(matrix, shards=2)
            vectors = np.random.default_rng(1).integers(-128, 128, size=(9, 16))
            result = asyncio.run(service.submit_many(handle, vectors))
        assert np.array_equal(result, vectors @ matrix)

    def test_single_submit(self):
        matrix = _matrix()
        with MatMulService() as service:
            handle = service.deploy(matrix)
            vector = np.random.default_rng(2).integers(-128, 128, size=16)
            row = asyncio.run(service.submit(handle, vector))
        assert np.array_equal(row, vector @ matrix)

    def test_direct_multiply_path(self):
        matrix = _matrix()
        with MatMulService() as service:
            handle = service.deploy(matrix, shards=3)
            vectors = np.random.default_rng(3).integers(-128, 128, size=(4, 16))
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )

    def test_redeploy_hits_compile_cache(self):
        matrix = _matrix()
        with MatMulService() as service:
            first = service.deploy(matrix, shards=2)
            second = service.deploy(matrix, shards=2)
            assert service.cache.hits == 2  # both shard compiles reused
            assert first.name != second.name
            assert first.matrix_digest == second.matrix_digest

    def test_malformed_submit_fails_fast_without_poisoning_the_batch(self):
        matrix = _matrix()
        with MatMulService(max_delay_s=0.005) as service:
            handle = service.deploy(matrix, shards=2)
            vector = np.random.default_rng(6).integers(-128, 128, size=16)

            async def main():
                results = await asyncio.gather(
                    service.submit(handle, vector),
                    service.submit(handle, np.zeros(7, dtype=np.int64)),
                    return_exceptions=True,
                )
                return results

            ok, err = asyncio.run(main())
        assert np.array_equal(ok, vector @ matrix)
        assert isinstance(err, ValueError)

    def test_deployments_registry(self):
        with MatMulService() as service:
            handle = service.deploy(_matrix(), name="traffic")
            assert service.deployments["traffic"] is handle

    def test_shared_cache_across_services(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        matrix = _matrix()
        with MatMulService(cache=cache) as service:
            service.deploy(matrix)
        assert cache.misses == 1
        # A fresh service over the same persistent directory loads the
        # lowered kernel: no re-planning, no netlist rebuild.
        with MatMulService(cache=CompileCache(directory=tmp_path)) as fresh:
            fresh.deploy(matrix)
            assert fresh.cache.kernel_hits == 1
            assert fresh.cache.misses == 0


class TestProcessBackendDeployment:
    def test_deploy_process_backend_serves_exact_products(self):
        matrix = _matrix()
        with MatMulService() as service:
            handle = service.deploy(matrix, shards=2, backend="process")
            assert handle.sharded.backend == "process"
            vectors = np.random.default_rng(21).integers(-128, 128, size=(9, 16))
            direct = service.multiply(handle, vectors)
            batched = asyncio.run(service.submit_many(handle, vectors))
        assert np.array_equal(direct, vectors @ matrix)
        assert np.array_equal(batched, vectors @ matrix)

    def test_deploy_rejects_unknown_backend(self):
        with MatMulService() as service:
            with pytest.raises(ValueError, match="backend"):
                service.deploy(_matrix(), backend="quantum")

    def test_deploy_without_cache_compiles_privately(self):
        matrix = _matrix()
        with MatMulService() as service:
            handle = service.deploy(matrix, shards=2, use_cache=False)
            assert service.cache.stats()["misses"] == 0
            assert all(s.circuit is not None for s in handle.sharded.shards)

    def test_undeploy_retires_and_rejects_queued_requests(self):
        matrix = _matrix()
        with MatMulService(max_delay_s=5.0) as service:  # deadline never fires
            handle = service.deploy(matrix, name="transient")
            vector = np.random.default_rng(8).integers(-128, 128, size=16)

            async def main():
                task = asyncio.create_task(service.submit(handle, vector))
                await asyncio.sleep(0.01)  # request is queued, not flushed
                service.undeploy(handle)
                return await asyncio.gather(task, return_exceptions=True)

            (result,) = asyncio.run(main())
        assert isinstance(result, RuntimeError)
        assert "retired" in str(result)
        assert "transient" not in service.deployments
        service.undeploy("transient")  # idempotent on unknown names

    def test_undeploy_from_another_thread_rejects_queued_requests(self):
        """Retiring a deployment from an operator thread must marshal the
        rejection onto the coalescing loop, not race it."""
        import threading

        matrix = _matrix()
        with MatMulService(max_delay_s=5.0) as service:
            handle = service.deploy(matrix, name="xthread")
            vector = np.random.default_rng(17).integers(-128, 128, size=16)

            async def main():
                task = asyncio.create_task(service.submit(handle, vector))
                await asyncio.sleep(0.01)
                worker = threading.Thread(target=service.undeploy, args=(handle,))
                worker.start()
                result = await asyncio.gather(task, return_exceptions=True)
                worker.join()
                return result

            (result,) = asyncio.run(main())
        assert isinstance(result, RuntimeError)
        assert "retired" in str(result)


class TestTelemetry:
    def test_snapshot_records_effective_batching_config(self):
        """The deploy-time micro-batching knobs are observable: an
        operator can read the deadline/batch limit a deployment is
        actually running with straight off its snapshot."""
        with MatMulService(max_batch=64, max_delay_s=0.002) as service:
            default = service.deploy(_matrix(), name="default")
            tuned = service.deploy(
                _matrix(1), name="tuned", max_batch=16, max_delay_s=0.01
            )
            assert service.telemetry(default)["batching"] == {
                "max_batch": 64,
                "max_delay_s": 0.002,
            }
            assert service.telemetry(tuned)["batching"] == {
                "max_batch": 16,
                "max_delay_s": 0.01,
            }
            # The batcher itself runs with the same effective values.
            assert tuned.batcher.max_batch == 16
            assert tuned.batcher.max_delay_s == 0.01

    def test_snapshot_reflects_traffic(self):
        matrix = _matrix()
        with MatMulService(max_delay_s=0.001) as service:
            handle = service.deploy(matrix, shards=2)
            vectors = np.random.default_rng(4).integers(-128, 128, size=(12, 16))
            asyncio.run(service.submit_many(handle, vectors))
            snap = service.telemetry(handle)
        assert snap["requests"] == 12
        assert snap["products"] == 12
        assert snap["throughput_rps"] > 0
        assert 0 < snap["latency_s"]["p50"] <= snap["latency_s"]["p99"]
        assert snap["lane_occupancy"] > 0
        assert snap["batcher"]["requests"] == 12
        assert snap["shards"]["shards"] == 2
        assert all(s["calls"] >= 1 for s in snap["shards"]["per_shard"])

    def test_service_wide_snapshot_includes_cache(self):
        with MatMulService() as service:
            service.deploy(_matrix(), name="a")
            snap = service.telemetry()
        assert snap["cache"]["misses"] == 1
        assert "a" in snap["deployments"]


class TestServedReservoir:
    def test_run_stream_batch_matches_hardware_esn(self):
        esn = _esn()
        reference = HardwareESN(esn, scheme="csd", include_input=True)
        rng = np.random.default_rng(7)
        inputs = rng.integers(-100, 101, size=(3, 12, 1))
        with MatMulService() as service:
            handle = service.deploy_esn(esn, include_input=True, shards=2)
            served = service.run_stream(handle, inputs, washout=2)
        assert np.array_equal(served, reference.run_batch(inputs, washout=2))

    def test_run_stream_single_sequence_matches_run(self):
        esn = _esn(seed=8)
        reference = HardwareESN(esn, scheme="csd", include_input=False)
        rng = np.random.default_rng(9)
        inputs = rng.integers(-100, 101, size=20)
        with MatMulService() as service:
            handle = service.deploy_esn(esn, include_input=False, shards=3)
            served = service.run_stream(handle, inputs, washout=3)
        assert np.array_equal(served, reference.run(inputs, washout=3))

    def test_functional_backend_matches_gates(self):
        esn = _esn(seed=10)
        rng = np.random.default_rng(11)
        inputs = rng.integers(-100, 101, size=(2, 8, 1))
        with MatMulService() as service:
            gates = service.deploy_esn(esn, include_input=True, shards=2)
            func = service.deploy_esn(
                esn, include_input=True, served_backend="functional", name="f"
            )
            assert np.array_equal(
                service.run_stream(gates, inputs), service.run_stream(func, inputs)
            )

    def test_run_stream_records_lane_occupancy(self):
        esn = _esn(seed=12)
        rng = np.random.default_rng(13)
        inputs = rng.integers(-100, 101, size=(4, 6, 1))
        with MatMulService() as service:
            handle = service.deploy_esn(esn, include_input=True, max_batch=64)
            service.run_stream(handle, inputs)
            snap = service.telemetry(handle)
        # 6 steps, each one hardware batch of 4 lanes.
        assert snap["batches"] == 6
        assert snap["lane_occupancy"] == pytest.approx(4 / 64)
        assert snap["products"] == 24

    def test_deploy_esn_plans_the_matrix_exactly_once(self, monkeypatch):
        """The serve cache's plan memo feeds both the ServedESN facade and
        the single-shard compile — no double planning of the same bytes."""
        import repro.core.multiplier as multiplier_mod
        import repro.serve.cache as cache_mod

        calls = []
        real_plan_matrix = cache_mod.plan_matrix

        def counting(matrix, *args, **kwargs):
            calls.append(np.asarray(matrix).shape)
            return real_plan_matrix(matrix, *args, **kwargs)

        monkeypatch.setattr(cache_mod, "plan_matrix", counting)
        monkeypatch.setattr(multiplier_mod, "plan_matrix", counting)
        esn = _esn(seed=14)
        with MatMulService() as service:
            service.deploy_esn(esn, include_input=True)
        assert len(calls) == 1

    def test_run_stream_requires_an_esn_deployment(self):
        with MatMulService() as service:
            handle = service.deploy(_matrix())
            with pytest.raises(ValueError, match="deploy_esn"):
                service.run_stream(handle, np.zeros((1, 3, 1), dtype=np.int64))

    def test_rejects_unknown_served_backend(self):
        with MatMulService() as service:
            with pytest.raises(ValueError, match="served_backend"):
                service.deploy_esn(_esn(), served_backend="quantum")
