"""The prewarm compile farm: manifests in, zero-stage deploys out."""

import json

import numpy as np
import pytest

from repro.core.stages import STAGES
from repro.serve import CompileCache
from repro.serve.cache import compile_key
from repro.serve.prewarm import load_manifest, main, prewarm, workload_matrix


def _manifest(store, **overrides):
    manifest = {
        "store": str(store),
        "defaults": {"input_width": 8, "scheme": "csd"},
        "workloads": [
            {
                "name": "sharded-random",
                "random": {
                    "rows": 18,
                    "cols": 15,
                    "width": 7,
                    "element_sparsity": 0.7,
                    "seed": 3,
                },
                "shards": 3,
            },
            {
                "name": "explicit",
                "matrix": [[1, -2, 0], [4, 0, 3]],
                "input_width": 6,
            },
        ],
    }
    manifest.update(overrides)
    return manifest


class TestPrewarm:
    def test_fills_store_through_all_four_stages(self, tmp_path):
        report = prewarm(_manifest(tmp_path / "store"))
        assert report["stages"]["plan"] == 4  # 3 shard pieces + 1 monolith
        assert report["stages"]["build"] == 4
        assert report["stages"]["lower"] == 4
        assert report["stages"]["fuse"] == 4
        sources = [
            k["source"] for w in report["workloads"] for k in w["keys"]
        ]
        assert sources == ["compiled"] * 4
        # The three shard pieces cover the matrix's columns exactly.
        spans = [k["columns"] for k in report["workloads"][0]["keys"]]
        assert spans[0][0] == 0 and spans[-1][1] == 15

    def test_idempotent_second_run_is_zero_stage(self, tmp_path):
        manifest = _manifest(tmp_path / "store")
        prewarm(manifest)
        before = STAGES.snapshot()
        report = prewarm(manifest)
        delta = STAGES.delta(before)
        for stage in ("plan", "build", "lower", "fuse"):
            assert delta.get(stage, 0) == 0
        assert all(
            k["source"] == "kernel"
            for w in report["workloads"]
            for k in w["keys"]
        )

    def test_prewarmed_store_serves_a_fresh_cache_zero_stage(self, tmp_path):
        store = tmp_path / "store"
        prewarm(_manifest(store))
        # A brand-new cache (a fleet server's view) resolves the shard
        # piece by digest alone without running any pipeline stage.
        rng = np.random.default_rng(3)
        from repro.workloads.matrices import element_sparse_matrix

        matrix = element_sparse_matrix(18, 15, 7, 0.7, rng, signed=True)
        piece = matrix[:, 0:5]
        before = STAGES.snapshot()
        entry = CompileCache(directory=store).load_key(
            compile_key(piece, input_width=8, scheme="csd")
        )
        delta = STAGES.delta(before)
        for stage in ("plan", "build", "lower", "fuse"):
            assert delta.get(stage, 0) == 0
        vectors = rng.integers(-128, 128, size=(4, 18))
        assert np.array_equal(
            entry.fast.multiply_batch(vectors), vectors @ piece
        )

    def test_lut_budget_sharding(self, tmp_path):
        manifest = _manifest(tmp_path / "store")
        manifest["workloads"] = [
            {
                "name": "tiled",
                "random": {"rows": 16, "cols": 12, "seed": 1},
                "lut_budget": 800,
            }
        ]
        report = prewarm(manifest)
        keys = report["workloads"][0]["keys"]
        assert keys[0]["columns"][0] == 0 and keys[-1]["columns"][1] == 12

    def test_store_override_beats_manifest(self, tmp_path):
        report = prewarm(
            _manifest(tmp_path / "ignored"), store=tmp_path / "actual"
        )
        assert report["store"].endswith("actual")
        assert (tmp_path / "actual").exists()
        assert not (tmp_path / "ignored").exists()


class TestManifestValidation:
    def test_missing_workloads_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"workloads": []}))
        with pytest.raises(ValueError, match="workload"):
            load_manifest(path)

    def test_matrix_and_random_are_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            workload_matrix({"name": "x", "matrix": [[1]], "random": {}})
        with pytest.raises(ValueError, match="exactly one"):
            workload_matrix({"name": "x"})

    def test_unknown_random_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            workload_matrix(
                {"name": "x", "random": {"rows": 2, "cols": 2, "frobnicate": 1}}
            )

    def test_missing_random_dims_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            workload_matrix({"name": "x", "random": {"rows": 2}})

    def test_shards_and_lut_budget_are_exclusive(self, tmp_path):
        manifest = _manifest(tmp_path / "store")
        manifest["workloads"][0]["lut_budget"] = 100
        with pytest.raises(ValueError, match="not both"):
            prewarm(manifest)

    def test_no_store_anywhere_rejected(self, tmp_path):
        manifest = _manifest(tmp_path / "store")
        del manifest["store"]
        with pytest.raises(ValueError, match="store"):
            prewarm(manifest)


class TestCli:
    def test_main_happy_path(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(_manifest(tmp_path / "store")))
        assert main([str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stages"]["plan"] == 4
        assert (tmp_path / "store" / "index.json").exists()

    def test_main_reports_bad_manifest(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main([str(path)]) == 1
        assert "prewarm:" in capsys.readouterr().err
