"""Shared-store safety: concurrent writers must never corrupt the manifest.

A shard-server fleet mounts one artifact directory; servers, prewarming
farms, and deploying clients all read and write it at once.  The
invariants under test:

* ``index.json`` writes stage to **private** temp names and
  ``os.replace`` into place — a reader never observes a torn manifest,
  and two simultaneous writers cannot interleave bytes in a shared
  temp file;
* a concurrently-rewritten (or vandalized) manifest degrades to an
  empty index that the next bounded store re-adopts from the files —
  never an exception on the deploy path;
* hammering one bounded store from many threads across several cache
  instances leaves a valid manifest that tracks the surviving keys.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.serialize import atomic_write_text, unique_tmp
from repro.serve import CompileCache


def _matrix(seed, shape=(10, 8)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-50, 51, size=shape)
    matrix[rng.random(shape) < 0.5] = 0
    return matrix


class TestUniqueTempNames:
    def test_tmp_names_never_collide(self, tmp_path):
        target = tmp_path / "index.json"
        names = {unique_tmp(target).name for _ in range(64)}
        assert len(names) == 64
        assert all(n.startswith("index.json.") and n.endswith(".tmp") for n in names)

    def test_atomic_write_replaces_completely(self, tmp_path):
        target = tmp_path / "index.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second-longer-content")
        assert target.read_text() == "second-longer-content"
        # No staging debris left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["index.json"]

    def test_failed_write_cleans_its_tmp(self, tmp_path):
        target = tmp_path / "gone" / "index.json"
        with pytest.raises(OSError):
            atomic_write_text(target, "x")


class TestConcurrentManifestWriters:
    def test_many_threads_many_caches_one_store(self, tmp_path):
        store = tmp_path / "store"
        matrices = [_matrix(seed) for seed in range(6)]
        errors = []

        def worker(worker_id):
            try:
                cache = CompileCache(
                    directory=store, max_disk_bytes=10_000_000
                )
                for matrix in matrices:
                    cache.get(matrix, input_width=8, scheme="csd")
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append((worker_id, exc))

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # The manifest is valid JSON and tracks every key's artifacts.
        index = json.loads((store / "index.json").read_text())
        assert index["format_version"] == 1
        assert len(index["entries"]) == len(matrices)
        for stem, entry in index["entries"].items():
            assert entry["bytes"] > 0
            assert (store / f"{stem}.kernel.npz").exists()
        # No abandoned temp files.
        assert not list(store.glob("*.tmp"))

    def test_vandalized_manifest_degrades_and_recovers(self, tmp_path):
        store = tmp_path / "store"
        cache = CompileCache(directory=store, max_disk_bytes=10_000_000)
        cache.get(_matrix(0))
        # Another process rewrites the manifest to garbage mid-flight.
        (store / "index.json").write_text("{torn")
        assert cache.disk_stats()["keys"] == 1  # adopted back from files
        cache.get(_matrix(1))
        index = json.loads((store / "index.json").read_text())
        assert len(index["entries"]) == 2

    def test_concurrent_eviction_is_tolerated(self, tmp_path):
        """A reader whose files a sibling evicted degrades to a miss."""
        store = tmp_path / "store"
        writer = CompileCache(directory=store, max_disk_bytes=10_000_000)
        matrix = _matrix(2)
        writer.get(matrix)
        # A sibling with a tiny budget evicts everything.
        CompileCache(directory=store, max_disk_bytes=1).get(_matrix(3))
        fresh = CompileCache(directory=store)
        entry = fresh.get(matrix)  # recompiles; no exception
        assert entry.source in ("compiled", "disk")
        vectors = np.random.default_rng(4).integers(-128, 128, size=(3, 10))
        assert np.array_equal(
            entry.fast.multiply_batch(vectors), vectors @ matrix
        )
