"""Zero-downtime matrix swap: atomic flip, drain, rollback, telemetry.

The load-bearing claim: ``MatMulService.swap()`` under concurrent
traffic is bit-exact before and after with no dropped or hung requests —
every request resolves to ``vec @ old`` or ``vec @ new``, never a
mixture, never an error — and a fleet LOAD refusal rolls back with the
old matrix still serving.
"""

import asyncio

import numpy as np
import pytest

from repro.serve import MatMulService


def _matrix(seed=0, shape=(12, 10)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-100, 101, size=shape)
    matrix[rng.random(shape) < 0.5] = 0
    return matrix


def _vectors(seed, batch, rows, width=8):
    lo = -(1 << (width - 1))
    return np.random.default_rng(seed).integers(lo, -lo, size=(batch, rows))


class TestSwapSemantics:
    def test_swap_flips_results_digest_and_telemetry(self):
        old, new = _matrix(1), _matrix(2)
        vectors = _vectors(3, 5, 12)
        with MatMulService() as service:
            handle = service.deploy(old, shards=2)
            digest_before = handle.matrix_digest
            assert np.array_equal(service.multiply(handle, vectors), vectors @ old)
            returned = service.swap(handle, new)
            assert returned is handle
            assert handle.matrix_digest != digest_before
            assert np.array_equal(service.multiply(handle, vectors), vectors @ new)
            snap = service.telemetry(handle)
            assert snap["swaps"] == 1
            # The registry still serves the same name.
            assert service.deployments[handle.name] is handle

    def test_swap_by_name_and_column_count_change(self):
        old = _matrix(4, shape=(10, 8))
        new = _matrix(5, shape=(10, 14))  # wider result, same interface
        vectors = _vectors(6, 4, 10)
        with MatMulService() as service:
            handle = service.deploy(old, name="live", shards=2)
            service.swap("live", new)
            out = service.multiply(handle, vectors)
            assert out.shape == (4, 14)
            assert np.array_equal(out, vectors @ new)

    def test_swap_config_overrides_apply(self):
        old, new = _matrix(7), _matrix(8)
        with MatMulService() as service:
            handle = service.deploy(old, shards=2)
            service.swap(handle, new, shards=4)
            assert handle.shard_count == 4
            # The override sticks for the next swap too.
            service.swap(handle, old)
            assert handle.shard_count == 4

    def test_old_executor_is_closed_after_swap(self):
        old, new = _matrix(9), _matrix(10)
        with MatMulService() as service:
            handle = service.deploy(old, shards=2)
            first = handle.sharded
            service.swap(handle, new)
            assert handle.sharded is not first
            assert first._pool is None  # drained and shut down

    def test_swap_rejects_row_count_changes(self):
        with MatMulService() as service:
            handle = service.deploy(_matrix(11, shape=(10, 8)), shards=2)
            with pytest.raises(ValueError, match="rows"):
                service.swap(handle, _matrix(12, shape=(11, 8)))
            # Still serving the original.
            vectors = _vectors(13, 3, 10)
            assert np.array_equal(
                service.multiply(handle, vectors),
                vectors @ _matrix(11, shape=(10, 8)),
            )

    def test_swap_rejects_unknown_and_esn_deployments(self):
        from repro.reservoir import (
            quantize_esn,
            random_input_weights,
            random_reservoir,
        )

        rng = np.random.default_rng(5)
        w = random_reservoir(10, element_sparsity=0.8, rng=rng)
        w_in = random_input_weights(10, 1, scale=1.0, rng=rng)
        esn = quantize_esn(w, w_in, weight_width=6, state_width=8)
        with MatMulService() as service:
            with pytest.raises(KeyError, match="nope"):
                service.swap("nope", _matrix(14))
            handle = service.deploy_esn(esn)
            with pytest.raises(ValueError, match="reservoir"):
                service.swap(handle, _matrix(15, shape=(handle.rows, 8)))


class TestSwapUnderTraffic:
    def test_concurrent_requests_are_bit_exact_and_none_drop(self):
        old, new = _matrix(20), _matrix(21)
        vectors = _vectors(22, 24, 12)

        async def main():
            with MatMulService(max_batch=8, max_delay_s=0.001) as service:
                handle = service.deploy(old, shards=2)
                loop = asyncio.get_running_loop()
                before = [
                    asyncio.create_task(service.submit(handle, vec))
                    for vec in vectors
                ]
                # Let some coalesce, then swap from a worker thread
                # while the batcher keeps flushing.
                await asyncio.sleep(0)
                await loop.run_in_executor(
                    None, lambda: service.swap(handle, new)
                )
                after = [
                    asyncio.create_task(service.submit(handle, vec))
                    for vec in vectors
                ]
                rows_before = await asyncio.gather(*before)
                rows_after = await asyncio.gather(*after)
                return rows_before, rows_after

        rows_before, rows_after = asyncio.run(
            asyncio.wait_for(main(), timeout=60.0)
        )
        # In-flight requests resolve against exactly one of the two
        # matrices — bit-exact either way, never a per-shard mixture.
        for vec, row in zip(vectors, rows_before):
            assert np.array_equal(row, vec @ old) or np.array_equal(
                row, vec @ new
            ), "request resolved to neither matrix exactly"
        # Requests submitted after the swap see only the new matrix.
        for vec, row in zip(vectors, rows_after):
            assert np.array_equal(row, vec @ new)

    def test_swap_over_a_live_fleet_is_bit_exact(self, tmp_path):
        from repro.cluster import ClusterController

        old, new = _matrix(23), _matrix(24)
        vectors = _vectors(25, 6, 12)
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(3)
            with controller.remote_service() as service:
                handle = controller.deploy_fleet(service, old)
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ old
                )
                service.swap(handle, new)
                assert handle.sharded.backend == "remote"
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ new
                )
                # The new executor serves remotely, not via fallback.
                per_shard = handle.sharded.utilization()["per_shard"]
                assert all(p["healthy"] for p in per_shard)
                assert all(p["local_fallbacks"] == 0 for p in per_shard)

    def test_fleet_load_refusal_rolls_back_with_old_still_serving(
        self, tmp_path
    ):
        from repro.cluster import ClusterController, RemoteFault

        old, new = _matrix(26), _matrix(27)
        vectors = _vectors(28, 4, 12)
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(2)
            with controller.remote_service() as service:
                handle = controller.deploy_fleet(service, old)
                digest = handle.matrix_digest
                sharded = handle.sharded
                # Route the new executor's artifacts into a directory
                # the fleet does not read: every server answers the
                # LOAD with unknown-kernel, the swap raises, and
                # nothing flipped.
                elsewhere = tmp_path / "elsewhere"
                elsewhere.mkdir()
                with pytest.raises(RemoteFault, match="unknown-kernel"):
                    service.swap(handle, new, cache=None, store=str(elsewhere))
                assert handle.sharded is sharded
                assert handle.matrix_digest == digest
                assert service.telemetry(handle)["swaps"] == 0
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ old
                )


class TestDrainTimeout:
    """A wedged old executor is force-closed and accounted, never leaked.

    The drain-timeout path used to raise with the old executor still
    open — a worker stuck in a dead socket read kept its pool (and its
    futures) alive forever.  Now the flip stays done, the executor is
    force-closed (``close(wait=False)``), and the abandonment is
    recorded as a ``drain_abandoned`` flight-recorder event.
    """

    def test_wedged_drain_force_closes_and_records(self):
        from repro.obs.recorder import FlightRecorder

        old, new = _matrix(30), _matrix(31)
        vectors = _vectors(32, 3, 12)
        recorder = FlightRecorder()
        with MatMulService(recorder=recorder) as service:
            handle = service.deploy(old, shards=2)
            wedged = handle.sharded
            # Simulate a wedged batch: an in-flight booking that will
            # never return (the real shape: a worker blocked in a read
            # against a dead peer).
            with wedged._inflight_cv:
                wedged._inflight += 1
            with pytest.raises(TimeoutError, match="force-closed"):
                service.swap(handle, new, drain_timeout_s=0.05)
            # The flip happened and STAYS done; the old executor is
            # closed, not leaked.
            assert handle.sharded is not wedged
            assert wedged._pool is None
            assert wedged._remotes == []
            events = recorder.events("drain_abandoned")
            assert len(events) == 1
            assert events[0]["inflight"] == 1
            assert events[0]["deployment"] == handle.name
            # The new executor serves immediately.
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ new
            )
            assert service.telemetry(handle)["swaps"] == 1

    def test_clean_drain_still_closes_gracefully(self):
        old, new = _matrix(33), _matrix(34)
        with MatMulService() as service:
            handle = service.deploy(old, shards=2)
            first = handle.sharded
            service.swap(handle, new, drain_timeout_s=5.0)
            assert first._pool is None  # graceful path unchanged
