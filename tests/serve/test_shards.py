"""ShardedMultiplier: bit-exactness vs the monolithic circuit.

The load-bearing property of the serve layer: splitting a matrix into
column shards and simulating them concurrently must be *bit-exact* with
compiling and simulating the whole matrix at once — across sparsities,
input widths, both recoding schemes, every shard count, and with faults
injected into individual shard netlists.
"""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.tiling import plan_column_tiles
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit
from repro.hwsim.faults import inject_stuck_output
from repro.serve.cache import CompileCache
from repro.serve.shards import ShardedMultiplier, even_column_shards


def _workload(sparsity, input_width, seed=0, rows=20, cols=18, batch=7):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-100, 101, size=(rows, cols))
    matrix[rng.random((rows, cols)) < sparsity] = 0
    lo = -(1 << (input_width - 1))
    hi = (1 << (input_width - 1)) - 1
    vectors = rng.integers(lo, hi + 1, size=(batch, rows))
    return matrix, vectors


class TestEvenColumnShards:
    def test_covers_and_balances(self):
        ranges = even_column_shards(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10

    def test_single_shard(self):
        assert even_column_shards(5, 1) == [(0, 5)]

    def test_one_column_per_shard(self):
        assert even_column_shards(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            even_column_shards(4, 5)
        with pytest.raises(ValueError):
            even_column_shards(4, 0)


class TestShardedBitExactness:
    """The property sweep: sharded output == monolithic FastCircuit output."""

    @pytest.mark.parametrize("sparsity", [0.5, 0.8, 0.95])
    @pytest.mark.parametrize("input_width", [4, 8])
    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    def test_sweep_vs_monolith(self, sparsity, input_width, scheme):
        matrix, vectors = _workload(sparsity, input_width, seed=int(sparsity * 100))
        mono = FastCircuit.from_compiled(
            build_circuit(plan_matrix(matrix, input_width=input_width, scheme=scheme))
        )
        golden = mono.multiply_batch(vectors)
        assert np.array_equal(golden, vectors @ matrix)
        for shards in (2, 3, 5):
            with ShardedMultiplier(
                matrix, shards=shards, input_width=input_width, scheme=scheme
            ) as sharded:
                assert sharded.shard_count == shards
                out = sharded.multiply_batch(vectors)
            assert np.array_equal(out, golden), (sparsity, input_width, scheme, shards)

    def test_single_vector_and_single_shard(self):
        matrix, vectors = _workload(0.8, 8)
        sharded = ShardedMultiplier(matrix, shards=1, input_width=8, scheme="csd")
        assert sharded.shard_count == 1
        assert np.array_equal(sharded.multiply(vectors[0]), vectors[0] @ matrix)

    def test_lut_budget_partitioning_matches_tiling_plan(self):
        matrix, vectors = _workload(0.6, 8, rows=16, cols=24)
        budget = 600
        sharded = ShardedMultiplier(
            matrix, lut_budget=budget, input_width=8, scheme="csd"
        )
        assert sharded.shard_ranges == plan_column_tiles(matrix, budget, scheme="csd")
        assert sharded.shard_count >= 2
        assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)
        sharded.close()

    def test_shards_through_cache_are_reused(self):
        matrix, vectors = _workload(0.8, 8)
        cache = CompileCache()
        a = ShardedMultiplier(matrix, shards=3, cache=cache)
        b = ShardedMultiplier(matrix, shards=3, cache=cache)
        assert cache.hits == 3 and cache.misses == 3
        # Same compiled plan, hence same digest, per shard.
        for sa, sb in zip(a.shards, b.shards):
            assert sa.digest == sb.digest
        assert np.array_equal(b.multiply_batch(vectors), vectors @ matrix)
        a.close()
        b.close()

    def test_rejects_conflicting_partition_args(self):
        matrix, _ = _workload(0.8, 8)
        with pytest.raises(ValueError, match="not both"):
            ShardedMultiplier(matrix, shards=2, lut_budget=5000)

    def test_rejects_wrong_vector_length(self):
        matrix, _ = _workload(0.8, 8)
        sharded = ShardedMultiplier(matrix, shards=2)
        with pytest.raises(ValueError, match="shape"):
            sharded.multiply_batch(np.zeros((3, matrix.shape[0] + 1), dtype=np.int64))
        sharded.close()

    def test_rejects_out_of_range_inputs(self):
        matrix, _ = _workload(0.8, 4)
        sharded = ShardedMultiplier(matrix, shards=2, input_width=4)
        with pytest.raises(ValueError, match="does not fit"):
            sharded.multiply(np.full(matrix.shape[0], 100))
        sharded.close()

    def test_utilization_accounting(self):
        matrix, vectors = _workload(0.8, 8)
        sharded = ShardedMultiplier(matrix, shards=2)
        sharded.multiply_batch(vectors)
        util = sharded.utilization()
        assert util["shards"] == 2
        assert [u["calls"] for u in util["per_shard"]] == [1, 1]
        assert all(u["busy_s"] > 0 for u in util["per_shard"])
        sharded.close()


class TestProcessBackend:
    """backend="process": kernels ship to workers once, batches stream
    through shared memory, and results stay bit-exact with the thread
    backend and the monolith — the acceptance bar of the staged pipeline."""

    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_bit_exact_vs_thread_and_monolith(self, scheme, shards):
        matrix, vectors = _workload(0.6, 8, seed=shards)
        mono = FastCircuit.from_compiled(
            build_circuit(plan_matrix(matrix, input_width=8, scheme=scheme))
        )
        golden = mono.multiply_batch(vectors)
        with ShardedMultiplier(
            matrix, shards=shards, input_width=8, scheme=scheme, backend="thread"
        ) as threaded, ShardedMultiplier(
            matrix, shards=shards, input_width=8, scheme=scheme, backend="process"
        ) as processed:
            via_threads = threaded.multiply_batch(vectors)
            via_processes = processed.multiply_batch(vectors)
        assert np.array_equal(via_threads, golden)
        assert np.array_equal(via_processes, golden)

    def test_single_shard_process_backend(self):
        matrix, vectors = _workload(0.8, 8)
        with ShardedMultiplier(matrix, shards=1, backend="process") as sharded:
            assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)

    def test_per_shard_fault_replays_in_workers(self):
        """Faults injected on the parent's shard netlist reach the worker
        processes through per-call overrides: bit-exact with the same
        fault on the thread backend, confined to the victim's columns."""
        matrix, vectors = _workload(0.5, 8, seed=11)
        golden = vectors @ matrix
        with ShardedMultiplier(
            matrix, shards=3, input_width=8, scheme="csd", backend="process"
        ) as sharded:
            victim = sharded.shards[1]
            fault = inject_stuck_output(
                victim.fast.netlist, victim.circuit.column_probes[0].src, 1
            )
            faulty = sharded.multiply_batch(vectors)
            start, stop = victim.start, victim.stop
            assert np.array_equal(faulty[:, :start], golden[:, :start])
            assert np.array_equal(faulty[:, stop:], golden[:, stop:])
            assert np.all(faulty[:, start] == -1)
            assert not np.array_equal(faulty[:, start:stop], golden[:, start:stop])
            # Reverting restores exactness — the workers see each call's
            # current fault set, not a stale snapshot.
            fault.revert()
            assert np.array_equal(sharded.multiply_batch(vectors), golden)

    def test_utilization_reports_backend_and_worker_time(self):
        matrix, vectors = _workload(0.8, 8)
        with ShardedMultiplier(matrix, shards=2, backend="process") as sharded:
            sharded.multiply_batch(vectors)
            util = sharded.utilization()
        assert util["backend"] == "process"
        assert [u["calls"] for u in util["per_shard"]] == [1, 1]
        assert all(u["busy_s"] > 0 for u in util["per_shard"])

    def test_rejects_unknown_backend(self):
        matrix, _ = _workload(0.8, 8)
        with pytest.raises(ValueError, match="backend"):
            ShardedMultiplier(matrix, shards=2, backend="fpga")

    def test_empty_batch_shape(self):
        matrix, _ = _workload(0.8, 8)
        with ShardedMultiplier(matrix, shards=2, backend="process") as sharded:
            out = sharded.multiply_batch(
                np.zeros((0, matrix.shape[0]), dtype=np.int64)
            )
        assert out.shape == (0, matrix.shape[1])


class TestShardedFaults:
    """Netlist faults injected on one shard stay confined to its columns."""

    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    def test_fault_on_one_shard_is_column_confined(self, scheme):
        matrix, vectors = _workload(0.5, 8, seed=3)
        golden = vectors @ matrix
        sharded = ShardedMultiplier(matrix, shards=3, input_width=8, scheme=scheme)
        victim = sharded.shards[1]
        # Stick the victim shard's first output probe high: its decoded
        # column reads as the all-ones stream while every other shard
        # keeps producing exact results.
        fault = inject_stuck_output(
            victim.fast.netlist, victim.circuit.column_probes[0].src, 1
        )
        faulty = sharded.multiply_batch(vectors)
        start, stop = victim.start, victim.stop
        assert np.array_equal(faulty[:, :start], golden[:, :start])
        assert np.array_equal(faulty[:, stop:], golden[:, stop:])
        # The faulty shard's slice matches the same shard simulated alone
        # (sharding changes *where* the fault lands, never its semantics),
        # and the stuck-high probe decodes to the all-ones value -1.
        standalone = victim.fast.multiply_batch(vectors)
        assert np.array_equal(faulty[:, start:stop], standalone)
        assert np.all(faulty[:, start] == -1)
        assert not np.array_equal(faulty[:, start:stop], golden[:, start:stop])
        # Reverting restores full bit-exactness.
        fault.revert()
        assert np.array_equal(sharded.multiply_batch(vectors), golden)
        sharded.close()
