"""Telemetry primitives: percentile labels, windowed rates, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.serve.telemetry import DeploymentTelemetry, LatencyWindow, RateWindow


class FakeClock:
    """A manually-advanced monotonic clock for rate-window tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPercentileLabels:
    def test_fractional_points_get_distinct_keys(self):
        window = LatencyWindow()
        for value in range(1, 1001):
            window.record(value / 1000.0)
        pct = window.percentiles(99, 99.9)
        # The old f"p{int(p)}" collapsed both onto "p99" and the dict
        # silently kept only one of them.
        assert set(pct) == {"p99", "p99_9"}
        assert pct["p99_9"] > pct["p99"]

    def test_empty_window_keys_match_filled_window_keys(self):
        empty = LatencyWindow().percentiles(50, 99, 99.9)
        assert set(empty) == {"p50", "p99", "p99_9"}
        assert all(v == 0.0 for v in empty.values())

    def test_summary_reports_p99_9(self):
        window = LatencyWindow()
        for value in range(1, 1001):
            window.record(value / 1000.0)
        summary = window.summary()
        assert set(summary) == {"p50", "p99", "p99_9", "samples"}
        assert summary["p50"] <= summary["p99"] <= summary["p99_9"]
        assert summary["samples"] == 1000


class TestRateWindow:
    def test_rate_is_events_over_elapsed_before_window_fills(self):
        clock = FakeClock()
        window = RateWindow(window_s=30.0, bucket_s=1.0, clock=clock)
        for _ in range(10):
            window.record()
        clock.advance(5.0)
        assert window.rate() == pytest.approx(10 / 5.0)

    def test_rate_uses_window_span_once_elapsed(self):
        clock = FakeClock()
        window = RateWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        for _ in range(5):
            window.record(20)
            clock.advance(2.0)
        clock.advance(20.0)  # everything now stale
        assert window.rate() == 0.0

    def test_rate_recovers_current_traffic_after_idle(self):
        clock = FakeClock()
        window = RateWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        window.record(1000)
        clock.advance(100.0)  # long idle: old burst must not linger
        window.record(50)
        assert window.rate() == pytest.approx(50 / 10.0)

    def test_counts_coalesce_within_a_bucket(self):
        clock = FakeClock()
        window = RateWindow(window_s=30.0, bucket_s=1.0, clock=clock)
        for _ in range(100):
            window.record()
        assert window.total == 100
        assert len(window._buckets) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            RateWindow(window_s=0)
        with pytest.raises(ValueError, match="bucket_s"):
            RateWindow(window_s=1.0, bucket_s=2.0)


class TestWindowEdgeCases:
    """The boundary shapes the SLO history leans on (single samples,
    long-idle wraparound) must hold exactly — burn-rate math reads these
    numbers raw."""

    def test_single_sample_percentiles_are_that_sample(self):
        window = LatencyWindow()
        window.record(0.042)
        pct = window.percentiles(50, 99, 99.9)
        assert all(v == pytest.approx(0.042) for v in pct.values())
        summary = window.summary()
        assert summary["samples"] == 1
        assert summary["p50"] == summary["p99_9"] == pytest.approx(0.042)

    def test_tiny_latency_window_keeps_only_the_newest(self):
        window = LatencyWindow(window=1)
        window.record(1.0)
        window.record(2.0)
        assert len(window) == 1
        assert window.percentiles(50)["p50"] == 2.0
        with pytest.raises(ValueError, match="window"):
            LatencyWindow(window=0)

    def test_long_idle_wraps_bucket_ring_on_record(self):
        # After an idle stretch many windows long, the first record must
        # trim every stale bucket — the ring holds one live bucket, and
        # the rate reflects only the new event.
        clock = FakeClock()
        window = RateWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        for _ in range(10):
            window.record(7)
            clock.advance(1.0)
        clock.advance(10_000.0)
        window.record(3)
        assert len(window._buckets) == 1
        assert window.rate() == pytest.approx(3 / 10.0)
        assert window.total == 73  # lifetime counter survives the trim

    def test_rate_query_alone_trims_stale_buckets(self):
        clock = FakeClock()
        window = RateWindow(window_s=5.0, bucket_s=1.0, clock=clock)
        window.record(9)
        clock.advance(6.0)
        assert window.rate() == 0.0
        assert len(window._buckets) == 0


class TestWindowedTelemetryRates:
    def test_snapshot_reports_both_lifetime_and_windowed_throughput(self):
        clock = FakeClock()
        telem = DeploymentTelemetry(clock=clock)
        for _ in range(8):
            telem.record_arrival()
            telem.record_request(0.001)
        clock.advance(4.0)
        snap = telem.snapshot()
        assert snap["throughput_rps"] == pytest.approx(8 / 4.0, rel=1e-3)
        assert snap["throughput_rps_windowed"] == pytest.approx(8 / 4.0, rel=1e-3)
        assert snap["arrival_rate_rps"] == pytest.approx(8 / 4.0, rel=1e-3)

    def test_lifetime_rate_decays_but_windowed_rate_recovers(self):
        # The misleading-throughput bug this release fixes: after a long
        # idle stretch the lifetime quotient is ~0 forever, while the
        # windowed rate reflects the current burst.
        clock = FakeClock()
        telem = DeploymentTelemetry(rate_window_s=10.0, clock=clock)
        for _ in range(100):
            telem.record_request(0.001)
        clock.advance(1000.0)  # an idle quarter hour
        for _ in range(50):
            telem.record_arrival()
            telem.record_request(0.001)
        snap = telem.snapshot()
        assert snap["throughput_rps"] < 1.0  # lifetime never recovers
        assert snap["throughput_rps_windowed"] == pytest.approx(5.0, rel=1e-3)
        assert snap["arrival_rate_rps"] == pytest.approx(5.0, rel=1e-3)

    def test_stream_products_feed_the_windowed_rate(self):
        clock = FakeClock()
        telem = DeploymentTelemetry(rate_window_s=10.0, clock=clock)
        telem.record_products(64)
        snap = telem.snapshot()
        assert snap["throughput_rps_windowed"] == pytest.approx(64.0)


class TestThreadedTelemetry:
    """Concurrent recorders and snapshotters: exact counters, no tears."""

    def test_latency_window_concurrent_record_and_percentiles(self):
        window = LatencyWindow(window=512)
        stop = threading.Event()
        errors: list[Exception] = []

        def snapshotter() -> None:
            try:
                while not stop.is_set():
                    pct = window.percentiles(50, 99, 99.9)
                    assert set(pct) == {"p50", "p99", "p99_9"}
                    window.summary()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=snapshotter) for _ in range(3)]
        for t in readers:
            t.start()
        writers = []
        for _ in range(4):
            def write() -> None:
                for i in range(2000):
                    window.record(i / 1000.0)
            writers.append(threading.Thread(target=write))
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert len(window) == 512  # bounded, fully filled

    def test_deployment_counters_exact_under_concurrency(self):
        telem = DeploymentTelemetry(max_batch=64)
        threads_n, per_thread = 8, 500
        stop = threading.Event()
        torn: list[dict] = []

        def snapshotter() -> None:
            while not stop.is_set():
                snap = telem.snapshot()
                # requests are recorded inside one lock with products:
                # a snapshot must never observe products < requests.
                if snap["products"] < snap["requests"]:
                    torn.append(snap)

        reader = threading.Thread(target=snapshotter)
        reader.start()

        def record() -> None:
            for _ in range(per_thread):
                telem.record_arrival()
                telem.record_request(0.001)
                telem.record_batch(32, engine="fused")

        workers = [threading.Thread(target=record) for _ in range(threads_n)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        reader.join()
        assert torn == []
        snap = telem.snapshot()
        total = threads_n * per_thread
        assert snap["requests"] == total
        assert snap["products"] == total
        assert snap["batches"] == total
        assert snap["engine"]["batches"]["fused"] == total
        assert telem._arrivals.total == total
        assert telem._completions.total == total
