"""MicroBatcher: coalescing, deadlines, ordering, and error paths.

Plain ``asyncio.run`` drivers (no pytest-asyncio in the container); the
execute callable is a numpy matmul so these tests exercise the batching
logic, not the simulator.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.serve.batcher import BatcherStats, MicroBatcher


MATRIX = np.arange(20, dtype=np.int64).reshape(5, 4) - 10


def _execute(batch: np.ndarray) -> np.ndarray:
    return np.asarray(batch, dtype=np.int64) @ MATRIX


def _vectors(n: int, seed=0) -> np.ndarray:
    return np.random.default_rng(seed).integers(-5, 6, size=(n, 5))


class TestCoalescing:
    def test_full_batches_flush_immediately(self):
        batcher = MicroBatcher(_execute, max_batch=4, max_delay_s=60.0)

        async def main():
            vecs = _vectors(8)
            return vecs, await asyncio.gather(*(batcher.submit(v) for v in vecs))

        vecs, rows = asyncio.run(main())
        assert np.array_equal(np.stack(rows), vecs @ MATRIX)
        # A 60 s deadline can't have fired: both flushes were full batches.
        assert batcher.stats.batches == 2
        assert batcher.stats.full_flushes == 2
        assert batcher.stats.deadline_flushes == 0
        assert batcher.stats.requests == 8
        assert batcher.stats.mean_occupancy(4) == 1.0

    def test_deadline_flushes_partial_batch(self):
        batcher = MicroBatcher(_execute, max_batch=64, max_delay_s=0.005)

        async def main():
            vecs = _vectors(3)
            return vecs, await asyncio.gather(*(batcher.submit(v) for v in vecs))

        vecs, rows = asyncio.run(main())
        assert np.array_equal(np.stack(rows), vecs @ MATRIX)
        assert batcher.stats.batches == 1
        assert batcher.stats.deadline_flushes == 1
        assert batcher.stats.mean_occupancy(64) == pytest.approx(3 / 64)

    def test_each_request_gets_its_own_row(self):
        batcher = MicroBatcher(_execute, max_batch=16, max_delay_s=0.001)

        async def main():
            vecs = _vectors(16, seed=2)
            rows = await asyncio.gather(*(batcher.submit(v) for v in vecs))
            return vecs, rows

        vecs, rows = asyncio.run(main())
        for vec, row in zip(vecs, rows):
            assert np.array_equal(row, vec @ MATRIX)

    def test_execution_leaves_the_event_loop_responsive(self):
        """The batch runs in the executor, not on the loop thread."""
        seen_threads = []

        def execute(batch):
            seen_threads.append(threading.current_thread())
            return _execute(batch)

        batcher = MicroBatcher(execute, max_batch=2, max_delay_s=60.0)

        async def main():
            vecs = _vectors(2)
            await asyncio.gather(*(batcher.submit(v) for v in vecs))

        asyncio.run(main())
        assert seen_threads and all(
            t is not threading.main_thread() for t in seen_threads
        )


class TestDrainAndErrors:
    def test_drain_forces_partial_flush(self):
        batcher = MicroBatcher(_execute, max_batch=64, max_delay_s=60.0)

        async def main():
            vecs = _vectors(5)
            pending = [asyncio.ensure_future(batcher.submit(v)) for v in vecs]
            await asyncio.sleep(0)  # let submits enqueue
            await batcher.drain()
            return vecs, await asyncio.gather(*pending)

        vecs, rows = asyncio.run(main())
        assert np.array_equal(np.stack(rows), vecs @ MATRIX)
        assert batcher.stats.forced_flushes == 1
        assert batcher.pending == 0

    def test_execute_failure_propagates_to_every_request(self):
        def explode(batch):
            raise RuntimeError("shard on fire")

        batcher = MicroBatcher(explode, max_batch=2, max_delay_s=60.0)

        async def main():
            vecs = _vectors(2)
            return await asyncio.gather(
                *(batcher.submit(v) for v in vecs), return_exceptions=True
            )

        results = asyncio.run(main())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_stack_failure_fails_the_batch_instead_of_hanging(self):
        """Without a validator, a shape-mismatched vector must reject every
        coalesced future (a regression here = requests hang forever)."""
        batcher = MicroBatcher(_execute, max_batch=2, max_delay_s=60.0)

        async def main():
            good = _vectors(1)[0]
            bad = np.array([1, 2, 3])
            return await asyncio.wait_for(
                asyncio.gather(
                    batcher.submit(good),
                    batcher.submit(bad),
                    return_exceptions=True,
                ),
                timeout=5.0,
            )

        results = asyncio.run(main())
        assert all(isinstance(r, Exception) for r in results)

    def test_validator_rejects_only_the_malformed_request(self):
        def validate(vector):
            if vector.shape != (5,):
                raise ValueError("wrong shape")

        batcher = MicroBatcher(
            _execute, max_batch=2, max_delay_s=0.005, validate=validate
        )

        async def main():
            good = _vectors(1)[0]
            results = await asyncio.gather(
                batcher.submit(good),
                batcher.submit(np.array([1, 2, 3])),
                return_exceptions=True,
            )
            return good, results

        good, (ok, err) = asyncio.run(main())
        assert np.array_equal(ok, good @ MATRIX)  # valid request unharmed
        assert isinstance(err, ValueError)
        assert batcher.stats.requests == 1  # rejected request never enqueued

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(_execute, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(_execute, max_delay_s=-1.0)

    def test_empty_stats(self):
        assert BatcherStats().mean_occupancy(64) == 0.0
