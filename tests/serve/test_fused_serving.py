"""Serving on the fused engine: auto-selection, fallback, warm starts.

The serve layer's contract for the cycle-loop-free engine:

* fault-free deployments resolve ``engine="auto"`` to ``"fused"`` and
  record that per batch in telemetry;
* the moment a deployment has live faults it transparently falls back
  to the bit-plane gate engine — bit-exact with a live-fault gate-level
  simulation — and flips back when the faults are reverted;
* a warm artifact store makes a ``use_cache=True`` deploy perform
  **zero** plan/build/lower/fuse stage executions (proved against
  :data:`repro.core.stages.STAGES`, not timings);
* process-backend shards return results through shared memory (int64
  column slices written in place; >62-bit shards fall back to pickled
  exact integers).
"""

import asyncio

import numpy as np
import pytest

from repro.core.stages import STAGES
from repro.hwsim.faults import inject_stuck_output
from repro.serve import CompileCache, MatMulService
from repro.serve.shards import SERVE_ENGINES, ShardedMultiplier


def _matrix(seed=0, shape=(16, 12)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-100, 101, size=shape)
    matrix[rng.random(shape) < 0.6] = 0
    return matrix


class TestAutoSelection:
    def test_fault_free_deployment_serves_fused(self):
        matrix = _matrix()
        with MatMulService() as service:
            handle = service.deploy(matrix, shards=2)
            assert handle.engine == "auto"
            vectors = np.random.default_rng(1).integers(-128, 128, size=(5, 16))
            assert np.array_equal(service.multiply(handle, vectors), vectors @ matrix)
            snap = service.telemetry(handle)
            assert snap["engine"]["configured"] == "auto"
            assert snap["engine"]["effective"] == "fused:dense"
            assert snap["engine"]["batches"] == {"fused:dense": 1}

    def test_micro_batched_path_records_fused(self):
        matrix = _matrix(2)
        with MatMulService() as service:
            handle = service.deploy(matrix)
            vectors = np.random.default_rng(3).integers(-128, 128, size=(6, 16))
            result = asyncio.run(service.submit_many(handle, vectors))
            assert np.array_equal(result, vectors @ matrix)
            assert (
                service.telemetry(handle)["engine"]["effective"] == "fused:dense"
            )

    def test_explicit_engine_pin_overrides_auto(self):
        matrix = _matrix(4)
        with MatMulService() as service:
            handle = service.deploy(matrix, engine="bitplane")
            vectors = np.random.default_rng(5).integers(-128, 128, size=(4, 16))
            assert np.array_equal(service.multiply(handle, vectors), vectors @ matrix)
            snap = service.telemetry(handle)
            assert snap["engine"]["configured"] == "bitplane"
            assert snap["engine"]["batches"] == {"bitplane": 1}

    def test_rejects_unknown_engines(self):
        with MatMulService() as service:
            with pytest.raises(ValueError, match="engine"):
                service.deploy(_matrix(6), engine="quantum")
        with pytest.raises(ValueError, match="engine"):
            MatMulService(engine="quantum")

    def test_served_esn_rollout_records_fused(self):
        from repro.reservoir import (
            quantize_esn,
            random_input_weights,
            random_reservoir,
        )

        rng = np.random.default_rng(7)
        w = random_reservoir(14, element_sparsity=0.8, rng=rng)
        w_in = random_input_weights(14, 1, scale=1.0, rng=rng)
        esn = quantize_esn(w, w_in, weight_width=6, state_width=8)
        with MatMulService() as service:
            handle = service.deploy_esn(esn, shards=2)
            inputs = rng.integers(-100, 101, size=(20, 1))
            states = service.run_stream(handle, inputs)
            assert states.shape == (20, 14)
            effective = service.telemetry(handle)["engine"]["effective"]
            assert effective.startswith("fused:")


class TestFaultFallback:
    def test_faulted_deployment_selects_bitplane_and_matches_gate_sim(self):
        matrix = _matrix(8)
        with MatMulService() as service:
            # use_cache=False: fault injection needs live shard netlists.
            handle = service.deploy(matrix, shards=2, use_cache=False)
            vectors = np.random.default_rng(9).integers(-128, 128, size=(5, 16))
            clean = service.multiply(handle, vectors)
            assert np.array_equal(clean, vectors @ matrix)
            assert (
                service.telemetry(handle)["engine"]["effective"] == "fused:dense"
            )

            shard = handle.sharded.shards[0]
            injection = inject_stuck_output(
                shard.circuit.netlist, shard.circuit.column_probes[0].src, 1
            )
            assert handle.sharded.has_faults()
            assert handle.sharded.resolve_engine("auto") == "bitplane"
            faulty = service.multiply(handle, vectors)
            assert service.telemetry(handle)["engine"]["effective"] == "bitplane"
            assert not np.array_equal(faulty, clean)
            # Oracle: the seed per-vector gate engine, fault honoured live.
            expected = np.concatenate(
                [
                    s.fast.multiply_batch(vectors, engine="scalar")
                    for s in handle.sharded.shards
                ],
                axis=1,
            )
            assert np.array_equal(faulty, expected)

            injection.revert()
            # Faults gone: auto flips back to fused, results recover.
            assert handle.sharded.resolve_engine("auto") == "fused"
            assert np.array_equal(service.multiply(handle, vectors), clean)
            assert (
                service.telemetry(handle)["engine"]["effective"] == "fused:dense"
            )
            assert service.telemetry(handle)["engine"]["batches"]["bitplane"] == 1

    def test_race_between_resolution_and_execution_falls_back(self, monkeypatch):
        """A fault landing after "auto" resolved to fused must not fail
        the batch: the serve layer retries on the gate engine."""
        from repro.serve.service import _resolved_multiply

        matrix = _matrix(22)
        with MatMulService() as service:
            handle = service.deploy(matrix, shards=2, use_cache=False)
            shard = handle.sharded.shards[0]
            inject_stuck_output(
                shard.circuit.netlist, shard.circuit.column_probes[0].src, 1
            )
            # Simulate the stale resolution: "auto" still reports fused
            # even though the fault has already landed.
            monkeypatch.setattr(
                handle.sharded,
                "resolve_engine",
                lambda engine="auto": "fused" if engine == "auto" else engine,
            )
            vectors = np.random.default_rng(23).integers(-128, 128, size=(3, 16))
            effective, out = _resolved_multiply(handle.sharded, "auto", vectors)
            assert effective == "bitplane"
            expected = np.concatenate(
                [
                    s.fast.multiply_batch(vectors, engine="scalar")
                    for s in handle.sharded.shards
                ],
                axis=1,
            )
            assert np.array_equal(out, expected)

    def test_forcing_fused_on_a_faulted_deployment_raises(self):
        matrix = _matrix(10)
        with MatMulService() as service:
            handle = service.deploy(matrix, use_cache=False)
            shard = handle.sharded.shards[0]
            inject_stuck_output(
                shard.circuit.netlist, shard.circuit.column_probes[0].src, 1
            )
            vectors = np.random.default_rng(11).integers(-128, 128, size=(2, 16))
            with pytest.raises(ValueError, match="fused"):
                service.multiply(handle, vectors, engine="fused")


class TestWarmStartContract:
    def test_warm_disk_deploy_runs_zero_pipeline_stages(self, tmp_path):
        """The acceptance bar: plan == build == lower == fuse == 0."""
        matrix = _matrix(12)
        with MatMulService(cache=CompileCache(directory=tmp_path)) as warmer:
            warmer.deploy(matrix, shards=2)
        before = STAGES.snapshot()
        cache = CompileCache(directory=tmp_path)
        with MatMulService(cache=cache) as service:
            handle = service.deploy(matrix, shards=2)
            delta = STAGES.delta(before)
            for stage in ("plan", "build", "lower", "fuse", "codegen"):
                assert delta.get(stage, 0) == 0, (stage, delta)
            # Both shard lookups were kernel hits with persisted schedules.
            assert cache.kernel_hits == 2
            assert cache.fused_hits == 2
            assert cache.stats()["fused_hits"] == 2
            vectors = np.random.default_rng(13).integers(-128, 128, size=(4, 16))
            assert np.array_equal(service.multiply(handle, vectors), vectors @ matrix)
            assert (
                service.telemetry(handle)["engine"]["effective"] == "fused:dense"
            )

    def test_pre_fused_store_backfills_the_schedule_artifact(self, tmp_path):
        """Stores written before the fused artifact existed re-fuse from
        the kernel once and persist the schedule for the next deploy."""
        matrix = _matrix(14)
        cache = CompileCache(directory=tmp_path)
        key = cache.get(matrix).key
        (tmp_path / key.fused_filename).unlink()
        before = STAGES.snapshot()
        second = CompileCache(directory=tmp_path)
        entry = second.get(matrix)
        assert entry.source == "kernel"
        delta = STAGES.delta(before)
        assert delta.get("build", 0) == 0 and delta.get("lower", 0) == 0
        assert delta.get("fuse") == 1  # re-fused from the loaded kernel
        assert second.fused_hits == 0
        assert (tmp_path / key.fused_filename).exists()
        third = CompileCache(directory=tmp_path)
        before = STAGES.snapshot()
        third.get(matrix)
        assert STAGES.delta(before).get("fuse", 0) == 0
        assert third.fused_hits == 1

    def test_stale_fused_artifact_is_refused_and_rebuilt(self, tmp_path):
        """A schedule whose fingerprint does not match the plan is never
        executed — it is re-fused from the verified kernel instead."""
        from repro.core.serialize import fused_from_npz, fused_to_npz

        a, b = _matrix(15), _matrix(16)
        cache = CompileCache(directory=tmp_path)
        key_a = cache.get(a).key
        key_b = cache.get(b).key
        foreign = fused_from_npz(tmp_path / key_b.fused_filename)
        fused_to_npz(foreign, tmp_path / key_a.fused_filename)
        fresh = CompileCache(directory=tmp_path)
        entry = fresh.get(a)
        assert entry.fused.fingerprint == entry.kernel.fingerprint
        vectors = np.random.default_rng(17).integers(-128, 128, size=(3, 16))
        assert np.array_equal(
            entry.fast.multiply_batch(vectors, engine="fused"), vectors @ a
        )


class TestProcessBackendResults:
    def test_shared_memory_result_path_is_bit_exact(self):
        matrix = _matrix(18, shape=(12, 10))
        vectors = np.random.default_rng(19).integers(-128, 128, size=(5, 12))
        with ShardedMultiplier(matrix, shards=3, backend="process") as sharded:
            out = sharded.multiply_batch(vectors)  # auto -> fused in workers
            assert out.dtype == np.int64
            assert np.array_equal(out, vectors @ matrix)
            # And on an explicit gate engine through the same result path.
            assert np.array_equal(
                sharded.multiply_batch(vectors, engine="bitplane"),
                vectors @ matrix,
            )

    def test_wide_shards_fall_back_to_pickled_exact_integers(self):
        rng = np.random.default_rng(20)
        matrix = np.hstack(
            [
                rng.integers(-2, 3, size=(30, 2)),  # narrow columns
                rng.integers(-(2**18), 2**18, size=(30, 2)),  # wide columns
            ]
        )
        with ShardedMultiplier(
            matrix, shards=2, input_width=40, backend="process"
        ) as sharded:
            widths = [s.fast.kernel.result_width for s in sharded.shards]
            assert widths[0] <= 62 < widths[1]  # a genuinely mixed fleet
            vectors = rng.integers(-(2**30), 2**30, size=(3, 30))
            out = sharded.multiply_batch(vectors)
            assert out.dtype == object
            golden = [
                sum(int(vectors[b, r]) * int(matrix[r, j]) for r in range(30))
                for b in range(3)
                for j in range(4)
            ]
            assert [int(x) for x in out.ravel()] == golden

    def test_engine_registry(self):
        assert SERVE_ENGINES == ("auto", "scalar", "batched", "bitplane", "fused")
        matrix = _matrix(21)
        with ShardedMultiplier(matrix, shards=2) as sharded:
            with pytest.raises(ValueError, match="engine"):
                sharded.multiply_batch(np.zeros((1, 16)), engine="quantum")
