"""Admission control and deadline propagation, end to end.

The overload contract: excess load is rejected *immediately* with a
stable error (``QuotaExceeded`` / ``QueueFull``), expired requests are
dropped at flush time instead of executing (``DeadlineExceeded``), and
every shed outcome is accounted exactly — telemetry counters with a
per-tenant breakdown, ``request_shed`` flight-recorder events, and the
service-wide admission snapshot.  Time-dependent logic (token buckets)
runs under a hand-cranked fake clock: no test here sleeps on quota.
"""

import asyncio

import numpy as np
import pytest

from repro.obs.recorder import FlightRecorder
from repro.serve import (
    AdmissionController,
    DeadlineExceeded,
    MatMulService,
    QueueFull,
    QuotaExceeded,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _matrix(seed=0, shape=(10, 8)):
    return np.random.default_rng(seed).integers(-50, 51, size=shape)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_default_burst_is_one_seconds_quota(self):
        assert TokenBucket(5.0).burst == 5.0
        assert TokenBucket(0.25).burst == 1.0  # minimum one request

    @pytest.mark.parametrize("kwargs", [
        {"rate_rps": 0.0},
        {"rate_rps": -1.0},
        {"rate_rps": 1.0, "burst": 0.5},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)


class TestAdmissionController:
    def test_bounded_queue_sheds_past_capacity(self):
        admission = AdmissionController(max_queue_depth=2)
        admission.admit("a")
        admission.admit("b")
        with pytest.raises(QueueFull) as info:
            admission.admit("c")
        assert info.value.reason == "queue_full"
        assert info.value.tenant == "c"
        admission.release("a")
        admission.admit("c")  # a released slot is admittable again
        assert admission.outstanding == 2
        assert admission.queue_rejections == 1

    def test_queue_bound_checked_before_quota(self):
        # A full queue must not also drain the tenant's bucket: the
        # rejected burst would otherwise pay twice.
        clock = FakeClock()
        admission = AdmissionController(
            max_queue_depth=1, tenant_rate_rps=5.0, clock=clock
        )
        admission.admit("t")
        before = admission.snapshot()["tenants"]["t"]["tokens"]
        with pytest.raises(QueueFull):
            admission.admit("t")
        assert admission.snapshot()["tenants"]["t"]["tokens"] == before
        assert admission.quota_rejections == 0

    def test_per_tenant_quota_isolates_noisy_neighbor(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_queue_depth=100, tenant_rate_rps=1.0, tenant_burst=2.0,
            clock=clock,
        )
        admission.admit("noisy")
        admission.admit("noisy")
        with pytest.raises(QuotaExceeded) as info:
            admission.admit("noisy")
        assert info.value.reason == "quota"
        assert info.value.tenant == "noisy"
        # The quiet tenant's bucket is untouched.
        admission.admit("quiet")
        clock.advance(1.0)
        admission.admit("noisy")  # refilled at 1/s
        assert admission.quota_rejections == 1

    def test_set_quota_overrides_and_exempts(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_queue_depth=100, tenant_rate_rps=1.0, clock=clock
        )
        admission.set_quota("vip", None)        # exempt
        admission.set_quota("tight", 1.0, 1.0)  # one request per second
        for _ in range(50):
            admission.admit("vip")
        admission.admit("tight")
        with pytest.raises(QuotaExceeded):
            admission.admit("tight")
        snap = admission.snapshot()
        assert snap["tenants"]["vip"] is None
        assert snap["tenants"]["tight"]["rate_rps"] == 1.0
        assert snap["admitted"] == 51
        assert snap["outstanding"] == 51

    def test_no_default_quota_means_queue_only(self):
        admission = AdmissionController(max_queue_depth=3)
        for _ in range(3):
            admission.admit("anyone")
        with pytest.raises(QueueFull):
            admission.admit("anyone")

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)


class TestServiceAdmission:
    """Through the MatMulService facade: shed errors, exact accounting."""

    def test_quota_shed_is_counted_and_recorded(self, tmp_path):
        clock = FakeClock()
        recorder = FlightRecorder()
        admission = AdmissionController(
            max_queue_depth=64, tenant_rate_rps=1.0, tenant_burst=1.0,
            clock=clock,
        )
        matrix = _matrix()
        with MatMulService(
            admission=admission, recorder=recorder, max_delay_s=0.001
        ) as service:
            handle = service.deploy(matrix, use_cache=False)

            async def drive():
                good = await service.submit(
                    handle, np.arange(10), tenant="acme"
                )
                with pytest.raises(QuotaExceeded):
                    await service.submit(handle, np.arange(10), tenant="acme")
                return good

            good = asyncio.run(drive())
            assert np.array_equal(good, np.arange(10) @ matrix)
            snap = handle.telemetry.snapshot()
            assert snap["requests"] == 1
            assert snap["arrivals"] == 2
            assert snap["admission"]["quota_rejections"] == 1
            assert snap["admission"]["sheds"] == 0
            assert snap["admission"]["per_tenant"]["acme"]["quota"] == 1
            sheds = [e for e in recorder.events() if e["kind"] == "request_shed"]
            assert len(sheds) == 1
            assert sheds[0]["tenant"] == "acme"
            assert sheds[0]["reason"] == "quota"
            doc = service.telemetry()
            assert doc["admission"]["quota_rejections"] == 1
            assert doc["admission"]["outstanding"] == 0  # slot released

    def test_queue_full_shed(self):
        recorder = FlightRecorder()
        admission = AdmissionController(max_queue_depth=1)
        matrix = _matrix(1)
        with MatMulService(
            admission=admission, recorder=recorder, max_delay_s=0.001
        ) as service:
            handle = service.deploy(matrix, use_cache=False)
            admission.admit("wedged")  # occupy the only slot
            with pytest.raises(QueueFull):
                asyncio.run(service.submit(handle, np.arange(10)))
            admission.release("wedged")
            snap = handle.telemetry.snapshot()
            assert snap["admission"]["sheds"] == 1
            assert snap["admission"]["per_tenant"]["default"]["queue_full"] == 1
            # The slot freed up: traffic flows again.
            row = asyncio.run(service.submit(handle, np.arange(10)))
            assert np.array_equal(row, np.arange(10) @ matrix)

    def test_expired_deadline_fails_at_flush_not_executes(self):
        recorder = FlightRecorder()
        matrix = _matrix(2)
        with MatMulService(recorder=recorder, max_delay_s=0.005) as service:
            handle = service.deploy(matrix, use_cache=False)
            # deadline_s=0: already expired when the flush samples the
            # clock, deterministically.
            with pytest.raises(DeadlineExceeded):
                asyncio.run(
                    service.submit(handle, np.arange(10), deadline_s=0.0)
                )
            snap = handle.telemetry.snapshot()
            assert snap["admission"]["expired"] == 1
            assert snap["admission"]["per_tenant"]["default"]["expired"] == 1
            assert handle.batcher.stats.expired == 1
            assert handle.batcher.stats.batches == 0  # never dispatched
            assert snap["requests"] == 0
            kinds = [e["kind"] for e in recorder.events()]
            assert "request_shed" in kinds
            # A generous deadline executes normally.
            row = asyncio.run(
                service.submit(handle, np.arange(10), deadline_s=30.0)
            )
            assert np.array_equal(row, np.arange(10) @ matrix)

    def test_mixed_batch_expired_dropped_live_served(self):
        """One flush holding both expired and live requests serves the
        live ones bit-exactly and fails only the expired ones."""
        matrix = _matrix(3)
        with MatMulService(max_delay_s=0.02, max_batch=8) as service:
            handle = service.deploy(matrix, use_cache=False)
            vectors = np.arange(30, dtype=np.int64).reshape(3, 10) % 7 - 3

            async def drive():
                live = [
                    asyncio.ensure_future(
                        service.submit(handle, vec, deadline_s=30.0)
                    )
                    for vec in vectors
                ]
                dead = asyncio.ensure_future(
                    service.submit(handle, vectors[0], deadline_s=0.0)
                )
                return await asyncio.gather(
                    *live, dead, return_exceptions=True
                )

            *rows, expired = asyncio.run(drive())
            assert isinstance(expired, DeadlineExceeded)
            assert np.array_equal(np.stack(rows), vectors @ matrix)
            assert handle.batcher.stats.expired == 1

    def test_reconciliation_arrivals_equal_outcomes(self):
        """offered == served + quota + queue_full + expired, exactly."""
        clock = FakeClock()
        admission = AdmissionController(
            max_queue_depth=64, tenant_rate_rps=2.0, tenant_burst=2.0,
            clock=clock,
        )
        matrix = _matrix(4)
        with MatMulService(admission=admission, max_delay_s=0.001) as service:
            handle = service.deploy(matrix, use_cache=False)

            async def drive():
                outcomes = {"ok": 0, "quota": 0, "expired": 0}
                for k in range(8):
                    deadline = 0.0 if k % 4 == 3 else 30.0
                    try:
                        await service.submit(
                            handle, np.arange(10), tenant="t",
                            deadline_s=deadline,
                        )
                        outcomes["ok"] += 1
                    except QuotaExceeded:
                        outcomes["quota"] += 1
                    except DeadlineExceeded:
                        outcomes["expired"] += 1
                return outcomes

            outcomes = asyncio.run(drive())
            snap = handle.telemetry.snapshot()
            admitted = snap["admission"]
            assert snap["arrivals"] == 8
            assert outcomes["ok"] == snap["requests"]
            assert outcomes["quota"] == admitted["quota_rejections"]
            assert outcomes["expired"] == admitted["expired"]
            assert (
                snap["requests"]
                + admitted["sheds"]
                + admitted["quota_rejections"]
                + admitted["expired"]
                == snap["arrivals"]
            )
