"""CompileCache: content-addressed keys, LRU policy, disk persistence."""

import json

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.serialize import (
    matrix_digest,
    plan_fingerprint,
    plan_from_dict,
    plan_to_dict,
)
from repro.hwsim.builder import build_circuit
from repro.serve.cache import CompileCache, compile_key


def _matrix(seed=0, shape=(12, 10)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-50, 51, size=shape)
    matrix[rng.random(shape) < 0.7] = 0
    return matrix


class TestDigests:
    def test_matrix_digest_is_content_addressed(self):
        m = _matrix()
        assert matrix_digest(m) == matrix_digest(m.copy())
        assert matrix_digest(m) == matrix_digest(np.asfortranarray(m))
        assert matrix_digest(m) == matrix_digest(m.astype(np.int32))
        changed = m.copy()
        changed[0, 0] += 1
        assert matrix_digest(m) != matrix_digest(changed)

    def test_matrix_digest_distinguishes_shape(self):
        flat = np.arange(12).reshape(3, 4)
        assert matrix_digest(flat) != matrix_digest(flat.reshape(4, 3))

    def test_matrix_digest_rejects_non_2d(self):
        with pytest.raises(ValueError):
            matrix_digest(np.arange(5))

    def test_plan_fingerprint_survives_serialization_round_trip(self):
        plan = plan_matrix(_matrix(), input_width=8, scheme="csd")
        clone = plan_from_dict(plan_to_dict(plan))
        assert plan_fingerprint(clone) == plan_fingerprint(plan)

    def test_plan_fingerprint_tracks_compile_options(self):
        m = _matrix()
        base = plan_fingerprint(plan_matrix(m, input_width=8, scheme="csd"))
        assert base != plan_fingerprint(plan_matrix(m, input_width=6, scheme="csd"))
        assert base != plan_fingerprint(plan_matrix(m, input_width=8, scheme="pn"))
        assert base != plan_fingerprint(
            plan_matrix(m, input_width=8, scheme="csd", tree_style="padded")
        )

    def test_compiled_circuit_digest_is_the_plan_fingerprint(self):
        plan = plan_matrix(_matrix(), input_width=8, scheme="csd")
        circuit = build_circuit(plan)
        assert circuit.digest == plan.fingerprint() == plan_fingerprint(plan)

    def test_compile_key_fields(self):
        m = _matrix()
        key = compile_key(m, input_width=8, scheme="csd", tree_style="compact")
        assert key.matrix_digest == matrix_digest(m)
        assert key == compile_key(m.copy(), 8, "csd", "compact")
        assert key != compile_key(m, 8, "pn", "compact")
        assert key.filename.endswith(".plan.json")


class TestCompileCache:
    def test_memory_hits_share_compiled_objects(self):
        cache = CompileCache()
        m = _matrix()
        first = cache.get(m)
        second = cache.get(m.copy())
        assert first.source == "compiled"
        assert second.source == "memory"
        assert second.fast is first.fast
        assert second.circuit is first.circuit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_distinct_options_are_distinct_entries(self):
        cache = CompileCache()
        m = _matrix()
        cache.get(m, input_width=8)
        cache.get(m, input_width=6)
        cache.get(m, scheme="pn")
        assert cache.misses == 3 and cache.hits == 0
        assert len(cache) == 3

    def test_lru_eviction(self):
        cache = CompileCache(capacity=2)
        a, b, c = _matrix(1), _matrix(2), _matrix(3)
        cache.get(a)
        cache.get(b)
        cache.get(a)  # refresh a; b is now least recently used
        cache.get(c)  # evicts b
        assert len(cache) == 2
        cache.get(b)
        assert cache.misses == 4  # a, b, c, then b again after eviction

    def test_result_is_the_correct_circuit(self):
        cache = CompileCache()
        m = _matrix()
        entry = cache.get(m, input_width=8, scheme="csd")
        rng = np.random.default_rng(9)
        vectors = rng.integers(-128, 128, size=(5, m.shape[0]))
        assert np.array_equal(entry.fast.multiply_batch(vectors), vectors @ m)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)


class TestDiskPersistence:
    def test_fresh_process_loads_plan_from_disk(self, tmp_path):
        m = _matrix()
        warm = CompileCache(directory=tmp_path)
        first = warm.get(m)
        assert first.source == "compiled"
        assert list(tmp_path.glob("*.plan.json"))

        # A new cache instance (fresh process) skips re-planning.
        cold = CompileCache(directory=tmp_path)
        loaded = cold.get(m)
        assert loaded.source == "disk"
        assert cold.disk_hits == 1 and cold.misses == 0
        assert loaded.fingerprint == first.fingerprint
        rng = np.random.default_rng(4)
        vectors = rng.integers(-128, 128, size=(3, m.shape[0]))
        assert np.array_equal(loaded.fast.multiply_batch(vectors), vectors @ m)

    def test_corrupt_artifact_falls_back_to_compile(self, tmp_path):
        m = _matrix()
        CompileCache(directory=tmp_path).get(m)
        artifact = next(tmp_path.glob("*.plan.json"))
        artifact.write_text("{not json")
        cache = CompileCache(directory=tmp_path)
        entry = cache.get(m)
        assert entry.source == "compiled"
        assert cache.misses == 1 and cache.disk_hits == 0

    def test_tampered_plan_is_rejected_by_fingerprint(self, tmp_path):
        m = _matrix()
        CompileCache(directory=tmp_path).get(m)
        artifact = next(tmp_path.glob("*.plan.json"))
        payload = json.loads(artifact.read_text())
        payload["plan"]["positive"][0][0] += 1
        artifact.write_text(json.dumps(payload))
        cache = CompileCache(directory=tmp_path)
        assert cache.get(m).source == "compiled"
