"""CompileCache: content-addressed keys, LRU policy, disk persistence."""

import json

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.serialize import (
    matrix_digest,
    plan_fingerprint,
    plan_from_dict,
    plan_to_dict,
)
from repro.core.stages import STAGES
from repro.hwsim.builder import build_circuit
from repro.serve.cache import CompileCache, compile_key


def _matrix(seed=0, shape=(12, 10)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-50, 51, size=shape)
    matrix[rng.random(shape) < 0.7] = 0
    return matrix


class TestDigests:
    def test_matrix_digest_is_content_addressed(self):
        m = _matrix()
        assert matrix_digest(m) == matrix_digest(m.copy())
        assert matrix_digest(m) == matrix_digest(np.asfortranarray(m))
        assert matrix_digest(m) == matrix_digest(m.astype(np.int32))
        changed = m.copy()
        changed[0, 0] += 1
        assert matrix_digest(m) != matrix_digest(changed)

    def test_matrix_digest_distinguishes_shape(self):
        flat = np.arange(12).reshape(3, 4)
        assert matrix_digest(flat) != matrix_digest(flat.reshape(4, 3))

    def test_matrix_digest_rejects_non_2d(self):
        with pytest.raises(ValueError):
            matrix_digest(np.arange(5))

    def test_plan_fingerprint_survives_serialization_round_trip(self):
        plan = plan_matrix(_matrix(), input_width=8, scheme="csd")
        clone = plan_from_dict(plan_to_dict(plan))
        assert plan_fingerprint(clone) == plan_fingerprint(plan)

    def test_plan_fingerprint_tracks_compile_options(self):
        m = _matrix()
        base = plan_fingerprint(plan_matrix(m, input_width=8, scheme="csd"))
        assert base != plan_fingerprint(plan_matrix(m, input_width=6, scheme="csd"))
        assert base != plan_fingerprint(plan_matrix(m, input_width=8, scheme="pn"))
        assert base != plan_fingerprint(
            plan_matrix(m, input_width=8, scheme="csd", tree_style="padded")
        )

    def test_compiled_circuit_digest_is_the_plan_fingerprint(self):
        plan = plan_matrix(_matrix(), input_width=8, scheme="csd")
        circuit = build_circuit(plan)
        assert circuit.digest == plan.fingerprint() == plan_fingerprint(plan)

    def test_compile_key_fields(self):
        m = _matrix()
        key = compile_key(m, input_width=8, scheme="csd", tree_style="compact")
        assert key.matrix_digest == matrix_digest(m)
        assert key == compile_key(m.copy(), 8, "csd", "compact")
        assert key != compile_key(m, 8, "pn", "compact")
        assert key.filename.endswith(".plan.json")


class TestCompileCache:
    def test_memory_hits_share_compiled_objects(self):
        cache = CompileCache()
        m = _matrix()
        first = cache.get(m)
        second = cache.get(m.copy())
        assert first.source == "compiled"
        assert second.source == "memory"
        assert second.fast is first.fast
        assert second.circuit is first.circuit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_distinct_options_are_distinct_entries(self):
        cache = CompileCache()
        m = _matrix()
        cache.get(m, input_width=8)
        cache.get(m, input_width=6)
        cache.get(m, scheme="pn")
        assert cache.misses == 3 and cache.hits == 0
        assert len(cache) == 3

    def test_lru_eviction(self):
        cache = CompileCache(capacity=2)
        a, b, c = _matrix(1), _matrix(2), _matrix(3)
        cache.get(a)
        cache.get(b)
        cache.get(a)  # refresh a; b is now least recently used
        cache.get(c)  # evicts b
        assert len(cache) == 2
        cache.get(b)
        assert cache.misses == 4  # a, b, c, then b again after eviction

    def test_result_is_the_correct_circuit(self):
        cache = CompileCache()
        m = _matrix()
        entry = cache.get(m, input_width=8, scheme="csd")
        rng = np.random.default_rng(9)
        vectors = rng.integers(-128, 128, size=(5, m.shape[0]))
        assert np.array_equal(entry.fast.multiply_batch(vectors), vectors @ m)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)


class TestDiskPersistence:
    def test_fresh_process_loads_kernel_from_disk(self, tmp_path):
        """A warm artifact store serves the *kernel*: no planning, no
        netlist build, no lowering — asserted via the stage counters."""
        m = _matrix()
        warm = CompileCache(directory=tmp_path)
        first = warm.get(m)
        assert first.source == "compiled"
        assert list(tmp_path.glob("*.plan.json"))
        assert list(tmp_path.glob("*.kernel.npz"))

        cold = CompileCache(directory=tmp_path)
        before = STAGES.snapshot()
        loaded = cold.get(m)
        delta = STAGES.delta(before)
        assert loaded.source == "kernel"
        assert cold.kernel_hits == 1 and cold.misses == 0
        assert delta.get("plan", 0) == 0
        assert delta.get("build", 0) == 0
        assert delta.get("lower", 0) == 0
        assert loaded.circuit is None  # no netlist was ever constructed
        assert loaded.fingerprint == first.fingerprint
        assert loaded.kernel.equivalent(first.kernel)
        rng = np.random.default_rng(4)
        vectors = rng.integers(-128, 128, size=(3, m.shape[0]))
        assert np.array_equal(loaded.fast.multiply_batch(vectors), vectors @ m)

    def test_plan_survives_without_kernel(self, tmp_path):
        """Dropping the kernel artifact degrades to the plan-hit path:
        re-planning is skipped, only the mechanical build re-runs."""
        m = _matrix()
        CompileCache(directory=tmp_path).get(m)
        next(tmp_path.glob("*.kernel.npz")).unlink()
        cold = CompileCache(directory=tmp_path)
        before = STAGES.snapshot()
        loaded = cold.get(m)
        delta = STAGES.delta(before)
        assert loaded.source == "disk"
        assert cold.disk_hits == 1 and cold.kernel_hits == 0 and cold.misses == 0
        assert delta.get("plan", 0) == 0
        assert delta.get("build", 0) == 1
        # The rebuild re-persists the kernel for the next cold start.
        assert list(tmp_path.glob("*.kernel.npz"))

    def test_corrupt_artifacts_fall_back_to_compile(self, tmp_path):
        m = _matrix()
        CompileCache(directory=tmp_path).get(m)
        next(tmp_path.glob("*.plan.json")).write_text("{not json")
        next(tmp_path.glob("*.kernel.npz")).write_bytes(b"not a zip archive")
        cache = CompileCache(directory=tmp_path)
        entry = cache.get(m)
        assert entry.source == "compiled"
        assert cache.misses == 1 and cache.disk_hits == 0 and cache.kernel_hits == 0

    def test_tampered_plan_is_rejected_by_fingerprint(self, tmp_path):
        m = _matrix()
        CompileCache(directory=tmp_path).get(m)
        artifact = next(tmp_path.glob("*.plan.json"))
        payload = json.loads(artifact.read_text())
        payload["plan"]["positive"][0][0] += 1
        artifact.write_text(json.dumps(payload))
        next(tmp_path.glob("*.kernel.npz")).unlink()
        cache = CompileCache(directory=tmp_path)
        assert cache.get(m).source == "compiled"

    def test_fault_bearing_kernel_artifact_is_rejected(self, tmp_path):
        """The fingerprint covers structure, not the fault snapshot, so
        the cache must refuse any artifact whose snapshot is non-empty —
        the cache itself only ever writes fault-free kernels."""
        from repro.core.serialize import kernel_to_npz
        from repro.hwsim.fast import lower
        from repro.hwsim.faults import inject_stuck_output

        m = _matrix()
        cache = CompileCache(directory=tmp_path)
        entry = cache.get(m)
        circuit = entry.circuit
        inject_stuck_output(circuit.netlist, circuit.column_probes[0].src, 1)
        faulty = lower(circuit)
        assert faulty.fingerprint == entry.fingerprint  # same structure!
        kernel_to_npz(faulty, tmp_path / entry.key.kernel_filename)

        cold = CompileCache(directory=tmp_path)
        loaded = cold.get(m)
        # Tampered kernel refused; the intact plan artifact still serves,
        # so the fallback is a plan-hit rebuild, and the rebuild replaces
        # the artifact with a clean kernel.
        assert loaded.source == "disk"
        assert cold.kernel_hits == 0
        assert not loaded.kernel.has_faults
        rng = np.random.default_rng(6)
        vectors = rng.integers(-128, 128, size=(3, m.shape[0]))
        assert np.array_equal(loaded.fast.multiply_batch(vectors), vectors @ m)
        assert CompileCache(directory=tmp_path).get(m).source == "kernel"

    def test_kernel_not_matching_plan_is_rejected(self, tmp_path):
        """A kernel whose fingerprint disagrees with the (re)planned
        matrix must never execute: cross-key copies are caught."""
        m, other = _matrix(), _matrix(seed=9)
        cache = CompileCache(directory=tmp_path)
        key_m = cache.get(m).key
        key_other = cache.get(other).key
        # Graft the other matrix's kernel artifact onto m's key.
        (tmp_path / key_other.kernel_filename).replace(
            tmp_path / key_m.kernel_filename
        )
        cold = CompileCache(directory=tmp_path)
        entry = cold.get(m)
        assert entry.source == "compiled"
        rng = np.random.default_rng(5)
        vectors = rng.integers(-128, 128, size=(3, m.shape[0]))
        assert np.array_equal(entry.fast.multiply_batch(vectors), vectors @ m)
