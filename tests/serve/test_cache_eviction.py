"""CompileCache disk eviction: the artifact store as a bounded LRU.

A deploy fleet sharing one artifact directory needs the store to stay
bounded without operator babysitting: an ``index.json`` manifest tracks
per-key sizes and last-use times, and every store/load prunes expired
keys then least-recently-used keys until the byte budget holds.  Plan
and kernel artifacts for one key live and die together.
"""

import json
import time

import numpy as np
import pytest

from repro.serve.cache import CompileCache, compile_key


def _matrix(seed=0, shape=(12, 10)):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-50, 51, size=shape)
    matrix[rng.random(shape) < 0.7] = 0
    return matrix


_SUFFIXES = (".plan.json", ".kernel.npz", ".fused.npz")


def _stems(tmp_path):
    return {
        p.name[: -len(suffix)]
        for suffix in _SUFFIXES
        for p in tmp_path.glob(f"*{suffix}")
    }


class TestManifest:
    def test_index_written_and_versioned(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        cache.get(_matrix())
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["format_version"] == 1
        assert len(index["entries"]) == 1
        (entry,) = index["entries"].values()
        assert entry["bytes"] > 0 and entry["last_used"] > 0

    def test_manifest_tracks_real_file_sizes(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        entry = cache.get(_matrix())
        index = json.loads((tmp_path / "index.json").read_text())
        stem = entry.key.stem
        expected = (
            (tmp_path / entry.key.filename).stat().st_size
            + (tmp_path / entry.key.kernel_filename).stat().st_size
            + (tmp_path / entry.key.fused_filename).stat().st_size
        )
        assert index["entries"][stem]["bytes"] == expected

    def test_corrupt_manifest_is_rebuilt(self, tmp_path):
        # A bounded cache must be able to reconstruct the manifest from
        # the directory contents (it is what decides evictions).
        cache = CompileCache(directory=tmp_path, max_disk_bytes=10_000_000)
        cache.get(_matrix())
        (tmp_path / "index.json").write_text("garbage")
        cache.get(_matrix(1))
        index = json.loads((tmp_path / "index.json").read_text())
        # Both keys present again: the pre-corruption artifact was
        # adopted back from the directory contents.
        assert len(index["entries"]) == 2

    def test_unbounded_loads_skip_manifest_maintenance(self, tmp_path):
        """Without an eviction policy the hot load path does no manifest
        work: warm-start cost is artifact I/O only."""
        CompileCache(directory=tmp_path).get(_matrix())
        before = (tmp_path / "index.json").read_text()
        cold = CompileCache(directory=tmp_path)
        assert cold.get(_matrix()).source == "kernel"
        assert (tmp_path / "index.json").read_text() == before
        # disk_stats still reports the true directory contents on demand.
        assert cold.disk_stats()["keys"] == 1

    def test_malformed_manifest_entries_never_fail_a_deploy(self, tmp_path):
        """Wrong-schema (but valid-JSON) manifests from foreign writers
        are sanitized on load instead of crashing prune/stats paths."""
        cache = CompileCache(directory=tmp_path, max_disk_bytes=10_000_000)
        kept = cache.get(_matrix()).key
        index = json.loads((tmp_path / "index.json").read_text())
        index["entries"]["foreign-stem"] = {}  # no bytes/last_used
        index["entries"]["other-stem"] = "not even a dict"
        index["entries"][kept.stem]["bytes"] = "twelve"
        (tmp_path / "index.json").write_text(json.dumps(index))
        entry = cache.get(_matrix(1))  # stores -> prune runs over the mess
        assert entry.source == "compiled"
        assert cache.disk_stats()["keys"] == 2
        rebuilt = json.loads((tmp_path / "index.json").read_text())
        # The malformed foreign entries are gone; the real key was
        # re-adopted from its files.
        assert "other-stem" not in rebuilt["entries"]
        assert kept.stem in rebuilt["entries"]

    def test_disk_stats(self, tmp_path):
        cache = CompileCache(directory=tmp_path, max_disk_bytes=10_000_000)
        cache.get(_matrix())
        stats = cache.disk_stats()
        assert stats["persistent"] and stats["keys"] == 1
        assert stats["bytes"] > 0
        assert stats["max_disk_bytes"] == 10_000_000
        assert CompileCache().disk_stats() == {
            "persistent": False,
            "keys": 0,
            "bytes": 0,
        }


class TestSizeEviction:
    def test_lru_keys_dropped_when_over_budget(self, tmp_path):
        # Budget sized for roughly two entries: filling with four keys
        # must keep only the most recently used ones.
        probe = CompileCache(directory=tmp_path)
        probe.get(_matrix(0))
        one_entry = sum(
            p.stat().st_size
            for suffix in _SUFFIXES
            for p in tmp_path.glob(f"*{suffix}")
        )
        for p in tmp_path.iterdir():
            p.unlink()

        cache = CompileCache(
            directory=tmp_path, max_disk_bytes=int(one_entry * 2.5)
        )
        keys = []
        for seed in range(4):
            m = _matrix(seed)
            keys.append(cache.get(m).key)
            time.sleep(0.01)  # strictly ordered last_used stamps
        stems = _stems(tmp_path)
        assert keys[0].stem not in stems  # oldest evicted
        assert keys[3].stem in stems  # newest survives
        assert cache.evicted_keys >= 1
        index = json.loads((tmp_path / "index.json").read_text())
        total = sum(e["bytes"] for e in index["entries"].values())
        assert total <= int(one_entry * 2.5)

    def test_plan_and_kernel_evicted_together(self, tmp_path):
        probe = CompileCache(directory=tmp_path)
        probe.get(_matrix(0))
        one_entry = sum(p.stat().st_size for p in tmp_path.iterdir() if p.name != "index.json")
        for p in tmp_path.iterdir():
            p.unlink()
        cache = CompileCache(directory=tmp_path, max_disk_bytes=int(one_entry * 1.5))
        a = cache.get(_matrix(0)).key
        time.sleep(0.01)
        b = cache.get(_matrix(1)).key
        # a was evicted whole: none of its three artifacts survives.
        assert not (tmp_path / a.filename).exists()
        assert not (tmp_path / a.kernel_filename).exists()
        assert not (tmp_path / a.fused_filename).exists()
        assert (tmp_path / b.filename).exists()
        assert (tmp_path / b.kernel_filename).exists()
        assert (tmp_path / b.fused_filename).exists()

    def test_touch_refreshes_lru_order(self, tmp_path):
        probe = CompileCache(directory=tmp_path)
        probe.get(_matrix(0))
        one_entry = sum(p.stat().st_size for p in tmp_path.iterdir() if p.name != "index.json")
        for p in tmp_path.iterdir():
            p.unlink()
        cache = CompileCache(directory=tmp_path, max_disk_bytes=int(one_entry * 2.5))
        a, b = _matrix(0), _matrix(1)
        key_a = cache.get(a).key
        time.sleep(0.01)
        cache.get(b)
        time.sleep(0.01)
        # Reload a from a fresh cache instance: its last_used refreshes.
        fresh = CompileCache(directory=tmp_path, max_disk_bytes=int(one_entry * 2.5))
        assert fresh.get(a).source == "kernel"
        time.sleep(0.01)
        fresh.get(_matrix(2))  # pushes the store over budget
        stems = _stems(tmp_path)
        assert key_a.stem in stems  # refreshed, so b was the LRU victim


class TestAgeEviction:
    def test_expired_keys_pruned(self, tmp_path):
        cache = CompileCache(directory=tmp_path, max_age_s=0.05)
        old = cache.get(_matrix(0)).key
        time.sleep(0.12)
        cache.get(_matrix(1))
        stems = _stems(tmp_path)
        assert old.stem not in stems
        assert cache.evicted_keys == 1

    def test_unexpired_keys_survive(self, tmp_path):
        cache = CompileCache(directory=tmp_path, max_age_s=3600)
        kept = cache.get(_matrix(0)).key
        cache.get(_matrix(1))
        assert kept.stem in _stems(tmp_path)

    def test_eviction_never_breaks_lookups(self, tmp_path):
        """An evicted key simply recompiles (and re-persists) next time."""
        cache = CompileCache(directory=tmp_path, max_age_s=0.05)
        m = _matrix(0)
        cache.get(m)
        time.sleep(0.12)
        cache.get(_matrix(1))  # triggers the prune of m's artifacts
        fresh = CompileCache(directory=tmp_path, max_age_s=0.05)
        entry = fresh.get(m)
        assert entry.source == "compiled"
        vectors = np.random.default_rng(2).integers(-128, 128, size=(3, m.shape[0]))
        assert np.array_equal(entry.fast.multiply_batch(vectors), vectors @ m)


class TestValidation:
    def test_rejects_bad_budgets(self, tmp_path):
        with pytest.raises(ValueError, match="max_disk_bytes"):
            CompileCache(directory=tmp_path, max_disk_bytes=0)
        with pytest.raises(ValueError, match="max_age_s"):
            CompileCache(directory=tmp_path, max_age_s=0)

    def test_unbounded_store_never_evicts(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        for seed in range(5):
            cache.get(_matrix(seed))
        assert cache.evicted_keys == 0
        assert len(_stems(tmp_path)) == 5
