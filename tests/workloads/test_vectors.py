"""Tests for input vector generation and RNG helpers."""

import numpy as np
import pytest

from repro.workloads.rng import rng_from_seed, spawn
from repro.workloads.vectors import random_input_batch, random_input_vector


class TestVectors:
    def test_signed_range(self, rng):
        vec = random_input_vector(1000, 4, rng, signed=True)
        assert vec.min() >= -8
        assert vec.max() <= 7

    def test_unsigned_range(self, rng):
        vec = random_input_vector(1000, 4, rng, signed=False)
        assert vec.min() >= 0
        assert vec.max() <= 15

    def test_batch_shape(self, rng):
        batch = random_input_batch(5, 16, 8, rng)
        assert batch.shape == (5, 16)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_input_vector(0, 8, rng)
        with pytest.raises(ValueError):
            random_input_batch(0, 8, 8, rng)


class TestRngHelpers:
    def test_same_seed_same_stream(self):
        a = rng_from_seed(7).integers(0, 100, size=10)
        b = rng_from_seed(7).integers(0, 100, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_from_seed(1).integers(0, 1000, size=20)
        b = rng_from_seed(2).integers(0, 1000, size=20)
        assert not np.array_equal(a, b)

    def test_spawn_independent_children(self):
        children = spawn(rng_from_seed(0), 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn(rng_from_seed(0), 0)
