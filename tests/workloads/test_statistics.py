"""Statistical validation of the workload generators.

The paper's analytic arguments lean on distributional facts (uniform
values are 50% bit-sparse; a signed uniform 8-bit weight carries ~3.5 set
magnitude bits; Bernoulli bit planes concentrate around their mean).
These tests pin those facts with enough samples that failures mean real
generator bugs, not noise.
"""

import numpy as np

from repro.core.bits import matrix_popcount
from repro.core.split import pn_split
from repro.core.sparsity import bit_sparsity
from repro.workloads.matrices import bit_sparse_matrix, element_sparse_matrix


class TestUniformValueStatistics:
    def test_mean_set_bits_per_unsigned_uniform_value(self, rng):
        """Uniform u8 values average 4.0 set bits (8 independent coin flips)."""
        matrix = element_sparse_matrix(128, 128, 8, 0.0, rng, signed=False)
        mean_bits = matrix_popcount(matrix) / matrix.size
        assert abs(mean_bits - 4.0) < 0.05

    def test_mean_magnitude_bits_per_signed_uniform_value(self, rng):
        """Signed uniform 8-bit weights average ~3.53 magnitude set bits —
        the constant behind 'ones ~ 3.5x nnz' in the large-scale sweeps."""
        matrix = element_sparse_matrix(128, 128, 8, 0.0, rng, signed=True)
        split = pn_split(matrix)
        mean_bits = split.total_ones() / matrix.size
        assert abs(mean_bits - 3.53) < 0.06

    def test_element_sparsity_scales_ones_linearly(self, rng):
        dense = element_sparse_matrix(96, 96, 8, 0.0, rng, signed=True)
        sparse = element_sparse_matrix(96, 96, 8, 0.75, rng, signed=True)
        dense_ones = pn_split(dense).total_ones()
        sparse_ones = pn_split(sparse).total_ones()
        assert abs(sparse_ones / dense_ones - 0.25) < 0.03


class TestBernoulliConcentration:
    def test_bit_sparsity_concentrates(self, rng):
        """128x128x8 = 131072 Bernoulli bits: relative deviation < 1%."""
        for target in (0.25, 0.5, 0.75):
            matrix = bit_sparse_matrix(128, 128, 8, target, rng)
            assert abs(bit_sparsity(matrix, 8) - target) < 0.01

    def test_planes_independent_across_bits(self, rng):
        """Each bit plane hits the target independently (no plane reuse)."""
        matrix = bit_sparse_matrix(128, 128, 8, 0.5, rng)
        for bit in range(8):
            plane = (matrix >> bit) & 1
            density = plane.mean()
            assert abs(density - 0.5) < 0.03

    def test_seeded_generators_are_uncorrelated(self):
        a = bit_sparse_matrix(64, 64, 8, 0.5, np.random.default_rng(1))
        b = bit_sparse_matrix(64, 64, 8, 0.5, np.random.default_rng(2))
        agreement = np.mean((a & 1) == (b & 1))
        assert 0.4 < agreement < 0.6  # chance level for bit 0


class TestCsdStatistics:
    def test_csd_mean_bits_for_uniform_weights(self, rng):
        """Sec. V: CSD cuts ~17% of set bits on uniform 8-bit weights."""
        from repro.core.split import split_matrix

        matrix = element_sparse_matrix(128, 128, 8, 0.0, rng, signed=True)
        pn_ones = split_matrix(matrix, scheme="pn").total_ones()
        csd_ones = split_matrix(matrix, scheme="csd", rng=rng).total_ones()
        saving = 1.0 - csd_ones / pn_ones
        assert 0.15 < saving < 0.20

    def test_coin_flip_balances_planes(self, rng):
        """The length-2 coin flip keeps CSD's P/N planes near-balanced for
        symmetric inputs."""
        from repro.core.bits import matrix_popcount
        from repro.core.split import split_matrix

        matrix = element_sparse_matrix(128, 128, 8, 0.0, rng, signed=True)
        split = split_matrix(matrix, scheme="csd", rng=rng)
        p_ones = matrix_popcount(split.positive)
        n_ones = matrix_popcount(split.negative)
        assert 0.8 < p_ones / n_ones < 1.25
