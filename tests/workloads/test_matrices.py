"""Tests for the paper's two random matrix generators."""

import numpy as np
import pytest

from repro.core.sparsity import bit_sparsity, element_sparsity
from repro.workloads.matrices import (
    bit_sparse_matrix,
    element_sparse_matrix,
    expected_ones_bit_sparse,
)


class TestBitSparse:
    def test_extremes(self, rng):
        all_ones = bit_sparse_matrix(8, 8, 4, 0.0, rng)
        assert (all_ones == 15).all()
        all_zero = bit_sparse_matrix(8, 8, 4, 1.0, rng)
        assert (all_zero == 0).all()

    def test_achieved_sparsity_near_target(self, rng):
        for target in (0.2, 0.5, 0.8):
            matrix = bit_sparse_matrix(64, 64, 8, target, rng)
            achieved = bit_sparsity(matrix, 8)
            assert abs(achieved - target) < 0.02

    def test_values_fit_width(self, rng):
        matrix = bit_sparse_matrix(16, 16, 5, 0.3, rng)
        assert matrix.min() >= 0
        assert matrix.max() < 32

    def test_deterministic_per_seed(self):
        a = bit_sparse_matrix(8, 8, 8, 0.5, np.random.default_rng(3))
        b = bit_sparse_matrix(8, 8, 8, 0.5, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_expected_ones(self):
        assert expected_ones_bit_sparse(64, 64, 8, 0.75) == pytest.approx(8192.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bit_sparse_matrix(0, 4, 8, 0.5, rng)
        with pytest.raises(ValueError):
            bit_sparse_matrix(4, 4, 0, 0.5, rng)
        with pytest.raises(ValueError):
            bit_sparse_matrix(4, 4, 8, 1.5, rng)


class TestElementSparse:
    def test_exact_zero_fraction(self, rng):
        matrix = element_sparse_matrix(32, 32, 8, 0.75, rng)
        # At least the forced fraction is zero (uniform draws add a few).
        assert element_sparsity(matrix) >= 0.75
        assert element_sparsity(matrix) < 0.80

    def test_signed_range(self, rng):
        matrix = element_sparse_matrix(32, 32, 8, 0.0, rng, signed=True)
        assert matrix.min() >= -128
        assert matrix.max() <= 127
        assert (matrix < 0).any()

    def test_unsigned_range(self, rng):
        matrix = element_sparse_matrix(32, 32, 8, 0.0, rng, signed=False)
        assert matrix.min() >= 0
        assert matrix.max() <= 255

    def test_uniform_values_are_half_bit_sparse(self, rng):
        """Sec. IV: 'In this case, the matrix is 50% bit-sparse, as every
        bit has an equal probability of being 0 or 1.'"""
        matrix = element_sparse_matrix(64, 64, 8, 0.0, rng, signed=False)
        assert abs(bit_sparsity(matrix, 8) - 0.5) < 0.02

    def test_full_sparsity(self, rng):
        matrix = element_sparse_matrix(8, 8, 8, 1.0, rng)
        assert (matrix == 0).all()

    def test_deterministic_per_seed(self):
        a = element_sparse_matrix(8, 8, 8, 0.5, np.random.default_rng(9))
        b = element_sparse_matrix(8, 8, 8, 0.5, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            element_sparse_matrix(4, 0, 8, 0.5, rng)
        with pytest.raises(ValueError):
            element_sparse_matrix(4, 4, 8, -0.1, rng)
