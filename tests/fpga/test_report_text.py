"""Tests for the synthesis-style utilization report."""

import numpy as np

from repro.core.multiplier import FixedMatrixMultiplier
from repro.fpga.report_text import utilization_report


def make_report(rng, **kwargs):
    matrix = rng.integers(-64, 64, size=(32, 32))
    mult = FixedMatrixMultiplier(matrix)
    return (
        utilization_report(
            mult.census,
            mult.resources,
            mult.device,
            fmax_hz=mult.fmax_hz(),
            power_w=mult.power_w(),
            **kwargs,
        ),
        mult,
    )


class TestUtilizationReport:
    def test_contains_all_resources(self, rng):
        text, __ = make_report(rng)
        for resource in ("LUT", "FF", "LUTRAM"):
            assert f"| {resource}" in text

    def test_percentages_consistent(self, rng):
        text, mult = make_report(rng)
        expected_pct = 100.0 * mult.resources.luts / mult.device.total_luts
        assert f"{expected_pct:>6.2f}" in text

    def test_fmax_and_power_lines(self, rng):
        text, mult = make_report(rng)
        assert f"{mult.fmax_hz() / 1e6:.0f} MHz" in text
        assert f"{mult.power_w():.1f} W" in text

    def test_fits_flag(self, rng):
        text, __ = make_report(rng)
        assert "Design fits device: yes" in text

    def test_census_line(self, rng):
        text, mult = make_report(rng)
        assert f"{mult.census.serial_adders:,} serial adders" in text

    def test_optional_fields_omitted(self, rng):
        matrix = rng.integers(-4, 4, size=(4, 4))
        mult = FixedMatrixMultiplier(matrix)
        text = utilization_report(mult.census, mult.resources)
        assert "Fmax" not in text
        assert "power" not in text.lower() or "Estimated power" not in text
