"""Tests for technology mapping and SRL inference."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.stats import census_plan
from repro.fpga.mapping import (
    MappingRules,
    infer_srl_runs,
    map_census,
    map_netlist,
)
from repro.hwsim.builder import build_circuit


def make(matrix, **kwargs):
    plan = plan_matrix(np.asarray(matrix), **kwargs)
    return plan, census_plan(plan), build_circuit(plan)


class TestPaperMappingFacts:
    def test_serial_adder_is_one_lut_two_ffs(self):
        rules = MappingRules()
        assert rules.adder_luts == 1
        assert rules.adder_ffs == 2

    def test_dff_is_one_ff_no_lut(self):
        assert MappingRules().dff_ffs == 1

    def test_ff_to_lut_ratio_near_two_for_dense_matrices(self, rng):
        """Fig. 10: 'there are two registers per LUT'."""
        matrix = rng.integers(-128, 128, size=(64, 64))
        __, census, __ = make(matrix)
        report = map_census(census)
        assert 1.8 < report.ffs / report.luts < 2.4

    def test_luts_track_ones(self, rng):
        """Fig. 10: 'LUTs are essentially equivalent to the number of ones'."""
        matrix = rng.integers(-128, 128, size=(48, 48))
        __, census, __ = make(matrix)
        report = map_census(census)
        assert abs(report.luts - census.ones) / census.ones < 0.05


class TestCensusNetlistParity:
    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    def test_paths_agree(self, rng, tree_style, scheme):
        matrix = rng.integers(-32, 32, size=(11, 9))
        matrix[rng.random((11, 9)) < 0.5] = 0
        __, census, circuit = make(
            matrix, scheme=scheme, tree_style=tree_style, rng=rng
        )
        assert map_census(census) == map_netlist(circuit)

    def test_custom_rules_respected(self, rng):
        matrix = rng.integers(-4, 5, size=(4, 4))
        rules = MappingRules(wrapper_luts=1000, wrapper_ffs=2000)
        __, census, circuit = make(matrix)
        census_report = map_census(census, rules)
        netlist_report = map_netlist(circuit, rules)
        assert census_report == netlist_report
        assert census_report.luts >= 1000


class TestResourceReport:
    def test_addition(self):
        from repro.fpga.report import ResourceReport

        a = ResourceReport(1, 2, 3)
        b = ResourceReport(10, 20, 30)
        assert (a + b) == ResourceReport(11, 22, 33)
        assert a.scaled(3) == ResourceReport(3, 6, 9)
        assert a.as_dict() == {"luts": 1, "ffs": 2, "lutrams": 3}


class TestSrlInference:
    def test_padded_sparse_matrix_has_runs(self, rng):
        """A lone tap in a padded tree drags a long DFF chain -> SRL."""
        matrix = np.zeros((16, 1), dtype=np.int64)
        matrix[3, 0] = 1
        __, __, circuit = make(matrix, tree_style="padded")
        runs = infer_srl_runs(circuit)
        assert runs, "expected at least one inferable SRL run"
        assert max(runs) >= 3

    def test_compact_style_minimizes_runs(self, rng):
        matrix = np.zeros((16, 1), dtype=np.int64)
        matrix[3, 0] = 1
        __, __, padded = make(matrix, tree_style="padded")
        __, __, compact = make(matrix, tree_style="compact")
        assert sum(infer_srl_runs(compact)) <= sum(infer_srl_runs(padded))

    def test_srl_mapping_reduces_ffs(self, rng):
        matrix = np.zeros((32, 4), dtype=np.int64)
        matrix[0, :] = rng.integers(1, 8, size=4)
        __, __, circuit = make(matrix, tree_style="padded")
        plain = map_netlist(circuit, infer_srl=False)
        inferred = map_netlist(circuit, infer_srl=True)
        assert inferred.ffs <= plain.ffs
        assert inferred.lutrams >= plain.lutrams

    def test_dense_matrix_has_few_runs(self, rng):
        matrix = rng.integers(1, 128, size=(8, 8))
        __, __, circuit = make(matrix)
        # Dense compact trees have almost no chained DFFs.
        assert sum(infer_srl_runs(circuit)) < 30


class TestOutputSrSizing:
    def test_output_sr_lutram_scales_with_result_width(self):
        rules = MappingRules()
        assert rules.output_sr_lutrams(20) == 1
        assert rules.output_sr_lutrams(33) == 2
        assert rules.output_sr_lutrams(64) == 2
        assert rules.output_sr_lutrams(65) == 3
