"""Tests for the Sec. IV area model and Sec. VIII CGRA estimate."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.stats import census_plan
from repro.fpga.area import AreaModel, cgra_transistor_estimate
from repro.fpga.mapping import map_census


class TestAreaModel:
    def test_prediction_close_to_census_mapping(self, rng):
        """The paper's simple model (LUTs ~ ones) predicts the detailed
        mapping within a few percent for dense matrices."""
        matrix = rng.integers(-128, 128, size=(32, 32))
        plan = plan_matrix(matrix)
        census = census_plan(plan)
        detailed = map_census(census)
        predicted = AreaModel().predict(census.ones, rows=32, cols=32)
        assert abs(predicted.luts - detailed.luts) / detailed.luts < 0.05
        assert abs(predicted.ffs - detailed.ffs) / detailed.ffs < 0.15

    def test_invalid_ones_rejected(self):
        with pytest.raises(ValueError):
            AreaModel().predict(-1)


class TestLinearFit:
    def test_perfect_line(self):
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        ys = 3.0 * xs + 10.0
        fit = AreaModel.fit(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10.0) == pytest.approx(40.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            AreaModel.fit(np.array([1.0]), np.array([2.0]))

    def test_constant_data(self):
        fit = AreaModel.fit(np.array([1.0, 2.0, 3.0]), np.array([5.0, 5.0, 5.0]))
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.slope == pytest.approx(0.0)


class TestCgraEstimate:
    def test_paper_transistor_counts(self):
        """Sec. VIII: 512 transistors per LUT, 16 per full adder, ratio 32."""
        estimate = cgra_transistor_estimate(serial_adders=1)
        assert estimate.lut_transistors == 512
        assert estimate.adder_transistors == 16
        assert estimate.ratio == pytest.approx(32.0)

    def test_savings_factor_large_design(self):
        estimate = cgra_transistor_estimate(serial_adders=100_000, dffs=20_000)
        # Flop costs are common to both, so savings land well below 32x but
        # still far above 1x.
        assert 5 < estimate.savings_factor < 32

    def test_validation(self):
        with pytest.raises(ValueError):
            cgra_transistor_estimate(-1)
