"""Tests for the XCVU13P device model."""

import pytest

from repro.fpga.device import XCVU13P, DesignDoesNotFitError, FpgaDevice


class TestXcvu13p:
    def test_paper_capacities(self):
        """Sec. VI: 1.7M LUTs, 3.4M FFs, four SLRs of 425k LUTs."""
        assert XCVU13P.total_luts == 1_700_000
        assert XCVU13P.total_ffs == 3_400_000
        assert XCVU13P.slrs == 4
        assert XCVU13P.luts_per_slr == 425_000

    def test_comfortable_threshold_is_82_percent(self):
        assert XCVU13P.comfortable_slr_luts == pytest.approx(0.82 * 425_000)


class TestSlrSpan:
    @pytest.mark.parametrize(
        "luts,span",
        [
            (0, 1),
            (100_000, 1),
            (348_000, 1),
            (349_000, 2),
            (690_000, 2),
            (700_000, 3),
            (1_100_000, 4),
            (1_600_000, 4),
        ],
    )
    def test_spans(self, luts, span):
        assert XCVU13P.slr_span(luts) == span

    def test_over_capacity_raises(self):
        with pytest.raises(DesignDoesNotFitError):
            XCVU13P.slr_span(1_800_000)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            XCVU13P.slr_span(-1)


class TestFits:
    def test_paper_largest_design_fits(self):
        """1024x1024 @ 60% sparsity (~1.5M ones) fits: the paper built it."""
        assert XCVU13P.fits(luts=1_500_000, ffs=3_050_000)

    def test_lut_overflow(self):
        assert not XCVU13P.fits(luts=1_700_001)

    def test_ff_overflow(self):
        assert not XCVU13P.fits(luts=1000, ffs=3_400_001)

    def test_lutram_overflow(self):
        assert not XCVU13P.fits(luts=1000, lutrams=4 * 192_000 + 1)


class TestCustomDevice:
    def test_small_device(self):
        device = FpgaDevice(
            name="tiny",
            slrs=1,
            luts_per_slr=1000,
            ffs_per_slr=2000,
            lutram_capable_per_slr=400,
            routable_fraction=0.8,
        )
        assert device.slr_span(800) == 1
        with pytest.raises(DesignDoesNotFitError):
            device.slr_span(1001)
