"""Tests for the Fig. 11 frequency model."""

import pytest

from repro.fpga.device import XCVU13P
from repro.fpga.timing import DEFAULT_TIMING, TimingModel


class TestFrequencyBands:
    """The paper's measured bands: 597-445 MHz in one SLR, 296-400 MHz in
    two, 225-250 MHz beyond."""

    def test_small_design_near_600(self):
        est = DEFAULT_TIMING.estimate(luts=800, rows=64, fanout=13)
        assert est.slr_span == 1
        assert 520e6 <= est.fmax_hz <= 600e6

    def test_one_slr_band(self):
        est = DEFAULT_TIMING.estimate(luts=300_000, rows=1024, fanout=300)
        assert est.slr_span == 1
        assert 440e6 <= est.fmax_hz <= 600e6

    def test_two_slr_band(self):
        est = DEFAULT_TIMING.estimate(luts=600_000, rows=1024, fanout=600)
        assert est.slr_span == 2
        assert 296e6 <= est.fmax_hz <= 400e6

    def test_beyond_two_slr_band(self):
        for luts in (1_100_000, 1_300_000, 1_500_000):
            est = DEFAULT_TIMING.estimate(luts=luts, rows=1024, fanout=luts / 1024)
            assert est.slr_span >= 3
            assert 215e6 <= est.fmax_hz <= 260e6

    def test_crossing_penalty_saturates(self):
        """'Matrices bigger than 2 SLRs seem relatively consistent'."""
        three = DEFAULT_TIMING.estimate(luts=1_000_000, rows=1024, fanout=976)
        four = DEFAULT_TIMING.estimate(luts=1_400_000, rows=1024, fanout=976)
        assert three.fmax_hz == pytest.approx(four.fmax_hz, rel=0.02)


class TestMonotonicity:
    def test_fmax_decreases_with_fanout(self):
        small = DEFAULT_TIMING.estimate(luts=10_000, rows=64, fanout=10)
        large = DEFAULT_TIMING.estimate(luts=10_000, rows=64, fanout=1000)
        assert large.fmax_hz < small.fmax_hz

    def test_fmax_never_exceeds_cap(self):
        est = DEFAULT_TIMING.estimate(luts=1, rows=1, fanout=1)
        assert est.fmax_hz <= DEFAULT_TIMING.fmax_cap_hz

    def test_default_fanout_from_luts(self):
        est = DEFAULT_TIMING.estimate(luts=64_000, rows=64)
        assert est.fanout == pytest.approx(1000.0)


class TestPipelinedMode:
    """Sec. VIII's proposed fanout/crossing registering, modelled."""

    def test_pipelining_recovers_frequency(self):
        plain = DEFAULT_TIMING.estimate(luts=1_200_000, rows=1024, fanout=1200)
        piped = DEFAULT_TIMING.estimate(
            luts=1_200_000, rows=1024, fanout=1200, pipelined=True
        )
        assert piped.fmax_hz > plain.fmax_hz
        assert piped.extra_pipeline_cycles > 0

    def test_small_design_needs_no_extra_stages(self):
        est = DEFAULT_TIMING.estimate(luts=100, rows=8, fanout=4, pipelined=True)
        assert est.extra_pipeline_cycles == 0


class TestValidation:
    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.estimate(luts=10, rows=0)

    def test_invalid_luts(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.estimate(luts=-1, rows=4)

    def test_custom_model(self):
        model = TimingModel(logic_ns=1.0, fanout_ns_per_log=0.0, slr_crossing_ns=0.0)
        est = model.estimate(luts=10, rows=4, device=XCVU13P)
        assert est.fmax_hz == pytest.approx(min(1e9, model.fmax_cap_hz))

    def test_period_ns(self):
        est = DEFAULT_TIMING.estimate(luts=10_000, rows=64)
        assert est.period_ns == pytest.approx(1e9 / est.fmax_hz)
