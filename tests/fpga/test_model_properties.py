"""Property-based invariants of the FPGA timing and power models."""

from hypothesis import given, settings, strategies as st

from repro.fpga.device import XCVU13P
from repro.fpga.power import DEFAULT_POWER
from repro.fpga.timing import DEFAULT_TIMING

luts = st.integers(min_value=0, max_value=1_700_000)
rows = st.integers(min_value=1, max_value=8192)
fanouts = st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False)


class TestTimingProperties:
    @given(luts, rows, fanouts)
    @settings(max_examples=100, deadline=None)
    def test_fmax_positive_and_capped(self, n_luts, n_rows, fanout):
        est = DEFAULT_TIMING.estimate(n_luts, n_rows, fanout=fanout)
        assert 0 < est.fmax_hz <= DEFAULT_TIMING.fmax_cap_hz

    @given(luts, rows, fanouts, fanouts)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_fanout(self, n_luts, n_rows, f1, f2):
        lo, hi = sorted((f1, f2))
        slow = DEFAULT_TIMING.estimate(n_luts, n_rows, fanout=hi)
        fast = DEFAULT_TIMING.estimate(n_luts, n_rows, fanout=lo)
        assert slow.fmax_hz <= fast.fmax_hz

    @given(rows, fanouts, st.data())
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_luts(self, n_rows, fanout, data):
        l1 = data.draw(luts)
        l2 = data.draw(luts)
        lo, hi = sorted((l1, l2))
        small = DEFAULT_TIMING.estimate(lo, n_rows, fanout=fanout)
        big = DEFAULT_TIMING.estimate(hi, n_rows, fanout=fanout)
        assert big.fmax_hz <= small.fmax_hz
        assert big.slr_span >= small.slr_span

    @given(luts, rows, fanouts)
    @settings(max_examples=80, deadline=None)
    def test_pipelining_never_hurts_fmax(self, n_luts, n_rows, fanout):
        plain = DEFAULT_TIMING.estimate(n_luts, n_rows, fanout=fanout)
        piped = DEFAULT_TIMING.estimate(n_luts, n_rows, fanout=fanout, pipelined=True)
        assert piped.fmax_hz >= plain.fmax_hz
        assert piped.extra_pipeline_cycles >= 0

    @given(luts)
    @settings(max_examples=60, deadline=None)
    def test_span_within_package(self, n_luts):
        span = XCVU13P.slr_span(n_luts)
        assert 1 <= span <= XCVU13P.slrs


class TestPowerProperties:
    @given(
        st.integers(0, 5_000_000),
        st.floats(0.0, 700e6, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_total_at_least_static(self, ones, freq):
        assert DEFAULT_POWER.total_w(ones, freq) >= DEFAULT_POWER.static_w

    @given(st.integers(0, 5_000_000), st.data())
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_frequency(self, ones, data):
        f1 = data.draw(st.floats(0.0, 700e6, allow_nan=False))
        f2 = data.draw(st.floats(0.0, 700e6, allow_nan=False))
        lo, hi = sorted((f1, f2))
        assert DEFAULT_POWER.total_w(ones, lo) <= DEFAULT_POWER.total_w(ones, hi)

    @given(st.integers(1, 5_000_000))
    @settings(max_examples=60, deadline=None)
    def test_thermal_frequency_inverse(self, ones):
        f_limit = DEFAULT_POWER.thermally_limited_frequency_hz(ones)
        # At exactly the limit frequency the design dissipates the limit.
        assert abs(
            DEFAULT_POWER.total_w(ones, f_limit) - DEFAULT_POWER.thermal_limit_w
        ) < 1e-6
