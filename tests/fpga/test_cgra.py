"""Tests for the Sec. VIII CGRA model."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.stats import census_plan
from repro.fpga.cgra import DEFAULT_CGRA, CgraDevice, compare_fpga_cgra


def census_of(rng, dim=32):
    matrix = rng.integers(-128, 128, size=(dim, dim))
    return census_plan(plan_matrix(matrix))


class TestCgraDevice:
    def test_default_cell_cost(self):
        # Full adder (16T) + two flops (8T each) = 32 transistors per cell.
        assert DEFAULT_CGRA.transistors_per_cell == 32

    def test_fits(self):
        device = CgraDevice(cells=100)
        assert device.fits(serial_adders=60, dffs=40)
        assert not device.fits(serial_adders=60, dffs=41)


class TestComparison:
    def test_density_gain_band(self, rng):
        """LUT(512T)+2FF vs hard cell(32T): gain lands well above 10x."""
        census = census_of(rng)
        comparison = compare_fpga_cgra(census, fpga_fmax_hz=400e6)
        assert 10 < comparison.density_gain < 17

    def test_frequency_gain(self, rng):
        census = census_of(rng)
        comparison = compare_fpga_cgra(census, fpga_fmax_hz=300e6)
        assert comparison.frequency_gain == pytest.approx(1.2e9 / 300e6)
        assert comparison.speedup == comparison.frequency_gain

    def test_matrix_swap_is_pipeline_wave(self, rng):
        census = census_of(rng)
        comparison = compare_fpga_cgra(census, fpga_fmax_hz=400e6)
        # One wave = tree depth + chain length, in cycles: tiny next to the
        # FPGA's ~200 ms full reconfiguration.
        assert 0 < comparison.matrix_swap_cycles < 64
        swap_s = comparison.matrix_swap_cycles / DEFAULT_CGRA.clock_hz
        assert 200e-3 / swap_s > 1e6

    def test_transistor_accounting(self, rng):
        census = census_of(rng, dim=8)
        comparison = compare_fpga_cgra(census, fpga_fmax_hz=500e6)
        expected_fpga = census.serial_adders * (512 + 16) + census.dffs * 8
        expected_cgra = (census.serial_adders + census.dffs) * 32
        assert comparison.fpga_transistors == expected_fpga
        assert comparison.cgra_transistors == expected_cgra

    def test_bad_fmax_rejected(self, rng):
        with pytest.raises(ValueError):
            compare_fpga_cgra(census_of(rng, dim=4), fpga_fmax_hz=0)
