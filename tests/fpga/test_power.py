"""Tests for the Fig. 12 power model."""

import pytest

from repro.fpga.power import DEFAULT_POWER, PowerModel


class TestPowerModel:
    def test_static_only_at_zero_activity(self):
        assert DEFAULT_POWER.total_w(0, 500e6) == DEFAULT_POWER.static_w
        assert DEFAULT_POWER.total_w(10_000, 0.0) == DEFAULT_POWER.static_w

    def test_dynamic_linear_in_ones_and_frequency(self):
        base = DEFAULT_POWER.dynamic_w(100_000, 300e6)
        assert DEFAULT_POWER.dynamic_w(200_000, 300e6) == pytest.approx(2 * base)
        assert DEFAULT_POWER.dynamic_w(100_000, 600e6) == pytest.approx(2 * base)

    def test_paper_anchor_largest_design_near_150w(self):
        """1024x1024 @ 60% (~1.5M ones) at ~226 MHz approaches the 150 W
        thermal limit (Fig. 12)."""
        power = DEFAULT_POWER.total_w(1_469_178, 226e6)
        assert 130 < power < 155

    def test_high_sparsity_designs_are_cool(self):
        assert DEFAULT_POWER.total_w(60_000, 538e6) < 40

    def test_within_thermal_limit(self):
        assert DEFAULT_POWER.within_thermal_limit(100_000, 500e6)
        assert not DEFAULT_POWER.within_thermal_limit(3_000_000, 500e6)

    def test_thermally_limited_frequency(self):
        ones = 1_500_000
        f_limit = DEFAULT_POWER.thermally_limited_frequency_hz(ones)
        assert DEFAULT_POWER.total_w(ones, f_limit) == pytest.approx(
            DEFAULT_POWER.thermal_limit_w
        )

    def test_thermally_limited_frequency_zero_ones(self):
        assert DEFAULT_POWER.thermally_limited_frequency_hz(0) == float("inf")

    def test_no_headroom(self):
        model = PowerModel(static_w=200.0, thermal_limit_w=150.0)
        assert model.thermally_limited_frequency_hz(1000) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_POWER.total_w(-1, 1e6)
        with pytest.raises(ValueError):
            DEFAULT_POWER.total_w(1, -1e6)
