"""Tests for the V100 sparse-kernel latency models."""

import pytest

from repro.baselines.gpu import CUSPARSE, OPTIMIZED_KERNEL, V100, GpuKernelModel


class TestRegimes:
    def test_gpu_cannot_break_microsecond_barrier(self):
        """'the GPU cannot break the 1 us barrier' — for any evaluated
        configuration the modelled latency stays above 1 us."""
        for model in (CUSPARSE, OPTIMIZED_KERNEL):
            for dim in (64, 256, 1024, 4096):
                assert model.gemv_latency_s(dim, 0.02) > 1e-6

    def test_latency_bound_floor_at_small_dims(self):
        """Below ~512 the latency is dominated by the floor (underutilized)."""
        small = CUSPARSE.gemv_latency_s(64, 0.02)
        medium = CUSPARSE.gemv_latency_s(256, 0.02)
        assert medium < small * 1.2

    def test_linear_scaling_once_utilized(self):
        """'at 1024x1024 ... it begins to see linear scaling'."""
        at_1024 = CUSPARSE.gemv_latency_s(1024, 0.02) - CUSPARSE.floor_s
        at_2048 = CUSPARSE.gemv_latency_s(2048, 0.02) - CUSPARSE.floor_s
        assert at_2048 == pytest.approx(4 * at_1024, rel=0.01)

    def test_latency_decreases_with_sparsity(self):
        latencies = [
            CUSPARSE.gemv_latency_s(1024, 1.0 - s / 100.0) for s in (70, 85, 98)
        ]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_optimized_kernel_faster_than_cusparse(self):
        """'The optimized kernel comparatively spends less time indexing'."""
        for sparsity in (0.70, 0.90, 0.98):
            assert OPTIMIZED_KERNEL.gemv_latency_s(
                1024, 1.0 - sparsity
            ) < CUSPARSE.gemv_latency_s(1024, 1.0 - sparsity)

    def test_dim_scaling_improves_optimized_rate(self):
        cost_1024 = OPTIMIZED_KERNEL._work_cost_per_nnz(1024)
        cost_4096 = OPTIMIZED_KERNEL._work_cost_per_nnz(4096)
        assert cost_4096 == pytest.approx(cost_1024 / 2.0)


class TestBatching:
    def test_sublinear_scaling(self):
        """'the latency for the GPU solution scales sub-linearly with
        respect to batch size'."""
        b1 = CUSPARSE.spmm_latency_s(1024, 0.05, 1)
        b64 = CUSPARSE.spmm_latency_s(1024, 0.05, 64)
        assert b64 < 64 * b1

    def test_batch_one_equals_gemv(self):
        assert CUSPARSE.spmm_latency_s(512, 0.05, 1) == pytest.approx(
            CUSPARSE.gemv_latency_s(512, 0.05)
        )

    def test_marginal_cost_much_cheaper_than_first(self):
        b1 = OPTIMIZED_KERNEL.spmm_latency_s(1024, 0.05, 1)
        b2 = OPTIMIZED_KERNEL.spmm_latency_s(1024, 0.05, 2)
        assert (b2 - b1) < 0.1 * b1

    def test_throughput_increases_with_batch(self):
        t1 = CUSPARSE.throughput_vectors_per_s(1024, 0.05, 1)
        t64 = CUSPARSE.throughput_vectors_per_s(1024, 0.05, 64)
        assert t64 > t1


class TestValidation:
    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            CUSPARSE.gemv_latency_s(0, 0.5)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            CUSPARSE.gemv_latency_s(64, 1.5)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CUSPARSE.spmm_latency_s(64, 0.5, 0)


class TestDeviceFacts:
    def test_v100_parameters(self):
        assert V100.process_nm == 12
        assert V100.tdp_w == 300.0
        assert V100.memory_bandwidth_gbs == 900.0

    def test_custom_model(self):
        model = GpuKernelModel(
            name="test",
            floor_s=1e-6,
            gemv_cost_per_nnz_s=1e-9,
            dim_scaling=False,
            marginal_cost_per_nnz_s=1e-10,
        )
        assert model.gemv_latency_s(100, 0.0) == pytest.approx(1e-6)
