"""Tests for the exact reference math."""

import numpy as np
import pytest

from repro.baselines.reference import csr_gemv, gemm_exact, gemv_exact, to_csr


class TestGemv:
    def test_matches_numpy(self, rng):
        matrix = rng.integers(-100, 100, size=(8, 5))
        vector = rng.integers(-100, 100, size=8)
        assert np.array_equal(gemv_exact(matrix, vector), vector @ matrix)

    def test_validation(self):
        with pytest.raises(ValueError):
            gemv_exact(np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            gemv_exact(np.zeros(3), np.zeros(3))


class TestGemm:
    def test_matches_numpy(self, rng):
        matrix = rng.integers(-10, 10, size=(6, 4))
        batch = rng.integers(-10, 10, size=(3, 6))
        assert np.array_equal(gemm_exact(matrix, batch), batch @ matrix)

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_exact(np.zeros((3, 3)), np.zeros((2, 4)))


class TestCsr:
    def test_round_trip(self, rng):
        matrix = rng.integers(-10, 10, size=(10, 10))
        matrix[rng.random((10, 10)) < 0.7] = 0
        csr = to_csr(matrix)
        assert csr.nnz == np.count_nonzero(matrix)
        assert np.array_equal(csr.toarray(), matrix)

    def test_csr_gemv_matches_dense(self, rng):
        matrix = rng.integers(-10, 10, size=(12, 7))
        matrix[rng.random((12, 7)) < 0.8] = 0
        vector = rng.integers(-10, 10, size=12)
        assert np.array_equal(
            csr_gemv(to_csr(matrix), vector), gemv_exact(matrix, vector)
        )

    def test_csr_gemv_validation(self, rng):
        csr = to_csr(rng.integers(0, 2, size=(4, 4)))
        with pytest.raises(ValueError):
            csr_gemv(csr, np.zeros(5))
