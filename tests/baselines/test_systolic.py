"""Tests for the dense systolic-array baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.systolic import SystolicArraySimulator, SystolicModel


class TestFunctionalArray:
    def test_2x2_by_hand(self):
        w = np.array([[1, 2], [3, 4]])
        sim = SystolicArraySimulator(w)
        a = np.array([5, 6])
        assert np.array_equal(sim.multiply(a), a @ w)

    def test_identity_weights(self):
        sim = SystolicArraySimulator(np.eye(4, dtype=np.int64))
        a = np.array([1, -2, 3, -4])
        assert np.array_equal(sim.multiply(a), a)

    def test_rectangular_tiles(self, rng):
        for rows, cols in ((3, 5), (5, 3), (1, 4), (4, 1)):
            w = rng.integers(-9, 10, size=(rows, cols))
            a = rng.integers(-9, 10, size=rows)
            sim = SystolicArraySimulator(w)
            assert np.array_equal(sim.multiply(a), a @ w)

    def test_latency_is_fill_plus_drain(self):
        sim = SystolicArraySimulator(np.ones((6, 4), dtype=np.int64))
        assert sim.latency_cycles == 10

    def test_reset_between_products(self, rng):
        w = rng.integers(-5, 6, size=(4, 4))
        sim = SystolicArraySimulator(w)
        a1 = rng.integers(-5, 6, size=4)
        a2 = rng.integers(-5, 6, size=4)
        first = sim.multiply(a1)
        second = sim.multiply(a2)
        assert np.array_equal(first, a1 @ w)
        assert np.array_equal(second, a2 @ w)

    def test_step_validates_shape(self):
        sim = SystolicArraySimulator(np.ones((3, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            sim.step(np.zeros(2))

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            SystolicArraySimulator(np.zeros((0, 3)))

    @given(seed=st.integers(0, 2**16), rows=st.integers(1, 8), cols=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_property(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        w = rng.integers(-100, 101, size=(rows, cols))
        a = rng.integers(-100, 101, size=rows)
        assert np.array_equal(SystolicArraySimulator(w).multiply(a), a @ w)


class TestTiledModel:
    def test_single_tile_matrix(self):
        model = SystolicModel(grid=128)
        est = model.estimate(64, 64, density=0.5)
        assert est.row_tiles == 1 and est.col_tiles == 1
        assert est.total_cycles == 128 + 256

    def test_tiling_counts(self):
        model = SystolicModel(grid=128)
        est = model.estimate(1024, 1024, density=0.02)
        assert est.row_tiles == 8 and est.col_tiles == 8

    def test_utilization_equals_density(self):
        """The dense array's useful-work fraction is the matrix density —
        'most of the computation performed [...] is wasted'."""
        model = SystolicModel()
        assert model.estimate(512, 512, density=0.02).utilization == 0.02

    def test_weight_load_scales_with_tiles(self):
        model = SystolicModel(grid=128)
        one = model.estimate(128, 128, density=1.0)
        four = model.estimate(256, 256, density=1.0)
        assert four.weight_load_cycles == 4 * one.weight_load_cycles

    def test_batch_amortizes_weight_load(self):
        model = SystolicModel()
        b1 = model.estimate(256, 256, 0.5, batch=1)
        b8 = model.estimate(256, 256, 0.5, batch=8)
        assert b8.weight_load_cycles == b1.weight_load_cycles
        assert b8.compute_cycles == 8 * b1.compute_cycles

    def test_latency_seconds(self):
        model = SystolicModel(clock_hz=1e9)
        est = model.estimate(128, 128, 1.0)
        assert est.latency_s(1e9) == pytest.approx(est.total_cycles / 1e9)
        with pytest.raises(ValueError):
            est.latency_s(0)

    def test_validation(self):
        model = SystolicModel()
        with pytest.raises(ValueError):
            model.estimate(0, 4, 0.5)
        with pytest.raises(ValueError):
            model.estimate(4, 4, 1.5)
        with pytest.raises(ValueError):
            model.estimate(4, 4, 0.5, batch=0)


class TestSparsityArgument:
    def test_spatial_beats_dense_array_on_sparse_fixed_matrices(self):
        """The intro's argument, quantified: at 98% sparsity the dense
        array runs ~50x more MACs than needed, and the spatial design's
        latency advantage follows."""
        from repro.bench.fpga_point import evaluation_design_point

        model = SystolicModel()
        point = evaluation_design_point(1024, 0.98, "csd")
        dense_s = model.latency_s(1024, 1024, density=0.02)
        assert dense_s / point.latency_s > 10
