"""Tests for the SIGMA cycle-approximate simulator."""

import numpy as np
import pytest

from repro.baselines.sigma import SigmaConfig, SigmaSimulator


class TestTiling:
    def test_pe_grid_is_128_by_128(self):
        assert SigmaConfig().pe_count == 16384

    def test_no_tiling_while_nonzeros_fit(self):
        sim = SigmaSimulator()
        assert sim.tiles(16384) == 1
        assert not sim.is_tiled(16384)

    def test_tiling_starts_beyond_grid(self):
        """'after 1024x1024, the elements no longer fit in the PE grid and
        the computation must be tiled' (98% sparse: nnz ~ 21k)."""
        sim = SigmaSimulator()
        nnz_1024 = int(1024 * 1024 * 0.02)
        assert sim.is_tiled(nnz_1024)
        assert sim.tiles(nnz_1024) == 2

    def test_zero_nnz_single_tile(self):
        assert SigmaSimulator().tiles(0) == 1

    def test_negative_nnz_rejected(self):
        with pytest.raises(ValueError):
            SigmaSimulator().tiles(-1)


class TestLatencyRegimes:
    def test_nanosecond_scale_when_untiled(self):
        """'For small dimensions, SIGMA does report nanosecond-scale
        latency due to its input broadcast and reduction tree.'"""
        sim = SigmaSimulator()
        for dim in (64, 128, 256, 512):
            nnz = int(dim * dim * 0.02)
            assert sim.latency_s(dim, nnz) < 1e-6

    def test_microsecond_scale_at_low_sparsity(self):
        """'even 90% sparsity and below is enough to push it back into the
        microsecond regime'."""
        sim = SigmaSimulator()
        for sparsity in (0.70, 0.80, 0.90):
            nnz = int(1024 * 1024 * (1.0 - sparsity))
            assert sim.latency_s(1024, nnz) > 0.9e-6

    def test_memory_bound_linear_scaling(self):
        """Once tiled, latency grows roughly linearly with nonzeros."""
        sim = SigmaSimulator()
        t1 = sim.latency_s(4096, 200_000)
        t2 = sim.latency_s(4096, 400_000)
        assert 1.6 < t2 / t1 < 2.4

    def test_latency_increases_with_dim(self):
        sim = SigmaSimulator()
        latencies = [sim.latency_s(d, int(d * d * 0.02)) for d in (64, 512, 1024, 4096)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))


class TestBreakdown:
    def test_total_is_sum_of_phases(self):
        sim = SigmaSimulator()
        breakdown = sim.simulate(1024, 20000)
        assert breakdown.total == breakdown.startup + breakdown.fill + breakdown.compute

    def test_fill_amortized_across_batch(self):
        """Weight-stationary: fill is paid once, compute scales with batch."""
        sim = SigmaSimulator()
        b1 = sim.simulate(1024, 50000, batch=1)
        b4 = sim.simulate(1024, 50000, batch=4)
        assert b4.fill == b1.fill
        assert b4.compute == 4 * b1.compute

    def test_batching_saturation(self):
        """Fig. 23: the speedup ratio saturates because both scale linearly."""
        sim = SigmaSimulator()
        marginal_32 = sim.latency_s(1024, 52429, 33) - sim.latency_s(1024, 52429, 32)
        marginal_2 = sim.latency_s(1024, 52429, 3) - sim.latency_s(1024, 52429, 2)
        assert marginal_32 == pytest.approx(marginal_2)


class TestMatrixInterface:
    def test_latency_for_matrix(self, rng):
        sim = SigmaSimulator()
        matrix = rng.integers(-8, 8, size=(64, 64))
        matrix[rng.random((64, 64)) < 0.9] = 0
        via_matrix = sim.latency_for_matrix_s(matrix)
        via_nnz = sim.latency_s(64, int(np.count_nonzero(matrix)))
        assert via_matrix == via_nnz

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            SigmaSimulator().latency_for_matrix_s(np.zeros((3, 4)))


class TestValidation:
    def test_bad_dim(self):
        with pytest.raises(ValueError):
            SigmaSimulator().simulate(0, 10)

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            SigmaSimulator().simulate(64, 10, batch=0)

    def test_nnz_exceeding_matrix(self):
        with pytest.raises(ValueError):
            SigmaSimulator().simulate(8, 100)
