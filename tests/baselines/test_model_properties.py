"""Property-based invariants of the baseline performance models.

These guard the models' physical sanity over their whole input space, not
just the evaluation points: latency is positive and monotone in work,
batching never makes a single product cheaper, and tiling boundaries
behave continuously.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.gpu import CUSPARSE, OPTIMIZED_KERNEL
from repro.baselines.sigma import SigmaSimulator

dims = st.integers(min_value=1, max_value=8192)
densities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
batches = st.integers(min_value=1, max_value=256)


class TestGpuModelProperties:
    @given(dims, densities)
    @settings(max_examples=80, deadline=None)
    def test_latency_at_least_floor(self, dim, density):
        for model in (CUSPARSE, OPTIMIZED_KERNEL):
            assert model.gemv_latency_s(dim, density) >= model.floor_s

    @given(dims, densities, densities)
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_density(self, dim, d1, d2):
        lo, hi = sorted((d1, d2))
        for model in (CUSPARSE, OPTIMIZED_KERNEL):
            assert model.gemv_latency_s(dim, lo) <= model.gemv_latency_s(dim, hi)

    @given(dims, densities, batches)
    @settings(max_examples=80, deadline=None)
    def test_batching_monotone_and_sublinear(self, dim, density, batch):
        for model in (CUSPARSE, OPTIMIZED_KERNEL):
            one = model.spmm_latency_s(dim, density, 1)
            many = model.spmm_latency_s(dim, density, batch)
            assert many >= one
            assert many <= batch * one + 1e-18

    @given(dims, densities, batches)
    @settings(max_examples=50, deadline=None)
    def test_throughput_consistent(self, dim, density, batch):
        model = CUSPARSE
        throughput = model.throughput_vectors_per_s(dim, density, batch)
        latency = model.spmm_latency_s(dim, density, batch)
        assert abs(throughput * latency - batch) < 1e-6 * batch


class TestSigmaModelProperties:
    @given(dims, st.data())
    @settings(max_examples=80, deadline=None)
    def test_latency_positive_and_monotone_in_nnz(self, dim, data):
        sim = SigmaSimulator()
        max_nnz = dim * dim
        nnz1 = data.draw(st.integers(0, max_nnz))
        nnz2 = data.draw(st.integers(0, max_nnz))
        lo, hi = sorted((nnz1, nnz2))
        assert 0 < sim.latency_s(dim, lo) <= sim.latency_s(dim, hi)

    @given(dims, st.data(), batches)
    @settings(max_examples=50, deadline=None)
    def test_batch_linear_beyond_fill(self, dim, data, batch):
        sim = SigmaSimulator()
        nnz = data.draw(st.integers(0, dim * dim))
        b1 = sim.simulate(dim, nnz, 1)
        bn = sim.simulate(dim, nnz, batch)
        assert bn.compute == batch * b1.compute
        assert bn.fill == b1.fill

    @given(st.integers(1, 10**7))
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_nonzeros(self, nnz):
        sim = SigmaSimulator()
        tiles = sim.tiles(nnz)
        assert (tiles - 1) * sim.config.pe_count < max(nnz, 1) <= tiles * sim.config.pe_count
