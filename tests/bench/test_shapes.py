"""Tests for shape-assertion helpers."""

import pytest

from repro.bench.shapes import (
    all_within_band,
    is_monotone_decreasing,
    is_monotone_increasing,
    linear_fit_r_squared,
    ratio,
    within_band,
)


class TestLinearFit:
    def test_perfect_line(self):
        assert linear_fit_r_squared([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_noise_lowers_r2(self):
        assert linear_fit_r_squared([1, 2, 3, 4], [2, 5, 3, 9]) < 1.0

    def test_constant_data(self):
        assert linear_fit_r_squared([1, 2, 3], [5, 5, 5]) == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit_r_squared([1], [2])


class TestMonotone:
    def test_decreasing(self):
        assert is_monotone_decreasing([5, 4, 3])
        assert not is_monotone_decreasing([5, 6, 3])

    def test_decreasing_with_tolerance(self):
        assert is_monotone_decreasing([5.0, 5.04, 3.0], tolerance=0.01)
        assert not is_monotone_decreasing([5.0, 5.2, 3.0], tolerance=0.01)

    def test_increasing(self):
        assert is_monotone_increasing([1, 2, 2, 3])
        assert not is_monotone_increasing([1, 0.5])


class TestBands:
    def test_within_band(self):
        assert within_band(5, 1, 10)
        assert not within_band(11, 1, 10)
        assert within_band(1, 1, 10)

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError):
            within_band(5, 10, 1)

    def test_all_within_band(self):
        assert all_within_band([2, 3, 4], 1, 5)
        assert not all_within_band([2, 9], 1, 5)


class TestRatio:
    def test_basic(self):
        assert ratio(10, 4) == pytest.approx(2.5)

    def test_zero_denominator(self):
        with pytest.raises(ValueError):
            ratio(1, 0)
