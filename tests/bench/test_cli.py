"""Tests for the `python -m repro.bench` command-line runner."""

from repro.bench.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "fig23" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_named_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Bit-serial addition" in out
        assert "1010" in out

    def test_runs_multiple(self, capsys):
        assert main(["table1", "fig08"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig08" in out

    def test_ablation_addressable(self, capsys):
        assert main(["ablation_recoding"]) == 0
        assert "NAF" in capsys.readouterr().out

    def test_efficiency_addressable(self, capsys):
        assert main(["efficiency"]) == 0
        assert "Energy per product" in capsys.readouterr().out

    def test_csv_flag(self, tmp_path, capsys):
        assert main(["table1", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()

    def test_csv_flag_missing_dir(self, capsys):
        assert main(["--csv"]) == 2
