"""Fast unit-level smoke of the study experiments (reduced scale)."""

from repro.bench.studies import (
    study_dense_accelerator,
    study_quantization_width,
    study_reservoir_sparsity,
)


class TestDenseAcceleratorStudy:
    def test_rows_and_monotonicity(self):
        result = study_dense_accelerator()
        speedups = result.column("speedup")
        # The spatial advantage grows with dimension as tiling compounds.
        assert speedups[-1] > speedups[0]
        assert all(s > 1 for s in speedups)


class TestReservoirSparsityStudy:
    def test_reduced_scale(self):
        result = study_reservoir_sparsity(dim=100, train_len=900)
        ones = {r["element_sparsity_pct"]: r["ones"] for r in result.rows}
        assert ones[95] < ones[0] * 0.1
        for row in result.rows:
            assert row["narma_nrmse"] < 1.0


class TestQuantizationStudy:
    def test_reduced_scale(self):
        result = study_quantization_width(dim=100, train_len=900)
        by_width = {r["weight_width"]: r for r in result.rows}
        assert by_width[4]["ones"] < by_width[8]["ones"]
        assert by_width[8]["narma_nrmse"] < 1.0
