"""Smoke tests for the per-figure experiment functions (fast subset).

The heavy sweeps (Figs. 10-23) are exercised by the benchmark suite in
``benchmarks/``; here we validate the registry, row schemas, and the fast
experiments end to end.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    fig05_bit_sparsity,
    fig06_element_vs_bit_sparsity,
    fig07_matrix_size,
    fig08_bitwidth,
    fig09_csd,
    table1_bitserial_addition,
)
from repro.bench.harness import format_experiment
from repro.bench.shapes import linear_fit_r_squared


class TestRegistry:
    def test_every_paper_figure_present(self):
        expected = {
            "table1",
            "fig05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13_14",
            "fig15_16",
            "fig17",
            "fig18",
            "fig19_20",
            "fig21_22",
            "fig23",
        }
        assert set(EXPERIMENTS) == expected

    def test_all_entries_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)


class TestTable1:
    def test_reproduces_paper_rows(self):
        result = table1_bitserial_addition()
        assert [r["cin"] for r in result.rows] == [0, 1, 1, 1]
        assert [r["s"] for r in result.rows] == [0, 1, 0, 1]
        assert [r["cout"] for r in result.rows] == [1, 1, 1, 0]
        assert [r["result"] for r in result.rows] == ["0000", "1000", "0100", "1010"]
        assert "decoded result = 10" in result.notes[0]


class TestFig05:
    def test_linear_in_ones(self):
        result = fig05_bit_sparsity(dim=32)
        ones = result.column("ones")
        luts = result.column("lut")
        assert linear_fit_r_squared(ones, luts) > 0.999

    def test_cost_decreases_with_sparsity(self):
        result = fig05_bit_sparsity(dim=32)
        luts = result.column("lut")
        assert all(b <= a for a, b in zip(luts, luts[1:]))

    def test_lutram_flat(self):
        result = fig05_bit_sparsity(dim=32)
        lutrams = result.column("lutram")
        assert max(lutrams) == min(lutrams)


class TestFig06:
    def test_schemes_within_noise(self):
        result = fig06_element_vs_bit_sparsity(dim=32)
        for row in result.rows:
            if row["lut_bs"] > 2000:
                assert abs(row["lut_es"] - row["lut_bs"]) / row["lut_bs"] < 0.10


class TestFig07:
    def test_quadratic_in_dim(self):
        result = fig07_matrix_size()
        elements = result.column("elements")
        luts = result.column("lut")
        assert linear_fit_r_squared(elements, luts) > 0.999


class TestFig08:
    def test_linear_in_bitwidth(self):
        result = fig08_bitwidth(dim=32)
        widths = result.column("bitwidth")
        luts = result.column("lut")
        assert linear_fit_r_squared(widths, luts) > 0.999


class TestFig09:
    def test_csd_strictly_better(self):
        result = fig09_csd(dim=32)
        for row in result.rows:
            assert row["lut_csd"] <= row["lut_v"]

    def test_savings_near_17_percent(self):
        result = fig09_csd(dim=64)
        # All but the fully-sparse endpoint should save ~17%.
        savings = [
            row["lut_saving_pct"]
            for row in result.rows
            if row["element_sparsity_pct"] < 100
        ]
        for saving in savings:
            assert 12.0 < saving < 22.0


class TestFormatting:
    def test_every_fast_experiment_formats(self):
        for fn in (
            table1_bitserial_addition,
            lambda: fig05_bit_sparsity(dim=16),
            lambda: fig09_csd(dim=16),
        ):
            text = format_experiment(fn())
            assert "==" in text
