"""Tests for FPGA design-point evaluation."""

import numpy as np
import pytest

from repro.bench.fpga_point import design_point_from_matrix, evaluation_design_point
from repro.fpga.device import DesignDoesNotFitError


class TestDesignPoint:
    def test_small_point_fields(self, rng):
        matrix = rng.integers(-128, 128, size=(64, 64))
        matrix[rng.random((64, 64)) < 0.95] = 0
        point = design_point_from_matrix(matrix, 0.95, scheme="csd")
        assert point.dim == 64
        assert point.fits
        assert point.slr_span == 1
        assert point.cycles == 24  # 8 + 8 + 6 + 2
        assert 0 < point.latency_ns < 150
        assert point.power_w > 0

    def test_batch_latency_linear(self, rng):
        matrix = rng.integers(-8, 8, size=(16, 16))
        point = design_point_from_matrix(matrix, 0.0)
        assert point.batch_latency_s(4) == pytest.approx(4 * point.latency_s)
        with pytest.raises(ValueError):
            point.batch_latency_s(0)

    def test_csd_cheaper_than_pn(self, rng):
        matrix = rng.integers(-128, 128, size=(32, 32))
        pn = design_point_from_matrix(matrix, 0.0, scheme="pn")
        csd = design_point_from_matrix(matrix, 0.0, scheme="csd")
        assert csd.ones < pn.ones
        assert csd.luts < pn.luts


class TestDigestReuse:
    def test_same_matrix_bytes_share_one_evaluation(self, rng):
        """Content-addressed memoization: independently-generated but
        byte-identical matrices evaluate once (same object back)."""
        matrix = rng.integers(-64, 64, size=(24, 24))
        a = design_point_from_matrix(matrix, 0.5, scheme="csd")
        b = design_point_from_matrix(matrix.copy(), 0.5, scheme="csd")
        assert a is b

    def test_different_options_evaluate_separately(self, rng):
        matrix = rng.integers(-64, 64, size=(24, 24))
        a = design_point_from_matrix(matrix, 0.5, scheme="csd")
        b = design_point_from_matrix(matrix, 0.5, scheme="pn")
        c = design_point_from_matrix(matrix, 0.5, scheme="csd", input_width=6)
        assert a is not b
        assert a is not c
        assert b.ones != c.ones or b.ones != a.ones


class TestServeCacheIntegration:
    def test_cache_backed_planning_shares_the_plan_memo(self, rng):
        """Design-point evaluation through a serve CompileCache re-plans
        nothing a deploy (or an earlier sweep) already planned."""
        from repro.core.stages import STAGES
        from repro.serve.cache import CompileCache

        matrix = rng.integers(-64, 64, size=(20, 20))
        cache = CompileCache()
        point = design_point_from_matrix(matrix, 0.0, scheme="csd", cache=cache)
        assert point.fits
        # The plan is now memoized: a service deploying the same matrix —
        # or a re-evaluation after the point memo is dropped — hits it.
        before = STAGES.snapshot()
        plan = cache.get_plan(matrix, input_width=8, scheme="csd")
        assert STAGES.delta(before).get("plan", 0) == 0
        assert cache.plan_hits >= 1
        assert plan.rows == 20

    def test_cache_backed_point_keys_separately_from_seeded(self, rng):
        from repro.serve.cache import CompileCache

        matrix = rng.integers(-64, 64, size=(20, 20))
        seeded = design_point_from_matrix(matrix, 0.0, scheme="csd")
        deterministic = design_point_from_matrix(
            matrix, 0.0, scheme="csd", cache=CompileCache()
        )
        assert seeded is not deterministic


class TestEvaluationCache:
    def test_cached_identity(self):
        a = evaluation_design_point(64, 0.95, "csd")
        b = evaluation_design_point(64, 0.95, "csd")
        assert a is b

    def test_different_configs_differ(self):
        a = evaluation_design_point(64, 0.95, "csd")
        b = evaluation_design_point(64, 0.98, "csd")
        assert a.ones != b.ones

    def test_paper_scale_latencies(self):
        """Headline claim: FPGA latency below ~120 ns across the eval dims."""
        for dim in (64, 256, 1024):
            point = evaluation_design_point(dim, 0.98, "csd")
            assert point.latency_ns < 150
