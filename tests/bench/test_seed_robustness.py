"""Seed robustness: the paper's shape claims are not seed artifacts.

Each core shape assertion (linearity in ones, CSD savings band,
element/bit-sparse parity) must hold across several independent seeds at
reduced scale.
"""

import pytest

from repro.bench.experiments import (
    fig05_bit_sparsity,
    fig06_element_vs_bit_sparsity,
    fig09_csd,
)
from repro.bench.shapes import linear_fit_r_squared


@pytest.mark.parametrize("seed", [11, 222, 3333])
class TestSeedRobustness:
    def test_linearity_in_ones(self, seed):
        result = fig05_bit_sparsity(dim=32, seed=seed)
        assert linear_fit_r_squared(result.column("ones"), result.column("lut")) > 0.999

    def test_element_bit_parity(self, seed):
        result = fig06_element_vs_bit_sparsity(dim=32, seed=seed)
        for row in result.rows:
            if row["lut_bs"] > 2000:
                assert abs(row["lut_es"] - row["lut_bs"]) / row["lut_bs"] < 0.12

    def test_csd_savings_band(self, seed):
        result = fig09_csd(dim=32, seed=seed)
        for row in result.rows:
            if row["element_sparsity_pct"] < 90:
                assert 10.0 < row["lut_saving_pct"] < 24.0
