"""Tests for CSV export and the energy-efficiency analysis."""

import pytest

from repro.bench.efficiency import efficiency_comparison, energy_per_product
from repro.bench.export import to_csv, write_csv
from repro.bench.harness import ExperimentResult


class TestEnergy:
    def test_energy_math(self):
        assert energy_per_product(100.0, 1e-6) == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_per_product(-1.0, 1e-6)

    def test_comparison_shape(self):
        result = efficiency_comparison()
        assert len(result.rows) == 4
        for row in result.rows:
            # The spatial design wins on energy at every dimension — the
            # "fundamental computational simplification" argument.
            assert row["energy_gain"] > 1.0
            assert row["fpga_uj"] < row["gpu_uj"]

    def test_gpu_energy_uses_tdp(self):
        result = efficiency_comparison()
        assert all(row["gpu_power_w"] == 300.0 for row in result.rows)


class TestCsvExport:
    def make(self):
        return ExperimentResult(
            experiment_id="unit",
            title="t",
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}],
        )

    def test_to_csv_union_columns(self):
        text = to_csv(self.make())
        lines = text.strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,2.5,"
        assert lines[2] == "3,,x"

    def test_write_csv(self, tmp_path):
        path = write_csv(self.make(), tmp_path)
        assert path.name == "unit.csv"
        assert path.read_text().startswith("a,b,c")

    def test_write_creates_directory(self, tmp_path):
        path = write_csv(self.make(), tmp_path / "nested" / "dir")
        assert path.exists()
