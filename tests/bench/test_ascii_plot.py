"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.ascii_plot import render_chart
from repro.bench.harness import ExperimentResult


def make_result():
    return ExperimentResult(
        experiment_id="unit",
        title="t",
        rows=[
            {"x": 1, "a": 10.0, "b": 100.0},
            {"x": 2, "a": 20.0, "b": 50.0},
            {"x": 4, "a": 40.0, "b": 25.0},
        ],
    )


class TestRenderChart:
    def test_basic_structure(self):
        text = render_chart(make_result(), "x", ["a", "b"])
        lines = text.splitlines()
        assert "unit" in lines[0]
        assert any("o" in line for line in lines)  # series a marker
        assert any("x" in line for line in lines[1:])  # series b marker
        assert "o=a" in lines[-1] and "x=b" in lines[-1]

    def test_log_scale(self):
        text = render_chart(make_result(), "x", ["b"], logy=True)
        assert "(log y)" in text.splitlines()[0]

    def test_log_scale_rejects_nonpositive(self):
        result = ExperimentResult("id", "t", [{"x": 1, "a": 0.0}])
        with pytest.raises(ValueError):
            render_chart(result, "x", ["a"], logy=True)

    def test_missing_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart(make_result(), "x", ["nope"])

    def test_axis_labels_present(self):
        text = render_chart(make_result(), "x", ["a"])
        assert "1" in text and "4" in text  # x extremes
        assert "40" in text and "10" in text  # y extremes

    def test_extremes_plotted_at_edges(self):
        text = render_chart(make_result(), "x", ["a"], width=20, height=8)
        body = [l for l in text.splitlines() if "|" in l]
        top = body[0].split("|", 1)[1]
        bottom = body[-1].split("|", 1)[1]
        assert top.rstrip().endswith("o")  # max at top-right
        assert bottom.lstrip().startswith("o")  # min at bottom-left


class TestCliPlot:
    def test_plot_flag(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig08", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "fig08: lut, ff vs bitwidth" in out
