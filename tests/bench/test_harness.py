"""Tests for the experiment harness."""

import pytest

from repro.bench.harness import ExperimentResult, format_experiment, format_table


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="figX",
            title="Test",
            rows=[{"a": 1, "b": 2.0}, {"a": 3, "b": 4.5, "c": "x"}],
            notes=["a note"],
        )

    def test_column(self):
        result = self.make()
        assert result.column("a") == [1, 3]
        assert result.column("c") == [None, "x"]

    def test_series(self):
        result = self.make()
        assert result.series("a", "b") == [(1, 2.0), (3, 4.5)]
        assert result.series("a", "c") == [(3, "x")]


class TestFormatting:
    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_union_of_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_value_formats(self):
        text = format_table(
            [{"int": 12, "float": 3.14159, "big": 1e7, "bool": True, "s": "hi"}]
        )
        assert "3.142" in text
        assert "1.000e+07" in text
        assert "yes" in text
        assert "hi" in text

    def test_format_experiment_includes_notes(self):
        result = ExperimentResult("id1", "Title", [{"x": 1}], notes=["check this"])
        text = format_experiment(result)
        assert "== id1: Title ==" in text
        assert "note: check this" in text

    def test_alignment(self):
        text = format_table([{"col": 1}, {"col": 100}])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1]) == len(lines[2])
