"""Structural tests for SystemVerilog emission."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.components import (
    ConstantZero,
    DFF,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)
from repro.rtl.emitter import emit_verilog, emit_verilog_from_circuit, sanitize_identifier


class TestSanitize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("P.c0.b1.l2n3", "P_c0_b1_l2n3"),
            ("simple", "simple"),
            ("0starts_with_digit", "n_0starts_with_digit"),
            ("", "n_"),
            ("a-b c", "a_b_c"),
        ],
    )
    def test_cases(self, raw, expected):
        assert sanitize_identifier(raw) == expected


class TestEmission:
    def test_module_skeleton(self, rng):
        matrix = rng.integers(-8, 8, size=(4, 3))
        text = emit_verilog(plan_matrix(matrix, input_width=4), "testmod")
        assert text.startswith("// Auto-generated")
        assert "module testmod" in text
        assert "input  logic [ROWS-1:0] in_bits" in text
        assert "output logic [COLS-1:0] out_bits" in text
        assert text.rstrip().endswith("endmodule")

    def test_localparams_match_plan(self, rng):
        matrix = rng.integers(-8, 8, size=(5, 2))
        plan = plan_matrix(matrix, input_width=6)
        circuit = build_circuit(plan)
        text = emit_verilog_from_circuit(circuit)
        assert f"ROWS = {plan.rows}" in text
        assert f"COLS = {plan.cols}" in text
        assert f"INPUT_WIDTH = {plan.input_width}" in text
        assert f"RESULT_WIDTH = {plan.result_width}" in text
        assert f"DECODE_DELTA = {circuit.decode_delta - 1}" in text

    def test_every_column_has_output_assign(self, rng):
        matrix = rng.integers(-4, 4, size=(3, 5))
        text = emit_verilog(plan_matrix(matrix))
        for col in range(5):
            assert f"assign out_bits[{col}] = " in text

    def test_always_ff_block_count_matches_registers(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 4))
        plan = plan_matrix(matrix, input_width=4)
        circuit = build_circuit(plan)
        text = emit_verilog_from_circuit(circuit)
        registered = sum(
            1
            for c in circuit.netlist.components
            if isinstance(c, (SerialAdder, SerialSubtractor, SerialNegator, DFF))
        )
        assert text.count("always_ff @(posedge clk)") == registered

    def test_subtractor_carry_resets_to_one(self, rng):
        matrix = np.array([[1], [-1]])
        text = emit_verilog(plan_matrix(matrix, input_width=4))
        assert "2'b10" in text  # {carry=1, sum=0} on reset

    def test_zero_column_ties_off(self):
        matrix = np.array([[1, 0]])
        text = emit_verilog(plan_matrix(matrix, input_width=4))
        assert "= 1'b0;" in text

    def test_unique_identifiers(self, rng):
        matrix = rng.integers(-8, 8, size=(8, 8))
        text = emit_verilog(plan_matrix(matrix, input_width=4))
        decls = [
            line.strip() for line in text.splitlines() if line.strip().startswith("logic ")
        ]
        names = []
        for decl in decls:
            names.extend(
                token.strip(" ,;")
                for token in decl.removeprefix("logic ").split(",")
            )
        names = [n for n in names if n]
        assert len(names) == len(set(names))

    def test_deterministic_output(self, rng):
        matrix = rng.integers(-8, 8, size=(5, 5))
        plan = plan_matrix(matrix, input_width=4)
        assert emit_verilog(plan) == emit_verilog(plan)
