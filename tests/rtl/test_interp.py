"""Unit tests for the SystemVerilog-subset interpreter."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.rtl.emitter import emit_verilog
from repro.rtl.interp import parse_module


def small_module(rng=None, matrix=None, input_width=4):
    if matrix is None:
        matrix = np.array([[1, -2], [3, 0]])
    return parse_module(emit_verilog(plan_matrix(matrix, input_width=input_width)))


class TestParsing:
    def test_module_metadata(self):
        module = small_module()
        assert module.name == "fixed_matrix_mult"
        assert module.rows == 2
        assert module.cols == 2
        assert "RESULT_WIDTH" in module.params
        assert "DECODE_DELTA" in module.params

    def test_register_kinds_present(self):
        module = small_module()
        kinds = {reg.kind for reg in module.regs}
        assert "add" in kinds
        assert "dff" in kinds
        assert "neg" in kinds  # the all-negative column needs a negator

    def test_subtractor_for_mixed_sign_column(self):
        module = small_module(matrix=np.array([[1], [-2]]))
        assert any(reg.kind == "sub" for reg in module.regs)

    def test_negator_parsed(self):
        module = small_module(matrix=np.array([[-1]]))
        assert any(reg.kind == "neg" for reg in module.regs)

    def test_subtractor_reset_carry_one(self):
        module = small_module(matrix=np.array([[1], [-2]]))
        subs = [reg for reg in module.regs if reg.kind == "sub"]
        assert subs and all(reg.reset_carry == 1 for reg in subs)

    def test_adder_reset_carry_zero(self):
        module = small_module(matrix=np.array([[1], [1]]))
        adds = [reg for reg in module.regs if reg.kind == "add"]
        assert adds and all(reg.reset_carry == 0 for reg in adds)

    def test_missing_module_rejected(self):
        with pytest.raises(ValueError):
            parse_module("// nothing here")

    def test_missing_params_rejected(self):
        with pytest.raises(ValueError):
            parse_module("module m; endmodule")


class TestExecution:
    def test_reset_restores_power_on_values(self):
        module = small_module()
        module.clock([1, 1])
        module.reset()
        # Sum registers clear to 0; negator/subtractor carries reset to 1.
        for reg in module.regs:
            assert module.state[reg.sum_name] == reg.reset_sum == 0
            if reg.carry_name:
                assert module.state[reg.carry_name] == reg.reset_carry

    def test_wrong_input_width_rejected(self):
        module = small_module()
        with pytest.raises(ValueError):
            module.clock([1])

    def test_out_bits_shape(self):
        module = small_module()
        module.clock([0, 0])
        assert len(module.out_bits()) == 2

    def test_constant_zero_column(self):
        module = small_module(matrix=np.array([[1, 0]]))
        for __ in range(8):
            module.clock([1])
        # Column 1 is tied off: always zero.
        assert module.out_bits()[1] == 0
