"""Structural tests for the generated self-checking testbench."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.rtl.testbench import emit_testbench


class TestTestbench:
    def test_skeleton(self, rng):
        matrix = rng.integers(-8, 8, size=(3, 2))
        vectors = rng.integers(-8, 8, size=(2, 3))
        text = emit_testbench(plan_matrix(matrix, input_width=4), vectors)
        assert "module fixed_matrix_mult_tb;" in text
        assert "fixed_matrix_mult dut" in text
        assert "$finish;" in text
        assert 'NUM_TESTS = 2' in text

    def test_golden_values_embedded(self, rng):
        matrix = np.array([[2], [3]])
        vectors = np.array([[1, 1]])
        plan = plan_matrix(matrix, input_width=4)
        text = emit_testbench(plan, vectors)
        golden = 5  # 1*2 + 1*3
        literal = format(golden, f"0{plan.result_width}b")
        assert literal in text

    def test_negative_golden_encoded_twos_complement(self):
        matrix = np.array([[-1]])
        vectors = np.array([[1]])
        plan = plan_matrix(matrix, input_width=4)
        text = emit_testbench(plan, vectors)
        mask = (1 << plan.result_width) - 1
        literal = format(-1 & mask, f"0{plan.result_width}b")
        assert literal in text

    def test_wrong_vector_width_rejected(self, rng):
        matrix = rng.integers(-4, 4, size=(3, 2))
        with pytest.raises(ValueError):
            emit_testbench(plan_matrix(matrix), np.zeros((1, 5)))

    def test_custom_names(self, rng):
        matrix = rng.integers(-4, 4, size=(2, 2))
        vectors = rng.integers(-4, 4, size=(1, 2))
        text = emit_testbench(
            plan_matrix(matrix, input_width=4),
            vectors,
            module_name="mycore",
            tb_name="mytb",
        )
        assert "module mytb;" in text
        assert "mycore dut" in text
