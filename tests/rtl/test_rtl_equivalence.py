"""Execute the *emitted SystemVerilog text* and compare with golden math.

This is the functional-simulation check of the paper's RTL-generation
flow: the emitted module is parsed and executed with RTL edge semantics by
:mod:`repro.rtl.interp`, independent of the netlist objects it came from.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bits import from_twos_complement_bits, sign_extended_stream
from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.rtl.emitter import emit_verilog_from_circuit
from repro.rtl.interp import parse_module


def run_rtl(matrix, vector, input_width, scheme="pn", tree_style="compact", seed=0):
    matrix = np.asarray(matrix, dtype=np.int64)
    plan = plan_matrix(
        matrix,
        input_width=input_width,
        scheme=scheme,
        rng=np.random.default_rng(seed),
        tree_style=tree_style,
    )
    circuit = build_circuit(plan)
    module = parse_module(emit_verilog_from_circuit(circuit))
    run = circuit.run_cycles
    streams = [
        sign_extended_stream(int(v), input_width, run) for v in np.asarray(vector)
    ]
    module.reset()
    outs = []
    for cycle in range(run):
        module.clock([streams[r][cycle] for r in range(plan.rows)])
        outs.append(module.out_bits())
    delta = circuit.decode_delta - 1
    width = plan.result_width
    return np.array(
        [
            from_twos_complement_bits([outs[delta + k][j] for k in range(width)])
            for j in range(plan.cols)
        ]
    )


class TestRtlMatchesGolden:
    def test_small_dense(self, rng):
        matrix = rng.integers(-8, 8, size=(4, 4))
        vector = rng.integers(-8, 8, size=4)
        assert np.array_equal(run_rtl(matrix, vector, 4), vector @ matrix)

    def test_negative_heavy(self, rng):
        matrix = -rng.integers(0, 16, size=(5, 3))
        vector = rng.integers(-16, 16, size=5)
        assert np.array_equal(run_rtl(matrix, vector, 5), vector @ matrix)

    def test_zero_column(self):
        matrix = np.array([[3, 0], [1, 0]])
        vector = np.array([2, -1])
        assert np.array_equal(run_rtl(matrix, vector, 4), vector @ matrix)

    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_all_configurations(self, rng, scheme, tree_style):
        matrix = rng.integers(-16, 16, size=(6, 4))
        vector = rng.integers(-8, 8, size=6)
        got = run_rtl(matrix, vector, 4, scheme=scheme, tree_style=tree_style)
        assert np.array_equal(got, vector @ matrix)


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    width=st.integers(1, 6),
    input_width=st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_rtl_equivalence_property(seed, rows, cols, width, input_width):
    rng = np.random.default_rng(seed)
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    matrix = rng.integers(lo, hi + 1, size=(rows, cols))
    ilo = -(1 << (input_width - 1))
    ihi = (1 << (input_width - 1)) - 1
    vector = rng.integers(ilo, ihi + 1, size=rows)
    scheme = "csd" if seed % 2 else "pn"
    got = run_rtl(matrix, vector, input_width, scheme=scheme, seed=seed)
    assert np.array_equal(got, vector @ matrix)
