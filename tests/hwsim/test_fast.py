"""Equivalence and capability tests for the vectorized simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit


def both_engines(matrix, input_width=6, scheme="pn", tree_style="compact"):
    plan = plan_matrix(
        np.asarray(matrix),
        input_width=input_width,
        scheme=scheme,
        rng=np.random.default_rng(0),
        tree_style=tree_style,
    )
    circuit = build_circuit(plan)
    return circuit, FastCircuit.from_compiled(circuit)


class TestEquivalence:
    def test_matches_object_simulator(self, rng):
        matrix = rng.integers(-16, 16, size=(10, 8))
        circuit, fast = both_engines(matrix)
        vector = rng.integers(-32, 32, size=10)
        assert np.array_equal(fast.multiply(vector), circuit.multiply(vector))

    @pytest.mark.parametrize("scheme", ["pn", "csd", "naf"])
    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_all_configurations(self, rng, scheme, tree_style):
        matrix = rng.integers(-8, 8, size=(7, 5))
        circuit, fast = both_engines(matrix, scheme=scheme, tree_style=tree_style)
        vector = rng.integers(-16, 16, size=7)
        want = vector @ matrix
        assert np.array_equal(fast.multiply(vector), want)
        assert np.array_equal(circuit.multiply(vector), want)

    def test_batch(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 4))
        __, fast = both_engines(matrix)
        batch = rng.integers(-16, 16, size=(4, 6))
        assert np.array_equal(fast.multiply_batch(batch), batch @ matrix)

    def test_degenerate_shapes(self, rng):
        for matrix in (np.zeros((3, 3), dtype=np.int64), np.eye(4, dtype=np.int64), -np.ones((2, 2), dtype=np.int64)):
            circuit, fast = both_engines(matrix)
            vector = rng.integers(-16, 16, size=matrix.shape[0])
            assert np.array_equal(fast.multiply(vector), circuit.multiply(vector))

    @given(seed=st.integers(0, 2**16), rows=st.integers(1, 10), cols=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-32, 32, size=(rows, cols))
        matrix[rng.random((rows, cols)) < 0.4] = 0
        circuit, fast = both_engines(matrix)
        vector = rng.integers(-32, 32, size=rows)
        assert np.array_equal(fast.multiply(vector), circuit.multiply(vector))


class TestScale:
    @pytest.mark.slow
    def test_gate_level_128x128(self, rng):
        """Cycle-accurate verification of a matrix well beyond what the
        object simulator handles comfortably."""
        matrix = rng.integers(-128, 128, size=(128, 128))
        matrix[rng.random((128, 128)) < 0.9] = 0
        plan = plan_matrix(matrix, input_width=8, scheme="csd", rng=rng)
        fast = FastCircuit.from_compiled(build_circuit(plan))
        vector = rng.integers(-128, 128, size=128)
        assert np.array_equal(fast.multiply(vector), vector @ matrix)

    def test_validation(self, rng):
        matrix = rng.integers(-8, 8, size=(4, 4))
        __, fast = both_engines(matrix, input_width=4)
        with pytest.raises(ValueError):
            fast.multiply([1, 2, 3])
        with pytest.raises(ValueError):
            fast.multiply([99, 0, 0, 0])
