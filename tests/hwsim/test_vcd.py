"""Tests for VCD waveform export."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.vcd import dump_vcd


def build(rng, rows=4, cols=3, input_width=4):
    matrix = rng.integers(-4, 5, size=(rows, cols))
    return matrix, build_circuit(plan_matrix(matrix, input_width=input_width))


class TestVcdStructure:
    def test_header_sections_present(self, rng):
        __, circuit = build(rng)
        text = dump_vcd(circuit, rng.integers(-8, 8, size=4))
        for section in ("$timescale", "$scope", "$enddefinitions", "$dumpvars"):
            assert section in text

    def test_all_components_declared(self, rng):
        __, circuit = build(rng)
        text = dump_vcd(circuit, rng.integers(-8, 8, size=4))
        declared = text.count("$var wire 1 ")
        assert declared == len(circuit.netlist.components)

    def test_prefix_filter(self, rng):
        __, circuit = build(rng)
        full = dump_vcd(circuit, np.zeros(4, dtype=np.int64))
        filtered = dump_vcd(
            circuit, np.zeros(4, dtype=np.int64), signal_prefixes=("sub.",)
        )
        assert filtered.count("$var") < full.count("$var")
        # Inputs are always included.
        assert "in0" in filtered

    def test_write_to_file(self, rng, tmp_path):
        __, circuit = build(rng)
        path = tmp_path / "wave.vcd"
        text = dump_vcd(circuit, np.zeros(4, dtype=np.int64), path=path)
        assert path.read_text() == text

    def test_unique_id_codes(self, rng):
        __, circuit = build(rng, rows=8, cols=8)
        text = dump_vcd(circuit, np.zeros(8, dtype=np.int64))
        codes = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var wire")
        ]
        assert len(codes) == len(set(codes))


class TestVcdContent:
    def test_input_waveform_matches_stream(self, rng):
        """The VCD's record for input row 0 reproduces its serial bits."""
        from repro.core.bits import sign_extended_stream

        matrix = np.array([[1], [1]])
        circuit = build_circuit(plan_matrix(matrix, input_width=4))
        value = -3
        text = dump_vcd(circuit, [value, 0])
        # Find the code for in0.
        code = next(
            line.split()[3]
            for line in text.splitlines()
            if line.endswith(" in0 $end")
        )
        # Replay value changes into a per-cycle waveform.
        expected = sign_extended_stream(value, 4, circuit.run_cycles)
        current = 0
        time = 0
        waveform = {}
        for line in text.splitlines():
            if line.startswith("#"):
                time = int(line[1:])
            elif line and line[0] in "01" and line[1:] == code:
                waveform[time] = int(line[0])
        level = 0
        got = []
        for cycle in range(1, circuit.run_cycles + 1):
            level = waveform.get(cycle, level)
            got.append(level)
        assert got == expected

    def test_simulation_unaffected_by_dumping(self, rng):
        matrix, circuit = build(rng)
        vector = rng.integers(-8, 8, size=4)
        golden = circuit.multiply(vector)
        dump_vcd(circuit, vector)
        assert np.array_equal(circuit.multiply(vector), golden)
