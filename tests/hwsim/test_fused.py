"""The fused engine: schedule recovery, equivalence, and fault refusal.

The fused engine is the repository's first *non-simulating* execution
path — ``fuse`` recovers the static CSD shift-add schedule from a
lowered kernel's topology and executes it without a cycle loop — so the
load-bearing property is bit-exactness against the gate-level engines
it replaces on the serving path.  The sweep here crosses sparsity,
input width, recoding scheme, signed edge values, and batch sizes that
span the bit-plane engine's 64-lane word boundary; the gate engines are
the oracle throughout.
"""

import numpy as np
import pytest

from repro.core.bits import signed_range
from repro.core.stages import STAGES
from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import ALL_ENGINES, FastCircuit, lower
from repro.hwsim.faults import inject_stuck_output
from repro.hwsim.fused import FusedCircuit, FusedKernel, csd_terms, fuse


def _compiled(matrix, input_width=8, scheme="csd"):
    plan = plan_matrix(matrix, input_width=input_width, scheme=scheme)
    return build_circuit(plan)


def _matrix(rng, shape, sparsity, magnitude=127):
    matrix = rng.integers(-magnitude, magnitude + 1, size=shape)
    matrix[rng.random(shape) < sparsity] = 0
    return matrix


class TestCsdTerms:
    @pytest.mark.parametrize("value", [0, 1, -1, 7, -7, 93, -128, 255, 2**40 + 5])
    def test_terms_reconstruct_value(self, value):
        assert sum(sign << shift for shift, sign in csd_terms(value)) == value

    def test_terms_are_nonadjacent_signed_digits(self):
        for value in range(-300, 301):
            terms = csd_terms(value)
            shifts = [s for s, _ in terms]
            assert all(g in (-1, 1) for _, g in terms)
            assert all(b - a >= 2 for a, b in zip(shifts, shifts[1:]))


class TestScheduleRecovery:
    @pytest.mark.parametrize("scheme", ["csd", "pn"])
    def test_recovered_coefficients_are_the_matrix(self, scheme):
        rng = np.random.default_rng(3)
        matrix = _matrix(rng, (14, 11), 0.6)
        fast = FastCircuit.from_compiled(_compiled(matrix, scheme=scheme))
        fused = fuse(fast.kernel)
        assert fused.fingerprint == fast.kernel.fingerprint
        assert fused.rows == 14 and fused.cols == 11
        assert np.array_equal(
            np.asarray(fused.coefficients(), dtype=np.int64), matrix
        )

    def test_fuse_counts_the_pipeline_stage_once(self):
        rng = np.random.default_rng(4)
        fast = FastCircuit.from_compiled(_compiled(_matrix(rng, (6, 5), 0.5)))
        before = STAGES.snapshot()
        fast.fuse()
        assert STAGES.delta(before).get("fuse") == 1
        # Cached thereafter: repeated executions never re-fuse.
        vectors = rng.integers(-128, 128, size=(3, 6))
        fast.multiply_batch(vectors, engine="fused")
        fast.multiply_batch(vectors, engine="fused")
        assert STAGES.delta(before).get("fuse") == 1

    def test_fuse_refuses_fault_snapshots(self):
        rng = np.random.default_rng(5)
        circuit = _compiled(_matrix(rng, (6, 5), 0.5))
        inject_stuck_output(circuit.netlist, circuit.column_probes[0].src, 1)
        kernel = lower(circuit)
        assert kernel.has_faults
        with pytest.raises(ValueError, match="fault"):
            fuse(kernel)

    def test_attached_fused_kernel_must_match_fingerprint(self):
        rng = np.random.default_rng(6)
        fast_a = FastCircuit.from_compiled(_compiled(_matrix(rng, (6, 5), 0.5)))
        fast_b = FastCircuit.from_compiled(_compiled(_matrix(rng, (6, 5), 0.2)))
        with pytest.raises(ValueError, match="fingerprint"):
            FastCircuit(fast_a.kernel, fused=fuse(fast_b.kernel))


class TestFusedKernelValidation:
    def _fields(self, **overrides):
        fields = dict(
            fingerprint="f",
            rows=4,
            cols=3,
            input_width=8,
            result_width=16,
            term_out=np.array([0, 0, 2]),
            term_row=np.array([1, 3, 0]),
            term_shift=np.array([0, 2, 1]),
            term_sign=np.array([1, -1, 1]),
        )
        fields.update(overrides)
        return fields

    def test_accepts_well_formed_terms(self):
        FusedKernel(**self._fields())

    def test_rejects_unsorted_outputs(self):
        with pytest.raises(ValueError, match="sorted"):
            FusedKernel(**self._fields(term_out=np.array([2, 0, 1])))

    def test_rejects_out_of_range_rows_and_outputs(self):
        with pytest.raises(ValueError, match="row"):
            FusedKernel(**self._fields(term_row=np.array([1, 4, 0])))
        with pytest.raises(ValueError, match="out"):
            FusedKernel(**self._fields(term_out=np.array([0, 0, 3])))

    def test_rejects_bad_signs_and_shifts(self):
        with pytest.raises(ValueError, match="sign"):
            FusedKernel(**self._fields(term_sign=np.array([1, 2, 1])))
        with pytest.raises(ValueError, match="shift"):
            FusedKernel(**self._fields(term_shift=np.array([0, -1, 1])))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            FusedKernel(**self._fields(term_sign=np.array([1, -1])))


class TestCrossEngineEquivalence:
    """fused == bitplane == batched == scalar, across the design space."""

    @pytest.mark.parametrize("scheme", ["csd", "pn"])
    @pytest.mark.parametrize("sparsity", [0.3, 0.7, 0.95])
    @pytest.mark.parametrize("input_width", [4, 8])
    def test_property_sweep(self, scheme, sparsity, input_width):
        rng = np.random.default_rng(int(sparsity * 100) + input_width)
        matrix = _matrix(rng, (12, 10), sparsity, magnitude=100)
        fast = FastCircuit.from_compiled(
            _compiled(matrix, input_width=input_width, scheme=scheme)
        )
        lo, hi = signed_range(input_width)
        vectors = rng.integers(lo, hi + 1, size=(7, 12))
        # Signed edge values: the most negative/positive representable
        # inputs exercise the sign-extension path end to end.
        vectors[0, :] = lo
        vectors[1, :] = hi
        vectors[2, ::2] = lo
        vectors[2, 1::2] = hi
        golden = vectors @ matrix
        for engine in FastCircuit.ENGINES:
            assert np.array_equal(
                fast.multiply_batch(vectors, engine=engine), golden
            ), engine

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 130])
    def test_batch_sizes_span_word_boundaries(self, batch):
        rng = np.random.default_rng(batch)
        matrix = _matrix(rng, (16, 9), 0.5)
        fast = FastCircuit.from_compiled(_compiled(matrix))
        vectors = rng.integers(-128, 128, size=(batch, 16))
        golden = vectors @ matrix
        assert np.array_equal(
            fast.multiply_batch(vectors, engine="fused"), golden
        )
        assert np.array_equal(
            fast.multiply_batch(vectors, engine="bitplane"), golden
        )

    def test_wide_results_match_bitplane_exactly(self):
        """>62-bit accumulations: object dtype, exact Python integers."""
        rng = np.random.default_rng(11)
        matrix = rng.integers(-(2**20), 2**20, size=(40, 5))
        plan = plan_matrix(matrix, input_width=40, scheme="csd")
        assert plan.result_width > 62
        fast = FastCircuit.from_compiled(build_circuit(plan))
        vectors = rng.integers(-(2**39), 2**39, size=(4, 40))
        fused = fast.multiply_batch(vectors, engine="fused")
        gates = fast.multiply_batch(vectors, engine="bitplane")
        assert fused.dtype == object and gates.dtype == object
        assert np.array_equal(fused, gates)
        golden = [
            sum(int(vectors[b, r]) * int(matrix[r, j]) for r in range(40))
            for b in range(4)
            for j in range(5)
        ]
        assert [int(x) for x in fused.ravel()] == golden

    def test_empty_batch_and_empty_matrix_edges(self):
        rng = np.random.default_rng(12)
        matrix = _matrix(rng, (8, 6), 0.5)
        fast = FastCircuit.from_compiled(_compiled(matrix))
        empty = fast.multiply_batch(np.zeros((0, 8)), engine="fused")
        assert empty.shape == (0, 6) and empty.dtype == np.int64
        # An all-zero matrix fuses to zero terms and yields zero outputs.
        zeros = FastCircuit.from_compiled(_compiled(np.zeros((4, 3), dtype=int)))
        fused = fuse(zeros.kernel)
        assert fused.terms == 0
        out = zeros.multiply_batch(rng.integers(-5, 5, size=(3, 4)), engine="fused")
        assert np.array_equal(out, np.zeros((3, 3), dtype=np.int64))

    def test_standalone_fused_circuit_validates_inputs(self):
        rng = np.random.default_rng(13)
        matrix = _matrix(rng, (6, 4), 0.4)
        fast = FastCircuit.from_compiled(_compiled(matrix))
        circuit = FusedCircuit(fuse(fast.kernel))
        vector = rng.integers(-128, 128, size=6)
        assert np.array_equal(circuit.multiply(vector), vector @ matrix)
        with pytest.raises(ValueError, match="rows"):
            circuit.multiply_batch(np.zeros((2, 5)))
        with pytest.raises(ValueError, match="fit"):
            circuit.multiply_batch(np.full((1, 6), 999))


class TestFaultRefusal:
    def test_live_faults_make_the_fused_engine_refuse(self):
        rng = np.random.default_rng(14)
        matrix = _matrix(rng, (8, 6), 0.5)
        circuit = _compiled(matrix)
        fast = FastCircuit.from_compiled(circuit)
        vectors = rng.integers(-128, 128, size=(3, 8))
        assert not fast.has_faults
        injection = inject_stuck_output(
            circuit.netlist, circuit.column_probes[0].src, 1
        )
        assert fast.has_faults
        with pytest.raises(ValueError, match="fused"):
            fast.multiply_batch(vectors, engine="fused")
        injection.revert()
        # Reverting restores fused service, bit-exact as ever.
        assert not fast.has_faults
        assert np.array_equal(
            fast.multiply_batch(vectors, engine="fused"), vectors @ matrix
        )

    def test_engine_registries_include_fused(self):
        assert FastCircuit.ENGINES == ("scalar", "batched", "bitplane", "fused")
        assert ALL_ENGINES == ("object", "scalar", "batched", "bitplane", "fused")
        assert "fused" not in FastCircuit.FAULT_CAPABLE_ENGINES
