"""Fault-injection tests: the verification flow must catch broken hardware."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.components import DFF, InputStream, SerialAdder
from repro.hwsim.faults import (
    fault_campaign,
    inject_stuck_carry,
    inject_stuck_output,
)


def build(rng, rows=6, cols=4, input_width=5):
    matrix = rng.integers(-8, 8, size=(rows, cols))
    # Ensure a dense-enough circuit so faults land on real logic.
    matrix[matrix == 0] = 1
    return matrix, build_circuit(plan_matrix(matrix, input_width=input_width))


class TestStuckOutput:
    def test_fault_corrupts_results(self, rng):
        matrix, circuit = build(rng)
        vector = rng.integers(-16, 16, size=6)
        golden = circuit.multiply(vector)
        victim = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        injection = inject_stuck_output(circuit.netlist, victim, 1)
        corrupted = circuit.multiply(vector)
        injection.revert()
        assert not np.array_equal(corrupted, golden)

    def test_revert_restores_correctness(self, rng):
        matrix, circuit = build(rng)
        vector = rng.integers(-16, 16, size=6)
        golden = circuit.multiply(vector)
        victim = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        injection = inject_stuck_output(circuit.netlist, victim, 0)
        circuit.multiply(vector)
        injection.revert()
        assert np.array_equal(circuit.multiply(vector), golden)

    def test_invalid_value_rejected(self, rng):
        __, circuit = build(rng)
        victim = circuit.netlist.components[-1]
        with pytest.raises(ValueError):
            inject_stuck_output(circuit.netlist, victim, 2)


class TestStuckCarry:
    def test_stuck_carry_detected(self, rng):
        matrix, circuit = build(rng)
        vector = rng.integers(-16, 16, size=6)
        golden = circuit.multiply(vector)
        victim = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        injection = inject_stuck_carry(circuit.netlist, victim, 1)
        corrupted = circuit.multiply(vector)
        injection.revert()
        assert not np.array_equal(corrupted, golden)
        assert np.array_equal(circuit.multiply(vector), golden)

    def test_wrong_component_type_rejected(self, rng):
        __, circuit = build(rng)
        dff = next(
            (c for c in circuit.netlist.components if isinstance(c, DFF)), None
        )
        if dff is None:
            pytest.skip("no DFF in this netlist")
        with pytest.raises(TypeError):
            inject_stuck_carry(circuit.netlist, dff, 1)


class TestCampaign:
    def test_random_vectors_expose_most_faults(self, rng):
        """A handful of random vectors should detect nearly every stuck-at-1
        output on the datapath — the architecture has no dead logic."""
        matrix, circuit = build(rng, rows=5, cols=3, input_width=4)
        vectors = rng.integers(-8, 8, size=(4, 5))
        report = fault_campaign(circuit, vectors, max_faults=40, rng=rng)
        assert report["injected"] > 0
        assert report["coverage"] > 0.9

    def test_inputs_excluded_from_campaign(self, rng):
        matrix, circuit = build(rng, rows=3, cols=2, input_width=4)
        report = fault_campaign(circuit, rng.integers(-8, 8, size=(2, 3)))
        non_input = sum(
            1
            for c in circuit.netlist.components
            if not isinstance(c, InputStream)
            and type(c).__name__ != "ConstantZero"
        )
        assert report["injected"] == non_input


class TestServedCampaign:
    """fault_campaign routed through MatMulService: reliability sweeps on
    the same shard executor and telemetry as serving traffic."""

    def test_served_campaign_matches_direct_coverage(self, rng):
        from repro.serve import MatMulService

        matrix, circuit = build(rng, rows=5, cols=4, input_width=4)
        vectors = rng.integers(-8, 8, size=(4, 5))
        direct = fault_campaign(circuit, vectors)
        with MatMulService() as service:
            served = fault_campaign(circuit, vectors, service=service, shards=1)
        assert served["served"] is True
        assert served["shards"] == 1
        # A single-shard deployment is the same structure as the
        # monolith, so the campaign is candidate-for-candidate identical.
        assert served["injected"] == direct["injected"]
        assert served["detected"] == direct["detected"]
        assert served["coverage"] == direct["coverage"]

    def test_served_campaign_shares_shard_executor_and_telemetry(self, rng):
        from repro.serve import MatMulService

        matrix, circuit = build(rng, rows=5, cols=4, input_width=4)
        vectors = rng.integers(-8, 8, size=(3, 5))
        with MatMulService() as service:
            report = fault_campaign(circuit, vectors, service=service, shards=2)
        snapshot = report["telemetry"]
        assert report["coverage"] > 0.9
        # One golden evaluation plus one per injected fault, each a
        # sharded hardware batch recorded by the service.
        assert snapshot["batches"] == report["injected"] + 1
        assert snapshot["shards"]["shards"] == 2

    def test_served_campaign_retires_its_deployment(self, rng):
        """Repeated sweeps against one long-lived service must not
        accumulate executors; keep_deployment=True opts out."""
        from repro.serve import MatMulService

        matrix, circuit = build(rng, rows=4, cols=3, input_width=4)
        vectors = rng.integers(-8, 8, size=(2, 4))
        with MatMulService() as service:
            for _ in range(3):
                fault_campaign(
                    circuit, vectors, service=service, max_faults=5, rng=rng
                )
            assert service.deployments == {}
            report = fault_campaign(
                circuit,
                vectors,
                service=service,
                max_faults=5,
                rng=rng,
                keep_deployment=True,
            )
            assert report["deployment"] in service.deployments
            # undeploy is the explicit cleanup, idempotent.
            service.undeploy(report["deployment"])
            service.undeploy(report["deployment"])
            assert service.deployments == {}

    def test_served_campaign_leaves_no_faults_behind(self, rng):
        from repro.serve import MatMulService

        matrix, circuit = build(rng, rows=4, cols=3, input_width=4)
        vectors = rng.integers(-8, 8, size=(2, 4))
        with MatMulService() as service:
            report = fault_campaign(
                circuit, vectors, service=service, keep_deployment=True
            )
            handle = service.deployments[report["deployment"]]
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )

    def test_served_campaign_rejects_object_engine(self, rng):
        from repro.serve import MatMulService

        matrix, circuit = build(rng, rows=4, cols=3, input_width=4)
        with MatMulService() as service:
            with pytest.raises(ValueError, match="direct path"):
                fault_campaign(
                    circuit,
                    rng.integers(-8, 8, size=(2, 4)),
                    service=service,
                    engine="object",
                )

    def test_rejects_non_service(self, rng):
        matrix, circuit = build(rng, rows=4, cols=3, input_width=4)
        with pytest.raises(TypeError, match="MatMulService"):
            fault_campaign(
                circuit, rng.integers(-8, 8, size=(2, 4)), service=object()
            )
