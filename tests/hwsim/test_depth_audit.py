"""Pipeline-depth audits of built netlists.

The decode schedule relies on every column presenting result bit 0 at the
same cycle; these tests audit the builder's recorded depths directly
rather than only observing end-to-end results.
"""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.components import DFF, SerialAdder, SerialNegator, SerialSubtractor


def build(matrix, tree_style="compact", input_width=5):
    plan = plan_matrix(np.asarray(matrix), input_width=input_width, tree_style=tree_style)
    return plan, build_circuit(plan)


class TestDepthBookkeeping:
    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_every_component_has_depth(self, rng, tree_style):
        __, circuit = build(rng.integers(-8, 8, size=(9, 5)), tree_style)
        for component in circuit.netlist.components:
            assert circuit.netlist.depth_of(component) is not None

    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_adder_inputs_exist_upstream(self, rng, tree_style):
        """Every arithmetic component reads components at strictly smaller
        or equal recorded depth (no forward references)."""
        __, circuit = build(rng.integers(-8, 8, size=(8, 4)), tree_style)
        netlist = circuit.netlist
        for component in netlist.components:
            depth = netlist.depth_of(component)
            for attr in ("a", "b", "d", "src"):
                upstream = getattr(component, attr, None)
                if upstream is not None and netlist.depth_of(upstream) is not None:
                    assert netlist.depth_of(upstream) <= depth

    def test_final_stage_depth_uniform_padded(self, rng):
        plan, circuit = build(rng.integers(-8, 8, size=(16, 6)), "padded")
        final_depth = plan.full_depth + 2
        for probe in circuit.column_probes:
            src = probe.src
            if type(src).__name__ != "ConstantZero":
                assert circuit.netlist.depth_of(src) == final_depth

    def test_decode_delta_matches_plan(self, rng):
        for style in ("compact", "padded"):
            plan, circuit = build(rng.integers(-8, 8, size=(12, 3)), style)
            assert circuit.decode_delta == plan.decode_delta()


class TestPrimitiveBudget:
    def test_adder_count_is_exactly_ones_derived(self, rng):
        """Tree adders + chain adders + subtract-class primitives follow
        directly from the plan's tap structure: a closed-form audit."""
        matrix = rng.integers(-16, 16, size=(10, 7))
        plan, circuit = build(matrix)
        netlist = circuit.netlist
        counts = plan.bit_tap_counts()
        expected_tree_adders = int(np.sum(np.maximum(counts - 1, 0)))
        # Chain adders: per plane/column, live bit positions beyond the first.
        live = counts > 0
        expected_chain_adders = int(np.sum(np.maximum(live.sum(axis=1) - 1, 0)))
        arithmetic = (
            netlist.count(SerialAdder)
            + netlist.count(SerialSubtractor)
            + netlist.count(SerialNegator)
        )
        subtract_stage = netlist.count(SerialSubtractor) + netlist.count(SerialNegator)
        assert arithmetic - subtract_stage == expected_tree_adders + expected_chain_adders

    def test_dffs_bounded_for_compact(self, rng):
        """Compact alignment flops stay small relative to adders even at
        extreme sparsity (the whole point of the style)."""
        matrix = rng.integers(-128, 128, size=(64, 64))
        matrix[rng.random((64, 64)) < 0.97] = 0
        plan, circuit = build(matrix)
        dffs = circuit.netlist.count(DFF)
        adders = circuit.netlist.count(SerialAdder)
        assert dffs < 6 * max(adders, 1)
