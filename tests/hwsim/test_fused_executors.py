"""Cross-executor equivalence for the fused engine's three variants.

The fused engine now carries three executors — the dense fold, the
CSR-style segmented reduction, and the codegen'd specialized module —
plus a density-driven selector.  The load-bearing property is that all
three are *interchangeable*: bit-exact with each other, with the
bit-plane gate oracle, and with a golden integer matmul, across the
same design space the original cross-engine sweep covers (sparsity,
input width, recoding scheme, signed edges, word-boundary batches,
degenerate schedules).  The selector itself is pure policy on scalars,
tested directly; codegen is tested for determinism and for the loader's
refuse-on-mismatch contract.
"""

import numpy as np
import pytest

from repro.core.bits import signed_range
from repro.core.plan import plan_matrix
from repro.core.stages import STAGES
from repro.hwsim import codegen
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit, lower
from repro.hwsim.fused import (
    DENSITY_THRESHOLD,
    FusedCircuit,
    fuse,
    segment_prefixes,
    select_variant,
    term_density,
)

NARROW_VARIANTS = FusedCircuit.VARIANTS  # all three run on <=62-bit kernels


def _compiled(matrix, input_width=8, scheme="csd"):
    plan = plan_matrix(matrix, input_width=input_width, scheme=scheme)
    return build_circuit(plan)


def _matrix(rng, shape, sparsity, magnitude=100):
    matrix = rng.integers(-magnitude, magnitude + 1, size=shape)
    matrix[rng.random(shape) < sparsity] = 0
    return matrix


def _fused(matrix, input_width=8, scheme="csd"):
    return fuse(lower(_compiled(matrix, input_width=input_width, scheme=scheme)))


class TestCrossExecutorEquivalence:
    """dense == segmented == generated == bitplane == golden."""

    @pytest.mark.parametrize("scheme", ["csd", "pn"])
    @pytest.mark.parametrize("sparsity", [0.0, 0.5, 0.95])
    @pytest.mark.parametrize("input_width", [4, 8])
    def test_property_sweep(self, scheme, sparsity, input_width):
        rng = np.random.default_rng(int(sparsity * 100) + input_width)
        matrix = _matrix(rng, (12, 10), sparsity)
        fast = FastCircuit.from_compiled(
            _compiled(matrix, input_width=input_width, scheme=scheme)
        )
        fused = fast.fuse()
        lo, hi = signed_range(input_width)
        vectors = rng.integers(lo, hi + 1, size=(7, 12))
        # Signed edges: most negative/positive representable inputs.
        vectors[0, :] = lo
        vectors[1, :] = hi
        vectors[2, ::2] = lo
        vectors[2, 1::2] = hi
        golden = vectors @ matrix
        oracle = fast.multiply_batch(vectors, engine="bitplane")
        assert np.array_equal(oracle, golden)
        for variant in NARROW_VARIANTS:
            circuit = FusedCircuit(fused, variant=variant)
            assert circuit.variant == variant
            assert np.array_equal(
                circuit.multiply_batch(vectors), golden
            ), variant

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 130])
    def test_batch_sizes_span_word_boundaries(self, batch):
        rng = np.random.default_rng(batch)
        matrix = _matrix(rng, (16, 9), 0.5)
        fast = FastCircuit.from_compiled(_compiled(matrix))
        fused = fast.fuse()
        vectors = rng.integers(-128, 128, size=(batch, 16))
        golden = vectors @ matrix
        assert np.array_equal(
            fast.multiply_batch(vectors, engine="bitplane"), golden
        )
        for variant in NARROW_VARIANTS:
            assert np.array_equal(
                FusedCircuit(fused, variant=variant).multiply_batch(vectors),
                golden,
            ), variant

    def test_empty_batch_on_every_variant(self):
        rng = np.random.default_rng(7)
        fused = _fused(_matrix(rng, (8, 6), 0.5))
        for variant in NARROW_VARIANTS:
            out = FusedCircuit(fused, variant=variant).multiply_batch(
                np.zeros((0, 8))
            )
            assert out.shape == (0, 6) and out.dtype == np.int64, variant

    def test_zero_term_kernel_on_every_variant(self):
        """All-zero matrix → zero-term schedule → zero outputs, every tier."""
        rng = np.random.default_rng(8)
        fused = _fused(np.zeros((4, 3), dtype=int))
        assert fused.terms == 0
        vectors = rng.integers(-5, 5, size=(3, 4))
        for variant in NARROW_VARIANTS:
            out = FusedCircuit(fused, variant=variant).multiply_batch(vectors)
            assert np.array_equal(out, np.zeros((3, 3), dtype=np.int64)), variant

    def test_single_term_kernel_hits_the_gather_scale_specialization(self):
        """Power-of-two entries: one CSD term per populated output, which
        codegen collapses to a gather-scale with no reduceat at all."""
        matrix = np.zeros((5, 4), dtype=int)
        matrix[1, 0] = 4
        matrix[3, 2] = -8
        fused = _fused(matrix)
        starts, _ = segment_prefixes(fused.term_out)
        assert fused.terms == len(starts) == 2
        source = codegen.generate_source(fused)
        assert "reduceat" not in source
        rng = np.random.default_rng(9)
        vectors = rng.integers(-128, 128, size=(6, 5))
        golden = vectors @ matrix
        for variant in NARROW_VARIANTS:
            assert np.array_equal(
                FusedCircuit(fused, variant=variant).multiply_batch(vectors),
                golden,
            ), variant

    def test_wide_kernels_run_segmented_with_exact_integers(self):
        """>62-bit accumulations: segmented only, object dtype, exact."""
        rng = np.random.default_rng(11)
        matrix = rng.integers(-(2**20), 2**20, size=(40, 5))
        plan = plan_matrix(matrix, input_width=40, scheme="csd")
        assert plan.result_width > 62
        fused = fuse(lower(build_circuit(plan)))
        assert select_variant(
            fused.terms, fused.rows, fused.cols, fused.result_width
        ) == "segmented"
        circuit = FusedCircuit(fused)  # auto → segmented
        assert circuit.variant == "segmented"
        vectors = rng.integers(-(2**39), 2**39, size=(4, 40))
        out = circuit.multiply_batch(vectors)
        assert out.dtype == object
        golden = [
            sum(int(vectors[b, r]) * int(matrix[r, j]) for r in range(40))
            for b in range(4)
            for j in range(5)
        ]
        assert [int(x) for x in out.ravel()] == golden
        # The other tiers refuse rather than overflow silently.
        for variant in ("dense", "generated"):
            with pytest.raises(ValueError, match="segmented"):
                FusedCircuit(fused, variant=variant)
        with pytest.raises(ValueError, match="62"):
            codegen.generate_source(fused)


class TestSegmentPrefixes:
    def test_empty_schedule_yields_empty_boundaries(self):
        """The satellite regression: no terms → two empty int64 arrays,
        shared by the wide path and the sparse executor alike."""
        starts, segment_out = segment_prefixes(np.array([], dtype=np.int64))
        assert starts.shape == (0,) and starts.dtype == np.int64
        assert segment_out.shape == (0,) and segment_out.dtype == np.int64

    def test_boundaries_match_sorted_runs(self):
        starts, segment_out = segment_prefixes(np.array([0, 0, 2, 2, 2, 5]))
        assert starts.tolist() == [0, 2, 5]
        assert segment_out.tolist() == [0, 2, 5]

    def test_single_run(self):
        starts, segment_out = segment_prefixes(np.array([3, 3, 3]))
        assert starts.tolist() == [0] and segment_out.tolist() == [3]


class TestSelectorPolicy:
    def test_wide_kernels_always_segment(self):
        assert select_variant(0, 4, 4, 63) == "segmented"
        assert select_variant(10**6, 100, 100, 80) == "segmented"

    def test_sparse_schedules_take_the_generated_tier(self):
        # 10 terms over a 100-area matrix: density 0.1 < threshold.
        assert select_variant(10, 10, 10, 32) == "generated"
        assert select_variant(0, 10, 10, 32) == "generated"

    def test_dense_schedules_keep_the_blas_fold(self):
        assert select_variant(100, 10, 10, 32) == "dense"
        # Exactly at the threshold counts as dense (strict less-than).
        at = int(DENSITY_THRESHOLD * 100)
        assert select_variant(at, 10, 10, 32) == "dense"

    def test_density_of_an_empty_matrix_is_zero(self):
        assert term_density(0, 0, 5) == 0.0
        assert term_density(0, 5, 0) == 0.0

    def test_auto_variant_matches_the_selector(self):
        rng = np.random.default_rng(21)
        dense = _fused(_matrix(rng, (10, 8), 0.0))
        sparse = _fused(_matrix(rng, (16, 12), 0.95, magnitude=8))
        for fused in (dense, sparse):
            expected = select_variant(
                fused.terms, fused.rows, fused.cols, fused.result_width
            )
            assert FusedCircuit(fused).variant == expected

    def test_unknown_variant_is_rejected(self):
        fused = _fused(np.eye(3, dtype=int))
        with pytest.raises(ValueError, match="variant"):
            FusedCircuit(fused, variant="quantum")


class TestCodegen:
    def test_generation_is_deterministic(self):
        """Same kernel → byte-identical source, across fuse runs too."""
        rng = np.random.default_rng(31)
        matrix = _matrix(rng, (14, 11), 0.8)
        first = _fused(matrix)
        second = _fused(matrix)
        assert codegen.generate_source(first) == codegen.generate_source(second)

    def test_generation_counts_the_codegen_stage(self):
        fused = _fused(np.eye(4, dtype=int) * 3)
        before = STAGES.snapshot()
        source = codegen.generate_source(fused)
        assert STAGES.delta(before).get("codegen") == 1
        # Loading cached source is stage-free — that is the warm path.
        codegen.load_execute(source, fused.fingerprint)
        assert STAGES.delta(before).get("codegen") == 1

    def test_header_round_trips(self):
        fused = _fused(np.eye(4, dtype=int) * 5)
        header = codegen.source_header(codegen.generate_source(fused))
        assert header["kind"] == codegen.CODEGEN_KIND
        assert header["format_version"] == codegen.CODEGEN_FORMAT_VERSION
        assert header["fingerprint"] == fused.fingerprint
        assert header["rows"] == 4 and header["cols"] == 4
        assert header["terms"] == fused.terms

    def test_loader_refuses_wrong_kind_version_and_fingerprint(self):
        fused = _fused(np.eye(3, dtype=int) * 7)
        source = codegen.generate_source(fused)
        with pytest.raises(ValueError, match="kind"):
            codegen.load_execute("# not-codegen\n", fused.fingerprint)
        bumped = source.replace(
            "# format_version=1", "# format_version=999", 1
        )
        with pytest.raises(ValueError, match="version"):
            codegen.load_execute(bumped, fused.fingerprint)
        with pytest.raises(ValueError, match="fingerprint"):
            codegen.load_execute(source, "deadbeef")

    def test_loader_refuses_source_without_execute(self):
        fused = _fused(np.eye(3, dtype=int) * 7)
        source = codegen.generate_source(fused)
        header_only = "\n".join(
            line for line in source.splitlines() if line.startswith("#")
        ) + "\n"
        with pytest.raises(ValueError, match="execute"):
            codegen.load_execute(header_only, fused.fingerprint)

    def test_precompiled_source_skips_regeneration(self):
        """FusedCircuit(source=...) must not re-enter the codegen stage."""
        fused = _fused(np.eye(4, dtype=int) * 9)
        source = codegen.generate_source(fused)
        before = STAGES.snapshot()
        circuit = FusedCircuit(fused, variant="generated", source=source)
        assert STAGES.delta(before).get("codegen", 0) == 0
        assert circuit.source == source
        vectors = np.arange(8).reshape(2, 4)
        assert np.array_equal(circuit.multiply_batch(vectors), vectors @ (np.eye(4, dtype=int) * 9))


class TestFastCircuitVariantSurface:
    def test_fused_variant_forces_and_reports(self):
        rng = np.random.default_rng(41)
        fast = FastCircuit.from_compiled(_compiled(_matrix(rng, (12, 9), 0.4)))
        assert fast.resolved_fused_variant is None  # lazy until first use
        variant = fast.fused_variant
        assert variant in FusedCircuit.VARIANTS
        assert fast.resolved_fused_variant == variant

    def test_execution_resolves_the_variant(self):
        rng = np.random.default_rng(42)
        matrix = _matrix(rng, (12, 9), 0.4)
        fast = FastCircuit.from_compiled(_compiled(matrix))
        vectors = rng.integers(-128, 128, size=(3, 12))
        fast.multiply_batch(vectors, engine="fused")
        assert fast.resolved_fused_variant in FusedCircuit.VARIANTS
