"""Fused-schedule term counts cross-checked against the adder census.

Two independent paths describe the same hardware:

* the **census** (:func:`repro.core.stats.census_plan`) counts the
  primitives the builder *would* instantiate, combinatorially from the
  plan's P/N planes;
* the **fused schedule** (:func:`repro.hwsim.fused.fuse`) recovers each
  output's exact row coefficients *from the built kernel's topology*
  and re-encodes them in canonical NAF.

For the ``naf`` recoding scheme the two must agree exactly — NAF is
unique, so the plan's per-column plane popcount *is* the per-output
term count — and under the builder's culling rule the tree adder count
must be ``ones - live_roots`` per plane (a tree over ``k`` taps has
``k - 1`` adders).  For ``csd``/``pn`` the schedule is a strict lower
bound (NAF is minimal-weight).  Any drift between the builder, the
cost model, and the fused recovery breaks one of these identities —
this is the ROADMAP's "fused-schedule cost models" cross-check.
"""

import numpy as np
import pytest

from repro.core.bits import matrix_popcount
from repro.core.plan import plan_matrix
from repro.core.stats import census_plan
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit


def _workload(seed, shape=(14, 11), sparsity=0.5, low=-100, high=101):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(low, high, size=shape)
    matrix[rng.random(shape) < sparsity] = 0
    return matrix


def _fused(plan):
    return FastCircuit.from_compiled(build_circuit(plan)).fuse()


def _column_ones(plan):
    """Per-column combined P/N plane popcount (the census's unit)."""
    return np.array(
        [
            matrix_popcount(plan.split.positive[:, j : j + 1])
            + matrix_popcount(plan.split.negative[:, j : j + 1])
            for j in range(plan.cols)
        ]
    )


class TestNafSchemeExactAgreement:
    """NAF is unique: plan planes and fused schedule count the same terms."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("sparsity", [0.2, 0.6, 0.9])
    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_per_output_term_counts_match_plane_ones(
        self, seed, sparsity, tree_style
    ):
        matrix = _workload(seed, sparsity=sparsity)
        plan = plan_matrix(
            matrix, input_width=8, scheme="naf", tree_style=tree_style
        )
        fused = _fused(plan)
        census = census_plan(plan)
        per_output = np.bincount(fused.term_out, minlength=plan.cols)
        assert np.array_equal(per_output, _column_ones(plan))
        assert fused.terms == census.ones

    def test_wide_weights_still_agree(self):
        matrix = _workload(3, shape=(10, 6), low=-(2**14), high=2**14)
        plan = plan_matrix(matrix, input_width=12, scheme="naf")
        fused = _fused(plan)
        assert fused.terms == census_plan(plan).ones


class TestCullingRuleAdderCensus:
    """Tree adders are exactly ``ones - live_roots`` per plane: every
    column-bit tree over ``k`` taps is ``k - 1`` serial adders under the
    culling rule (two live children: adder; one: DFF; zero: absent),
    independent of recoding scheme or tree style."""

    @pytest.mark.parametrize("scheme", ["pn", "csd", "naf"])
    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_tree_adders_follow_term_counts(self, scheme, tree_style):
        matrix = _workload(4)
        plan = plan_matrix(
            matrix, input_width=8, scheme=scheme, tree_style=tree_style
        )
        census = census_plan(plan)
        for plane, arr in (
            (census.positive, plan.split.positive),
            (census.negative, plan.split.negative),
        ):
            assert plane.tree_adders == matrix_popcount(arr) - plane.live_roots

    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    def test_fused_is_the_naf_lower_bound(self, scheme):
        """Non-canonical recodings never beat the fused schedule's NAF."""
        for seed in range(4):
            matrix = _workload(seed)
            plan = plan_matrix(matrix, input_width=8, scheme=scheme)
            fused = _fused(plan)
            census = census_plan(plan)
            assert fused.terms <= census.ones
            # And both describe the same matrix exactly.
            assert np.array_equal(
                np.asarray(fused.coefficients(), dtype=np.int64), matrix
            )

    def test_naf_plan_matches_fused_coefficient_recovery(self):
        """End-to-end closure: plan -> netlist -> kernel -> fused recovers
        the exact matrix, and its NAF term census equals the plan's."""
        matrix = _workload(5, shape=(9, 9), sparsity=0.4)
        plan = plan_matrix(matrix, input_width=8, scheme="naf")
        fused = _fused(plan)
        assert np.array_equal(
            np.asarray(fused.coefficients(), dtype=np.int64), matrix
        )
        assert fused.terms == census_plan(plan).ones
