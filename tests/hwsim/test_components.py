"""Tests for the bit-serial primitives, including the paper's Table I."""

import pytest

from repro.core.bits import (
    from_twos_complement_bits,
    from_unsigned_bits,
    sign_extended_stream,
    to_unsigned_bits,
)
from repro.hwsim.components import (
    ConstantZero,
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)


class _Feeder:
    """Minimal component stub that replays a scripted bit stream."""

    def __init__(self, bits):
        self.bits = list(bits)
        self.out = 0
        self._next = 0

    def compute(self, cycle):
        self._next = self.bits[cycle] if cycle < len(self.bits) else self.bits[-1]

    def commit(self):
        self.out = self._next

    def reset(self):
        self.out = 0


def run_pair(component, a_bits, b_bits, cycles):
    """Drive two feeders through a two-input component; return its stream."""
    feeders = [f for f in (component.a if hasattr(component, "a") else None,) if False]
    out = []
    a = component.a if hasattr(component, "a") else None
    b = component.b
    for cycle in range(cycles):
        if a is not None:
            a.compute(cycle)
        b.compute(cycle)
        component.compute(cycle)
        if a is not None:
            a.commit()
        b.commit()
        component.commit()
        out.append(component.out)
    return out


class TestTable1:
    def test_bit_serial_addition_3_plus_7(self):
        """Table I: 3 + 7 = 10, bit by bit, LSb first."""
        a = _Feeder(to_unsigned_bits(3, 4))
        b = _Feeder(to_unsigned_bits(7, 4))
        adder = SerialAdder(a, b)
        stream = []
        expected_rows = [
            # (cin_before, s, cout_after)
            (0, 0, 1),
            (1, 1, 1),
            (1, 0, 1),
            (1, 1, 0),
        ]
        for cycle, (cin, s, cout) in enumerate(expected_rows):
            assert adder.carry == cin
            a.compute(cycle)
            b.compute(cycle)
            a.commit()
            b.commit()
            adder.compute(cycle + 1)
            adder.commit()
            assert adder.out == s
            assert adder.carry == cout
            stream.append(adder.out)
        assert from_unsigned_bits(stream) == 10


class TestSerialAdder:
    @pytest.mark.parametrize("x,y", [(0, 0), (1, 1), (5, 9), (15, 15), (-3, 7), (-8, -8)])
    def test_signed_addition(self, x, y):
        width = 5
        length = width + 2
        a = _Feeder(sign_extended_stream(x, width, length))
        b = _Feeder(sign_extended_stream(y, width, length))
        adder = SerialAdder(a, b)
        stream = run_pair(adder, None, None, length + 1)
        # Output is delayed one cycle (registered sum).
        assert from_twos_complement_bits(stream[1 : length + 1]) == x + y

    def test_reset_clears_carry(self):
        a = _Feeder([1, 1])
        b = _Feeder([1, 1])
        adder = SerialAdder(a, b)
        run_pair(adder, None, None, 2)
        assert adder.carry == 1
        adder.reset()
        assert adder.carry == 0
        assert adder.out == 0


class TestSerialSubtractor:
    @pytest.mark.parametrize("x,y", [(0, 0), (7, 3), (3, 7), (-5, -9), (10, -6), (-8, 7)])
    def test_signed_subtraction(self, x, y):
        width = 5
        length = width + 2
        a = _Feeder(sign_extended_stream(x, width, length))
        b = _Feeder(sign_extended_stream(y, width, length))
        sub = SerialSubtractor(a, b)
        stream = run_pair(sub, None, None, length + 1)
        assert from_twos_complement_bits(stream[1 : length + 1]) == x - y

    def test_carry_initialized_to_one(self):
        sub = SerialSubtractor(_Feeder([0]), _Feeder([0]))
        assert sub.carry == 1
        sub.reset()
        assert sub.carry == 1


class TestSerialNegator:
    @pytest.mark.parametrize("y", [0, 1, -1, 7, -8, 15, -16])
    def test_negation(self, y):
        width = 6
        length = width + 2
        b = _Feeder(sign_extended_stream(y, width, length))
        neg = SerialNegator(b)
        stream = []
        for cycle in range(length + 1):
            b.compute(cycle)
            neg.compute(cycle)
            b.commit()
            neg.commit()
            stream.append(neg.out)
        assert from_twos_complement_bits(stream[1 : length + 1]) == -y


class TestDFF:
    def test_one_cycle_delay(self):
        src = _Feeder([1, 0, 1, 1])
        dff = DFF(src)
        out = []
        for cycle in range(5):
            src.compute(cycle)
            dff.compute(cycle)
            src.commit()
            dff.commit()
            out.append(dff.out)
        assert out == [0, 1, 0, 1, 1]


class TestConstantZero:
    def test_always_zero(self):
        zero = ConstantZero()
        for cycle in range(4):
            zero.compute(cycle)
            zero.commit()
            assert zero.out == 0


class TestInputStream:
    def test_streams_lsb_first_with_sign_extension(self):
        stream = InputStream(4)
        stream.load([-3], 7)
        out = []
        for cycle in range(7):
            stream.compute(cycle)
            stream.commit()
            out.append(stream.out)
        assert out == [1, 0, 1, 1, 1, 1, 1]

    def test_rejects_short_interval(self):
        stream = InputStream(8)
        with pytest.raises(ValueError):
            stream.load([1], 4)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            InputStream(0)

    def test_holds_final_bit_after_stream_ends(self):
        stream = InputStream(2)
        stream.load([-1], 3)
        for cycle in range(6):
            stream.compute(cycle)
            stream.commit()
        assert stream.out == 1
