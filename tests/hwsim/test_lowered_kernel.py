"""The lowering boundary: ``lower(circuit) -> LoweredKernel`` and
kernel-only execution via ``FastCircuit(kernel)``.

The staged-pipeline contract: a kernel is pure data (picklable, no
component objects), lowering is a pure function of circuit structure
plus injected faults, and a bare kernel executes bit-exactly with the
netlist-bound engine it was lowered from.
"""

import pickle

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.stages import STAGES
from repro.hwsim.builder import build_circuit
from repro.hwsim.components import SerialAdder
from repro.hwsim.fast import FastCircuit, LoweredKernel, lower
from repro.hwsim.faults import inject_stuck_carry, inject_stuck_output


def _compiled(seed=0, rows=14, cols=10, scheme="csd", input_width=8, sparsity=0.6):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-80, 81, size=(rows, cols))
    matrix[rng.random((rows, cols)) < sparsity] = 0
    circuit = build_circuit(
        plan_matrix(matrix, input_width=input_width, scheme=scheme)
    )
    vectors = rng.integers(-128, 128, size=(6, rows))
    return matrix, circuit, vectors


class TestLowering:
    def test_lower_counts_one_stage(self):
        _, circuit, _ = _compiled()
        before = STAGES.snapshot()
        lower(circuit)
        assert STAGES.delta(before).get("lower") == 1

    def test_kernel_matches_circuit_metadata(self):
        _, circuit, _ = _compiled()
        kernel = lower(circuit)
        assert kernel.fingerprint == circuit.digest
        assert kernel.rows == circuit.plan.rows
        assert kernel.cols == circuit.plan.cols
        assert kernel.run_cycles == circuit.run_cycles
        assert kernel.decode_delta == circuit.decode_delta
        assert kernel.size == len(circuit.netlist)
        assert not kernel.has_faults

    def test_lowering_is_deterministic(self):
        _, circuit, _ = _compiled()
        assert lower(circuit).equivalent(lower(circuit))

    def test_kernel_arrays_are_plain_int64(self):
        _, circuit, _ = _compiled()
        kernel = lower(circuit)
        for name in LoweredKernel.ARRAY_FIELDS:
            arr = getattr(kernel, name)
            assert isinstance(arr, np.ndarray) and arr.dtype == np.int64, name

    def test_mismatched_field_lengths_rejected(self):
        _, circuit, _ = _compiled()
        kernel = lower(circuit)
        fields = {
            name: getattr(kernel, name)
            for name in (
                LoweredKernel.SCALAR_FIELDS + LoweredKernel.ARRAY_FIELDS
            )
        }
        fields["add_a"] = fields["add_a"][:-1]
        with pytest.raises(ValueError, match="add_idx/add_a"):
            LoweredKernel(**fields)


class TestKernelExecution:
    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    @pytest.mark.parametrize("engine", FastCircuit.ENGINES)
    def test_bare_kernel_matches_bound_engine(self, scheme, engine):
        matrix, circuit, vectors = _compiled(seed=3, scheme=scheme)
        bound = FastCircuit.from_compiled(circuit)
        bare = FastCircuit(lower(circuit))
        golden = vectors @ matrix
        assert np.array_equal(bound.multiply_batch(vectors, engine=engine), golden)
        assert np.array_equal(bare.multiply_batch(vectors, engine=engine), golden)

    def test_bare_kernel_has_no_netlist_or_plan(self):
        _, circuit, vectors = _compiled()
        bare = FastCircuit(lower(circuit))
        assert bare.netlist is None and bare.plan is None

    def test_pickle_round_trip_executes(self):
        matrix, circuit, vectors = _compiled(seed=4)
        kernel = pickle.loads(pickle.dumps(lower(circuit)))
        assert np.array_equal(
            FastCircuit(kernel).multiply_batch(vectors), vectors @ matrix
        )

    def test_rejects_non_circuit_source(self):
        with pytest.raises(TypeError, match="CompiledCircuit or LoweredKernel"):
            FastCircuit(np.zeros((2, 2)))

    def test_construction_from_kernel_does_not_relower(self):
        _, circuit, _ = _compiled()
        kernel = lower(circuit)
        before = STAGES.snapshot()
        FastCircuit(kernel)
        delta = STAGES.delta(before)
        assert delta.get("lower", 0) == 0 and delta.get("build", 0) == 0


class TestFaultSnapshotAndOverrides:
    def test_faults_present_at_lowering_are_snapshotted(self):
        matrix, circuit, vectors = _compiled(seed=5)
        bound = FastCircuit.from_compiled(circuit)
        golden = bound.multiply_batch(vectors)
        inject_stuck_output(circuit.netlist, circuit.column_probes[0].src, 1)
        adder = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        inject_stuck_carry(circuit.netlist, adder, 1)
        kernel = lower(circuit)
        assert kernel.has_faults
        faulty = bound.multiply_batch(vectors)
        assert not np.array_equal(faulty, golden)
        # The bare kernel replays the snapshot with no netlist anywhere.
        assert np.array_equal(FastCircuit(kernel).multiply_batch(vectors), faulty)

    def test_live_faults_beat_stale_snapshot_on_bound_engine(self):
        """A netlist-bound FastCircuit tracks the netlist's *current*
        faults; the kernel snapshot only matters for bare kernels."""
        matrix, circuit, vectors = _compiled(seed=6)
        bound = FastCircuit.from_compiled(circuit)
        golden = bound.multiply_batch(vectors)
        injection = inject_stuck_output(
            circuit.netlist, circuit.column_probes[0].src, 1
        )
        faulty = bound.multiply_batch(vectors)
        injection.revert()
        assert np.array_equal(bound.multiply_batch(vectors), golden)
        assert not np.array_equal(faulty, golden)

    def test_explicit_overrides_replay_on_bare_kernel(self):
        """The process-shard fault channel: overrides snapshotted from a
        live engine reproduce its behaviour on a fault-free kernel."""
        matrix, circuit, vectors = _compiled(seed=7)
        clean_kernel = lower(circuit)
        bound = FastCircuit.from_compiled(circuit)
        injection = inject_stuck_output(
            circuit.netlist, circuit.column_probes[1].src, 0
        )
        faulty = bound.multiply_batch(vectors)
        overrides = bound.fault_overrides()
        injection.revert()
        bare = FastCircuit(clean_kernel)
        for engine in FastCircuit.FAULT_CAPABLE_ENGINES:
            assert np.array_equal(
                bare.multiply_batch(vectors, engine=engine, overrides=overrides),
                faulty,
            )
        # The fused engine refuses non-empty overrides (linear-only)...
        with pytest.raises(ValueError, match="fused"):
            bare.multiply_batch(vectors, engine="fused", overrides=overrides)
        # ...but accepts an explicitly empty override set (the process
        # shard path always ships one).
        empty = ([], {"add": [], "sub": [], "neg": []})
        assert np.array_equal(
            bare.multiply_batch(vectors, engine="fused", overrides=empty),
            vectors @ matrix,
        )
        # Without overrides the clean kernel stays clean.
        assert np.array_equal(bare.multiply_batch(vectors), vectors @ matrix)
