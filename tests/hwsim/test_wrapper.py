"""Tests for the SRAM design wrapper."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.wrapper import SramWrapper


def make_wrapper(rng, rows=6, cols=4, input_width=5):
    matrix = rng.integers(-8, 8, size=(rows, cols))
    circuit = build_circuit(plan_matrix(matrix, input_width=input_width))
    return SramWrapper(circuit), matrix


class TestSramWrapper:
    def test_memory_to_memory_products(self, rng):
        wrapper, matrix = make_wrapper(rng)
        batch = rng.integers(-16, 16, size=(5, 6))
        wrapper.load(batch)
        results = wrapper.run()
        assert np.array_equal(results, batch @ matrix)
        assert np.array_equal(wrapper.output_memory, batch @ matrix)

    def test_run_accounting(self, rng):
        wrapper, __ = make_wrapper(rng)
        batch = rng.integers(-16, 16, size=(3, 6))
        wrapper.load(batch)
        wrapper.run()
        run = wrapper.last_run
        assert run.vectors == 3
        assert run.cycles_per_vector == wrapper.circuit.run_cycles
        assert run.total_cycles == 3 * wrapper.circuit.run_cycles

    def test_latency_conversion(self, rng):
        wrapper, __ = make_wrapper(rng)
        wrapper.load(rng.integers(-16, 16, size=(2, 6)))
        wrapper.run()
        latency = wrapper.last_run.latency_s(500e6)
        assert latency == pytest.approx(wrapper.last_run.total_cycles / 500e6)
        with pytest.raises(ValueError):
            wrapper.last_run.latency_s(0)

    def test_run_without_load_rejected(self, rng):
        wrapper, __ = make_wrapper(rng)
        with pytest.raises(RuntimeError):
            wrapper.run()

    def test_wrong_vector_width_rejected(self, rng):
        wrapper, __ = make_wrapper(rng)
        with pytest.raises(ValueError):
            wrapper.load(np.zeros((2, 9)))

    def test_single_vector(self, rng):
        wrapper, matrix = make_wrapper(rng)
        vector = rng.integers(-16, 16, size=6)
        wrapper.load(vector)
        results = wrapper.run()
        assert results.shape == (1, 4)
        assert np.array_equal(results[0], vector @ matrix)

    def test_reload_and_rerun(self, rng):
        wrapper, matrix = make_wrapper(rng)
        first = rng.integers(-16, 16, size=(2, 6))
        second = rng.integers(-16, 16, size=(4, 6))
        wrapper.load(first)
        wrapper.run()
        wrapper.load(second)
        results = wrapper.run()
        assert np.array_equal(results, second @ matrix)
        assert wrapper.last_run.vectors == 4
