"""Gate-level correctness of compiled circuits — the core guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit


def compile_and_check(matrix, vector, input_width, scheme="pn", tree_style="compact"):
    plan = plan_matrix(
        np.asarray(matrix),
        input_width=input_width,
        scheme=scheme,
        rng=np.random.default_rng(0),
        tree_style=tree_style,
    )
    circuit = build_circuit(plan)
    got = circuit.multiply(vector)
    want = np.asarray(vector, dtype=np.int64) @ np.asarray(matrix, dtype=np.int64)
    assert np.array_equal(got, want), f"{got} != {want}"
    return circuit


class TestHandPickedCases:
    def test_identity(self):
        compile_and_check(np.eye(4, dtype=np.int64), [1, -2, 3, -4], 4)

    def test_all_ones_column(self):
        compile_and_check([[1], [1], [1]], [5, -3, 2], 5)

    def test_negative_weights(self):
        compile_and_check([[-1, -2], [-3, -4]], [3, -1], 4)

    def test_zero_matrix(self):
        circuit = compile_and_check([[0, 0], [0, 0]], [7, -8], 4)
        assert circuit.decode_delta >= 2

    def test_powers_of_two(self):
        compile_and_check([[1, 2, 4, 8]], [-7], 4)

    def test_extreme_inputs(self):
        compile_and_check([[127, -128]], [-128], 8)

    def test_single_element(self):
        compile_and_check([[-128]], [-128], 8)

    def test_mixed_sparse(self):
        matrix = [[0, 5, 0], [-3, 0, 0], [0, 0, 7], [1, -1, 0]]
        compile_and_check(matrix, [2, -2, 3, -3], 4)

    def test_non_power_of_two_rows(self):
        compile_and_check([[1], [2], [3]], [1, 1, 1], 3)

    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_both_styles_same_answer(self, rng, tree_style):
        matrix = rng.integers(-16, 16, size=(7, 5))
        vector = rng.integers(-8, 8, size=7)
        compile_and_check(matrix, vector, 5, tree_style=tree_style)


class TestDecodeTiming:
    def test_compact_no_deeper_than_padded(self, rng):
        matrix = rng.integers(-8, 8, size=(16, 4))
        matrix[rng.random((16, 4)) < 0.8] = 0
        compact = build_circuit(plan_matrix(matrix, tree_style="compact"))
        padded = build_circuit(plan_matrix(matrix, tree_style="padded"))
        assert compact.decode_delta <= padded.decode_delta

    def test_run_cycles_covers_input(self):
        plan = plan_matrix(np.array([[0]]), input_width=8)
        circuit = build_circuit(plan)
        assert circuit.run_cycles >= 8

    def test_all_columns_share_schedule(self, rng):
        """Columns with different tree depths still decode on one schedule."""
        matrix = np.zeros((16, 2), dtype=np.int64)
        matrix[:, 0] = rng.integers(1, 8, size=16)  # deep column
        matrix[0, 1] = 1  # single-tap column
        vector = rng.integers(-8, 8, size=16)
        compile_and_check(matrix, vector, 4)


class TestInputValidation:
    def test_wrong_vector_length(self, rng):
        circuit = build_circuit(plan_matrix(rng.integers(-4, 4, size=(4, 4))))
        with pytest.raises(ValueError):
            circuit.multiply([1, 2, 3])

    def test_out_of_range_input(self):
        circuit = build_circuit(plan_matrix(np.array([[1]]), input_width=4))
        with pytest.raises(ValueError):
            circuit.multiply([8])


class TestBatch:
    def test_multiply_batch_sequential(self, rng):
        matrix = rng.integers(-8, 8, size=(5, 4))
        circuit = build_circuit(plan_matrix(matrix, input_width=5))
        batch = rng.integers(-16, 16, size=(3, 5))
        got = circuit.multiply_batch(batch)
        assert np.array_equal(got, batch @ matrix)

    def test_repeated_multiplies_are_independent(self, rng):
        """State fully resets between vectors (no carry leakage)."""
        matrix = rng.integers(-8, 8, size=(4, 4))
        circuit = build_circuit(plan_matrix(matrix, input_width=6))
        a = rng.integers(-32, 32, size=4)
        first = circuit.multiply(a)
        rng.integers(-32, 32, size=4)  # churn the rng
        second = circuit.multiply(a)
        assert np.array_equal(first, second)


@given(
    seed=st.integers(0, 2**20),
    rows=st.integers(1, 12),
    cols=st.integers(1, 12),
    width=st.integers(1, 8),
    input_width=st.integers(1, 8),
    scheme=st.sampled_from(["pn", "csd"]),
    tree_style=st.sampled_from(["compact", "padded"]),
)
@settings(max_examples=50, deadline=None)
def test_simulation_matches_exact_math_property(
    seed, rows, cols, width, input_width, scheme, tree_style
):
    """The headline property: the gate-level circuit computes a^T V exactly
    for any matrix, any widths, any recoding, any tree style."""
    rng = np.random.default_rng(seed)
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    matrix = rng.integers(lo, hi + 1, size=(rows, cols))
    matrix[rng.random((rows, cols)) < 0.4] = 0
    ilo = -(1 << (input_width - 1))
    ihi = (1 << (input_width - 1)) - 1
    vector = rng.integers(ilo, ihi + 1, size=rows)
    compile_and_check(matrix, vector, input_width, scheme, tree_style)
