"""Equivalence and edge-case tests for the batched / bit-plane engines.

The contract every test here enforces: the dense-batched and bit-plane
paths of :class:`FastCircuit` are bit-exact with the object-graph
``Netlist`` simulator (and with the functional integer path of
:class:`FixedMatrixMultiplier`) on arbitrary matrices, vectors, widths
and recoding schemes — including at the signed-range edges, under
injected faults, and through every consumer (wrapper, fault campaigns,
hardware ESN rollouts).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bits import signed_range
from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.components import SerialAdder, SerialNegator, SerialSubtractor
from repro.hwsim.fast import FastCircuit, pack_lanes, unpack_lanes
from repro.hwsim.faults import fault_campaign, inject_stuck_carry, inject_stuck_output
from repro.hwsim.wrapper import SramWrapper
from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.quantize import quantize_esn
from repro.reservoir.weights import random_input_weights, random_reservoir

ENGINES = ("scalar", "batched", "bitplane")


def compile_both(matrix, input_width=6, scheme="pn", tree_style="compact", seed=0):
    plan = plan_matrix(
        np.asarray(matrix),
        input_width=input_width,
        scheme=scheme,
        rng=np.random.default_rng(seed),
        tree_style=tree_style,
    )
    circuit = build_circuit(plan)
    return circuit, FastCircuit.from_compiled(circuit)


def edge_biased_batch(rng, batch, rows, input_width):
    """Random vectors with some entries forced to the signed-range edges."""
    lo, hi = signed_range(input_width)
    vectors = rng.integers(lo, hi + 1, size=(batch, rows))
    mask = rng.random((batch, rows))
    vectors[mask < 0.15] = lo
    vectors[mask > 0.85] = hi
    return vectors


class TestEngineEquivalence:
    """Scalar, batched, bit-plane, object and functional paths all agree."""

    @given(
        seed=st.integers(0, 2**16),
        rows=st.integers(1, 8),
        cols=st.integers(1, 6),
        input_width=st.integers(2, 9),
        scheme=st.sampled_from(["pn", "csd", "naf"]),
        batch=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, seed, rows, cols, input_width, scheme, batch):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-32, 32, size=(rows, cols))
        matrix[rng.random((rows, cols)) < 0.4] = 0
        circuit, fast = compile_both(matrix, input_width=input_width, scheme=scheme)
        vectors = edge_biased_batch(rng, batch, rows, input_width)
        golden = np.stack([circuit.multiply(v) for v in vectors])
        functional = FixedMatrixMultiplier(
            matrix, input_width=input_width, scheme=scheme,
            rng=np.random.default_rng(seed),
        ).multiply_batch(vectors)
        assert np.array_equal(functional, golden)
        for engine in ENGINES:
            assert np.array_equal(
                fast.multiply_batch(vectors, engine=engine), golden
            ), engine

    @pytest.mark.parametrize("tree_style", ["compact", "padded"])
    def test_tree_styles(self, rng, tree_style):
        matrix = rng.integers(-8, 8, size=(7, 5))
        circuit, fast = compile_both(matrix, tree_style=tree_style)
        vectors = rng.integers(-32, 32, size=(6, 7))
        golden = np.stack([circuit.multiply(v) for v in vectors])
        for engine in ENGINES:
            assert np.array_equal(
                fast.multiply_batch(vectors, engine=engine), golden
            )

    def test_signed_range_edges_exact(self, rng):
        """Every entry at lo or hi of the input range, where sign
        extension and carry chains are most stressed."""
        matrix = rng.integers(-16, 16, size=(5, 4))
        circuit, fast = compile_both(matrix, input_width=5)
        lo, hi = signed_range(5)
        vectors = np.array(
            [[lo] * 5, [hi] * 5, [lo, hi, lo, hi, lo], [hi, lo, hi, lo, hi]]
        )
        golden = vectors @ matrix
        assert np.array_equal(
            np.stack([circuit.multiply(v) for v in vectors]), golden
        )
        for engine in ENGINES:
            assert np.array_equal(
                fast.multiply_batch(vectors, engine=engine), golden
            )

    def test_wide_results_decode_as_python_ints(self):
        """result_width > 62 switches decode to exact object dtype."""
        matrix = np.array([[2**40, -(2**39)], [-(2**40), 3]], dtype=np.int64)
        circuit, fast = compile_both(matrix, input_width=24)
        assert circuit.plan.result_width > 62
        vectors = np.array([[2**23 - 1, -(2**23)], [-1, 1], [12345, -54321]])
        golden = vectors.astype(object) @ matrix.astype(object)
        assert np.array_equal(
            np.stack([circuit.multiply(v) for v in vectors]), golden
        )
        for engine in ENGINES:
            got = fast.multiply_batch(vectors, engine=engine)
            assert got.dtype == object
            assert np.array_equal(got, golden)

    def test_scalar_multiply_matches_batch_lane(self, rng):
        matrix = rng.integers(-16, 16, size=(6, 3))
        __, fast = compile_both(matrix)
        vectors = rng.integers(-32, 32, size=(3, 6))
        batched = fast.multiply_batch(vectors)
        for k, v in enumerate(vectors):
            assert np.array_equal(fast.multiply(v), batched[k])


class TestBatchShapesAndValidation:
    """Edge cases behave or raise identically to the scalar path."""

    @pytest.fixture
    def fast(self, rng):
        matrix = rng.integers(-8, 8, size=(4, 3))
        return compile_both(matrix, input_width=4)[1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_wrong_vector_length_rejected(self, fast, engine):
        with pytest.raises(ValueError, match="vector length 3 != matrix rows 4"):
            fast.multiply_batch(np.zeros((2, 3)), engine=engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_out_of_range_rejected(self, fast, engine):
        bad = np.zeros((2, 4), dtype=np.int64)
        bad[1, 2] = 99
        with pytest.raises(ValueError, match="input 99 does not fit in s4"):
            fast.multiply_batch(bad, engine=engine)

    def test_scalar_path_raises_same_messages(self, fast):
        with pytest.raises(ValueError, match="vector length 3 != matrix rows 4"):
            fast.multiply([1, 2, 3])
        with pytest.raises(ValueError, match="input 99 does not fit in s4"):
            fast.multiply([99, 0, 0, 0])

    def test_unknown_engine_rejected(self, fast):
        with pytest.raises(ValueError, match="engine must be one of"):
            fast.multiply_batch(np.zeros((1, 4)), engine="quantum")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_batch_of_one_keeps_batch_axis(self, fast, engine, rng):
        vectors = rng.integers(-8, 8, size=(1, 4))
        out = fast.multiply_batch(vectors, engine=engine)
        assert out.shape == (1, 3)
        assert np.array_equal(out[0], fast.multiply(vectors[0]))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_one_dim_input_promoted_to_batch(self, fast, engine, rng):
        vector = rng.integers(-8, 8, size=4)
        out = fast.multiply_batch(vector, engine=engine)
        assert out.shape == (1, 3)
        assert np.array_equal(out[0], fast.multiply(vector))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_batch(self, fast, engine):
        out = fast.multiply_batch(np.zeros((0, 4)), engine=engine)
        assert out.shape == (0, 3)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_three_dim_input_rejected(self, fast, engine):
        with pytest.raises(ValueError):
            fast.multiply_batch(np.zeros((2, 2, 4)), engine=engine)

    def test_batch_beyond_64_lanes_multi_word(self, rng):
        """70 lanes spill into a second uint64 bit-plane word."""
        matrix = rng.integers(-8, 8, size=(5, 4))
        circuit, fast = compile_both(matrix, input_width=6)
        vectors = edge_biased_batch(rng, 70, 5, 6)
        golden = vectors @ matrix
        assert np.array_equal(fast.multiply_batch(vectors, engine="bitplane"), golden)
        assert np.array_equal(fast.multiply_batch(vectors, engine="batched"), golden)

    def test_exactly_64_and_65_lanes(self, rng):
        matrix = rng.integers(-8, 8, size=(3, 3))
        __, fast = compile_both(matrix)
        for batch in (63, 64, 65, 128, 129):
            vectors = rng.integers(-32, 32, size=(batch, 3))
            assert np.array_equal(
                fast.multiply_batch(vectors, engine="bitplane"), vectors @ matrix
            ), batch


class TestDegenerateCircuits:
    """Circuits with whole component classes empty still batch correctly."""

    @pytest.mark.parametrize(
        "matrix",
        [
            np.zeros((3, 3), dtype=np.int64),  # ConstantZero outputs only
            np.eye(4, dtype=np.int64),  # no adders needed per column
            -np.eye(4, dtype=np.int64),  # negators, no subtractors
            np.ones((2, 2), dtype=np.int64),  # no negative plane at all
            -np.ones((2, 2), dtype=np.int64),  # no positive plane at all
            np.array([[5]], dtype=np.int64),  # 1x1
        ],
    )
    def test_degenerate_matrices(self, matrix, rng):
        circuit, fast = compile_both(matrix, input_width=5)
        vectors = rng.integers(-16, 16, size=(67, matrix.shape[0]))
        golden = vectors @ matrix
        assert np.array_equal(
            np.stack([circuit.multiply(v) for v in vectors[:3]]), golden[:3]
        )
        for engine in ENGINES:
            assert np.array_equal(
                fast.multiply_batch(vectors, engine=engine), golden
            ), engine


class TestFaultEquivalence:
    """Injected faults behave identically on all four engines."""

    def build_faulty(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 4))
        matrix[matrix == 0] = 1
        return compile_both(matrix, input_width=5)

    @pytest.mark.parametrize("value", [0, 1])
    def test_stuck_output_matches_object_engine(self, rng, value):
        circuit, fast = self.build_faulty(rng)
        victim = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        vectors = rng.integers(-16, 16, size=(5, 6))
        injection = inject_stuck_output(circuit.netlist, victim, value)
        try:
            golden = np.stack([circuit.multiply(v) for v in vectors])
            for engine in ENGINES:
                assert np.array_equal(
                    fast.multiply_batch(vectors, engine=engine), golden
                ), engine
        finally:
            injection.revert()

    @pytest.mark.parametrize("value", [0, 1])
    def test_stuck_carry_matches_object_engine(self, rng, value):
        circuit, fast = self.build_faulty(rng)
        victims = [
            c
            for c in circuit.netlist.components
            if isinstance(c, (SerialAdder, SerialSubtractor, SerialNegator))
        ]
        vectors = rng.integers(-16, 16, size=(4, 6))
        for victim in victims[:3] + victims[-1:]:
            injection = inject_stuck_carry(circuit.netlist, victim, value)
            try:
                golden = np.stack([circuit.multiply(v) for v in vectors])
                for engine in ENGINES:
                    assert np.array_equal(
                        fast.multiply_batch(vectors, engine=engine), golden
                    ), engine
            finally:
                injection.revert()

    def test_revert_restores_all_engines(self, rng):
        circuit, fast = self.build_faulty(rng)
        victim = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        vectors = rng.integers(-16, 16, size=(3, 6))
        clean = fast.multiply_batch(vectors)
        injection = inject_stuck_output(circuit.netlist, victim, 1)
        corrupted = fast.multiply_batch(vectors)
        injection.revert()
        assert not np.array_equal(corrupted, clean)
        for engine in ENGINES:
            assert np.array_equal(fast.multiply_batch(vectors, engine=engine), clean)

    def test_carry_fault_on_carryless_component_rejected(self, rng):
        """The object engine crashes on a DFF carry fault; the fast
        engines must refuse loudly too, never silently simulate
        fault-free."""
        circuit, fast = self.build_faulty(rng)
        dff = next(
            c for c in circuit.netlist.components if type(c).__name__ == "DFF"
        )
        circuit.netlist.add_fault(dff, "stuck_carry", 1)
        try:
            with pytest.raises(ValueError, match="no carry register"):
                fast.multiply_batch(rng.integers(-16, 16, size=(2, 6)))
        finally:
            circuit.netlist.remove_fault(dff)

    def test_campaign_unknown_engine_rejected_up_front(self, rng):
        circuit, __ = self.build_faulty(rng)
        with pytest.raises(ValueError, match=r"'object', 'scalar'"):
            fault_campaign(circuit, np.zeros((1, 6)), engine="objcet")

    def test_campaign_engines_agree(self, rng):
        circuit, __ = self.build_faulty(rng)
        vectors = rng.integers(-16, 16, size=(4, 6))
        reports = {
            engine: fault_campaign(
                circuit,
                vectors,
                max_faults=25,
                rng=np.random.default_rng(3),
                engine=engine,
            )
            for engine in ("object", "scalar", "batched", "bitplane")
        }
        baseline = reports["object"]
        assert baseline["injected"] == 25
        for engine, report in reports.items():
            assert report == baseline, engine


class TestSramWrapperEngines:
    def make(self, rng, engine):
        matrix = rng.integers(-8, 8, size=(6, 4))
        circuit = build_circuit(plan_matrix(matrix, input_width=5))
        return SramWrapper(circuit, engine=engine), matrix

    @pytest.mark.parametrize("engine", ["object", "scalar", "batched", "bitplane"])
    def test_products_and_accounting_identical(self, rng, engine):
        wrapper, matrix = self.make(rng, engine)
        vectors = rng.integers(-16, 16, size=(7, 6))
        wrapper.load(vectors)
        results = wrapper.run()
        assert np.array_equal(results, vectors @ matrix)
        run = wrapper.last_run
        assert run.vectors == 7
        assert run.cycles_per_vector == wrapper.circuit.run_cycles
        assert run.total_cycles == 7 * wrapper.circuit.run_cycles

    def test_default_engine_is_bitplane(self, rng):
        wrapper, __ = self.make(rng, "bitplane")
        assert SramWrapper(wrapper.circuit).engine == "bitplane"

    def test_unknown_engine_rejected(self, rng):
        matrix = rng.integers(-8, 8, size=(3, 2))
        circuit = build_circuit(plan_matrix(matrix, input_width=4))
        with pytest.raises(ValueError, match="engine must be one of"):
            SramWrapper(circuit, engine="turbo")

    def test_engine_reassignment_validated_at_run(self, rng):
        wrapper, __ = self.make(rng, "bitplane")
        wrapper.load(rng.integers(-16, 16, size=(2, 6)))
        wrapper.engine = "objject"
        with pytest.raises(ValueError, match=r"'object', 'scalar'"):
            wrapper.run()

    @pytest.mark.parametrize("engine", ["object", "scalar", "batched", "bitplane"])
    def test_empty_sram_identical_across_engines(self, rng, engine):
        wrapper, __ = self.make(rng, engine)
        wrapper.load(np.zeros((0, 6), dtype=np.int64))
        results = wrapper.run()
        assert results.shape == (0, 4)
        assert wrapper.last_run.vectors == 0
        assert wrapper.last_run.total_cycles == 0

    def test_circuit_reassignment_invalidates_fast_cache(self, rng):
        wrapper, __ = self.make(rng, "bitplane")
        vectors = rng.integers(-16, 16, size=(3, 6))
        wrapper.load(vectors)
        wrapper.run()
        other = rng.integers(-8, 8, size=(6, 4))
        wrapper.circuit = build_circuit(plan_matrix(other, input_width=5))
        wrapper.load(vectors)
        assert np.array_equal(wrapper.run(), vectors @ other)

    def test_wrapper_streams_large_batch_one_call(self, rng):
        wrapper, matrix = self.make(rng, "bitplane")
        vectors = rng.integers(-16, 16, size=(100, 6))
        wrapper.load(vectors)
        assert np.array_equal(wrapper.run(), vectors @ matrix)
        assert wrapper.last_run.total_cycles == 100 * wrapper.circuit.run_cycles


class TestHardwareEsnBatched:
    def make_esn(self, dim=6, seed=3):
        rng = np.random.default_rng(seed)
        w = random_reservoir(dim, rng=rng)
        w_in = random_input_weights(dim, 1, rng=rng)
        return quantize_esn(w, w_in, weight_width=5, state_width=5)

    @pytest.mark.parametrize("backend", ["functional", "gates"])
    def test_step_batch_matches_scalar_steps(self, rng, backend):
        esn = self.make_esn()
        hw = HardwareESN(esn, backend=backend, rng=np.random.default_rng(0))
        states = rng.integers(-15, 16, size=(5, esn.dim))
        u = rng.integers(-15, 16, size=(5, 1))
        batched = hw.step_batch(states, u)
        for k in range(5):
            assert np.array_equal(batched[k], hw.step(states[k], u[k]))

    @pytest.mark.parametrize("backend", ["functional", "gates"])
    def test_run_batch_matches_per_sequence_run(self, rng, backend):
        esn = self.make_esn()
        hw = HardwareESN(esn, backend=backend, rng=np.random.default_rng(0))
        inputs = rng.integers(-15, 16, size=(4, 6, 1))
        batched = hw.run_batch(inputs, washout=2)
        assert batched.shape == (4, 4, esn.dim)
        for k in range(4):
            assert np.array_equal(batched[k], hw.run(inputs[k], washout=2))

    def test_include_input_batched(self, rng):
        esn = self.make_esn()
        hw = HardwareESN(
            esn,
            backend="gates",
            include_input=True,
            input_quant_width=5,
            rng=np.random.default_rng(0),
        )
        states = rng.integers(-15, 16, size=(3, esn.dim))
        u = rng.integers(-15, 16, size=(3, 1))
        batched = hw.step_batch(states, u)
        for k in range(3):
            assert np.array_equal(batched[k], hw.step(states[k], u[k]))

    def test_bad_batch_shapes_rejected(self, rng):
        esn = self.make_esn()
        hw = HardwareESN(esn, backend="functional", rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            hw.step_batch(np.zeros((2, esn.dim)), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            hw.run_batch(np.zeros((2, 3, 2)))
        # A run()-style (steps, 1) array is ambiguous with (batch, steps):
        # run_batch must reject 2-D input rather than silently guess.
        with pytest.raises(ValueError):
            hw.run_batch(np.zeros((100, 1)))
        with pytest.raises(ValueError):
            hw.run_batch(np.zeros((2, 3, 1)), washout=3)
        with pytest.raises(ValueError):
            hw.run_batch(np.zeros((2, 3, 1)), initial_states=np.zeros((1, esn.dim)))


class TestBitPlanePacking:
    @given(
        lanes=st.integers(1, 140),
        inner=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip(self, lanes, inner, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(lanes, inner)).astype(np.int8)
        words = pack_lanes(bits)
        assert words.shape == ((lanes + 63) // 64, inner)
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_lanes(words, lanes), bits)

    def test_padding_lanes_are_zero(self):
        bits = np.ones((3, 2), dtype=np.int8)
        words = pack_lanes(bits)
        assert np.array_equal(words, np.full((1, 2), 0b111, dtype=np.uint64))
