"""Tests for the netlist container and simulation engine."""

import pytest

from repro.hwsim.components import DFF, InputStream, SerialAdder
from repro.hwsim.netlist import Netlist


class TestConstruction:
    def test_add_tracks_inputs(self):
        netlist = Netlist()
        stream = netlist.add(InputStream(4, "in0"), depth=0)
        assert netlist.inputs == [stream]
        assert len(netlist) == 1

    def test_depth_registry(self):
        netlist = Netlist()
        stream = netlist.add(InputStream(4), depth=0)
        dff = netlist.add(DFF(stream), depth=1)
        assert netlist.depth_of(stream) == 0
        assert netlist.depth_of(dff) == 1
        untracked = DFF(stream)
        assert netlist.depth_of(untracked) is None

    def test_primitive_counts(self):
        netlist = Netlist()
        a = netlist.add(InputStream(4))
        b = netlist.add(InputStream(4))
        netlist.add(SerialAdder(a, b))
        netlist.add(DFF(a))
        counts = netlist.primitive_counts()
        assert counts["InputStream"] == 2
        assert counts["SerialAdder"] == 1
        assert counts["DFF"] == 1
        assert netlist.count(SerialAdder) == 1


class TestSimulation:
    def test_probe_samples_post_commit(self):
        netlist = Netlist()
        stream = netlist.add(InputStream(3))
        probe = netlist.probe(stream, "p")
        netlist.load_vector([-3], 4)
        netlist.run(4)
        # -3 in 3 bits LSb first is [1, 0, 1], then sign extension.
        assert probe.stream == [1, 0, 1, 1]

    def test_reset_restores_everything(self):
        netlist = Netlist()
        stream = netlist.add(InputStream(3))
        dff = netlist.add(DFF(stream))
        probe = netlist.probe(dff)
        netlist.load_vector([-1], 4)
        netlist.run(4)
        netlist.reset()
        assert probe.stream == []
        assert dff.out == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Netlist().run(-1)

    def test_load_vector_length_checked(self):
        netlist = Netlist()
        netlist.add(InputStream(4))
        with pytest.raises(ValueError):
            netlist.load_vector([1, 2], 8)

    def test_dff_chain_delays_by_length(self):
        netlist = Netlist()
        stream = netlist.add(InputStream(2))
        node = stream
        for _ in range(3):
            node = netlist.add(DFF(node))
        probe = netlist.probe(node)
        netlist.load_vector([1], 8)
        netlist.run(8)
        # Bit 0 of the value (1) appears after 3 cycles of DFF delay.
        assert probe.stream[3] == 1
        assert probe.stream[:3] == [0, 0, 0]
