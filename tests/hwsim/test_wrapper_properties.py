"""Property tests tying the wrapper's accounting to the latency model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.wrapper import SramWrapper


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    batch=st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_wrapper_products_and_accounting(seed, rows, cols, batch):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-8, 8, size=(rows, cols))
    circuit = build_circuit(plan_matrix(matrix, input_width=5))
    wrapper = SramWrapper(circuit)
    vectors = rng.integers(-16, 16, size=(batch, rows))
    wrapper.load(vectors)
    results = wrapper.run()
    # Functional: exact products.
    assert np.array_equal(results, vectors @ matrix)
    # Accounting: sequential products, batch x per-vector cycles.
    assert wrapper.last_run.total_cycles == batch * circuit.run_cycles
