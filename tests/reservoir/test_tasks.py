"""Tests for the benchmark task generators."""

import numpy as np
import pytest

from repro.reservoir.tasks import (
    channel_equalization,
    mackey_glass,
    memory_capacity_dataset,
    multivariate_classification,
    narma10,
)


class TestNarma10:
    def test_shapes(self, rng):
        data = narma10(500, rng)
        assert data.inputs.shape == (500,)
        assert data.targets.shape == (500,)

    def test_inputs_in_range(self, rng):
        data = narma10(300, rng)
        assert data.inputs.min() >= 0.0
        assert data.inputs.max() <= 0.5

    def test_targets_bounded(self, rng):
        data = narma10(1000, rng)
        assert np.isfinite(data.targets).all()
        assert np.abs(data.targets).max() < 10.0

    def test_recurrence_checked_by_hand(self, rng):
        data = narma10(50, rng)
        u, y = data.inputs, data.targets
        t = 20
        expected = (
            0.3 * y[t]
            + 0.05 * y[t] * np.sum(y[t - 9 : t + 1])
            + 1.5 * u[t - 9] * u[t]
            + 0.1
        )
        assert y[t + 1] == pytest.approx(expected)

    def test_length_validation(self, rng):
        with pytest.raises(ValueError):
            narma10(10, rng)

    def test_split(self, rng):
        train, test = narma10(100, rng).split(0.7)
        assert len(train.inputs) == 70
        assert len(test.inputs) == 30
        with pytest.raises(ValueError):
            narma10(100, rng).split(1.5)


class TestMackeyGlass:
    def test_shapes(self):
        data = mackey_glass(400)
        assert data.inputs.shape == (400,)
        assert data.targets.shape == (400,)

    def test_targets_are_next_step(self):
        data = mackey_glass(300)
        assert np.allclose(data.inputs[1:], data.targets[:-1])

    def test_chaotic_series_is_bounded_and_nonconstant(self):
        data = mackey_glass(1000)
        assert np.isfinite(data.inputs).all()
        assert np.std(data.inputs) > 0.05
        assert np.abs(data.inputs).max() < 2.0

    def test_deterministic(self):
        a = mackey_glass(200, seed=3)
        b = mackey_glass(200, seed=3)
        assert np.array_equal(a.inputs, b.inputs)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            mackey_glass(1)


class TestMemoryCapacity:
    def test_targets_are_delayed_inputs(self, rng):
        data = memory_capacity_dataset(100, 5, rng)
        assert data.targets.shape == (100, 5)
        for k in range(1, 6):
            assert np.allclose(data.targets[k:, k - 1], data.inputs[:-k])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            memory_capacity_dataset(10, 0, rng)
        with pytest.raises(ValueError):
            memory_capacity_dataset(5, 10, rng)


class TestChannelEqualization:
    def test_symbols_are_four_level(self, rng):
        data = channel_equalization(500, rng=rng)
        assert set(np.unique(data.targets)) <= {-3.0, -1.0, 1.0, 3.0}

    def test_inputs_normalized(self, rng):
        data = channel_equalization(500, rng=rng)
        assert np.abs(data.inputs).max() <= 1.0 + 1e-9

    def test_snr_controls_noise(self):
        clean = channel_equalization(2000, snr_db=60.0, rng=np.random.default_rng(1))
        noisy = channel_equalization(2000, snr_db=5.0, rng=np.random.default_rng(1))
        # Same symbols, different corruption; the noisy signal deviates more
        # from its own re-generated clean counterpart.
        assert not np.allclose(clean.inputs, noisy.inputs)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            channel_equalization(5)


class TestMultivariateClassification:
    def test_shapes(self, rng):
        data = multivariate_classification(30, 40, 3, 3, rng=rng)
        assert data.sequences.shape == (30, 40, 3)
        assert data.labels.shape == (30,)
        assert data.num_classes == 3

    def test_balanced_labels(self, rng):
        data = multivariate_classification(30, 40, 2, 3, rng=rng)
        counts = np.bincount(data.labels)
        assert (counts == 10).all()

    def test_classes_distinguishable(self, rng):
        """Mean power spectra of different classes should differ."""
        data = multivariate_classification(30, 64, 1, 2, noise=0.05, rng=rng)
        spectra = np.abs(np.fft.rfft(data.sequences[:, :, 0], axis=1))
        class0 = spectra[data.labels == 0].mean(axis=0)
        class1 = spectra[data.labels == 1].mean(axis=0)
        assert np.argmax(class0) != np.argmax(class1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            multivariate_classification(2, 40, 1, 3, rng=rng)
