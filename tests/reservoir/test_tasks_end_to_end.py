"""End-to-end reservoir learning: the library must actually solve tasks.

These are the quality gates for the reservoir substrate: a modest ESN
trained only via the linear readout must beat trivial baselines on the
standard benchmarks the paper's motivation cites.
"""

import numpy as np
import pytest

from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.metrics import accuracy, memory_capacity, nrmse, symbol_error_rate
from repro.reservoir.readout import RidgeReadout
from repro.reservoir.tasks import (
    channel_equalization,
    mackey_glass,
    memory_capacity_dataset,
    multivariate_classification,
    narma10,
)
from repro.reservoir.weights import random_input_weights, random_reservoir


def build_esn(dim, n_inputs=1, seed=0, spectral=0.9, scale=0.5):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, element_sparsity=0.75, spectral_radius_target=spectral, rng=rng)
    w_in = random_input_weights(dim, n_inputs, scale=scale, rng=rng)
    return EchoStateNetwork(w, w_in)


def train_test(esn, dataset, washout=50, alpha=1e-6, train_fraction=0.7):
    states = esn.run(dataset.inputs, washout=washout)
    targets = dataset.targets[washout:]
    cut = int(len(states) * train_fraction)
    readout = RidgeReadout(alpha=alpha).fit(states[:cut], targets[:cut])
    return readout.predict(states[cut:]), targets[cut:]


class TestNarma10:
    def test_beats_trivial_baselines(self):
        data = narma10(2500, np.random.default_rng(0))
        esn = build_esn(200, seed=1)
        predictions, targets = train_test(esn, data)
        error = nrmse(predictions, targets)
        # Mean predictor has NRMSE 1.0; a healthy ESN lands well below 0.5.
        assert error < 0.5


class TestMackeyGlass:
    def test_one_step_prediction(self):
        data = mackey_glass(3000)
        esn = build_esn(150, seed=2, scale=1.0)
        predictions, targets = train_test(esn, data)
        assert nrmse(predictions, targets) < 0.05


class TestMemoryCapacity:
    def test_capacity_scales_with_reservoir(self):
        data = memory_capacity_dataset(3000, 20, np.random.default_rng(3))
        small = build_esn(20, seed=4, spectral=0.95)
        large = build_esn(100, seed=4, spectral=0.95)
        small_pred, small_t = train_test(small, data, washout=100)
        large_pred, large_t = train_test(large, data, washout=100)
        mc_small = memory_capacity(small_pred, small_t)
        mc_large = memory_capacity(large_pred, large_t)
        assert mc_large > mc_small
        assert mc_large > 5.0


class TestChannelEqualization:
    def test_symbol_error_rate_low(self):
        """The paper's reference [3] FPGA-RC use case."""
        data = channel_equalization(6000, snr_db=24.0, rng=np.random.default_rng(5))
        esn = build_esn(120, seed=6, scale=1.0)
        predictions, targets = train_test(esn, data, washout=100, alpha=1e-4)
        ser = symbol_error_rate(predictions, targets)
        # Random guessing gives 0.75; equalization should be far better.
        assert ser < 0.15


class TestClassification:
    def test_multivariate_classification_accuracy(self):
        """Bianchi et al. style: reservoir final-state + linear classifier."""
        data = multivariate_classification(
            60, 80, 3, 3, noise=0.2, rng=np.random.default_rng(7)
        )
        esn = build_esn(150, n_inputs=3, seed=8, scale=0.8)

        def state_statistics(sequence):
            """Mean+std reservoir statistics — the usual sequence embedding
            (a pure state mean cancels for oscillatory inputs)."""
            states = esn.run(sequence)
            return np.concatenate([states.mean(axis=0), states.std(axis=0)])

        features = np.stack([state_statistics(s) for s in data.sequences])
        one_hot = np.eye(3)[data.labels]
        cut = 42
        readout = RidgeReadout(alpha=1e-3).fit(features[:cut], one_hot[:cut])
        predicted = np.argmax(readout.predict(features[cut:]), axis=1)
        assert accuracy(predicted, data.labels[cut:]) > 0.8
