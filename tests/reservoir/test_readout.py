"""Tests for the ridge-regression readout."""

import numpy as np
import pytest

from repro.reservoir.readout import RidgeReadout


class TestRidgeReadout:
    def test_recovers_exact_linear_map(self, rng):
        states = rng.standard_normal((200, 10))
        w_true = rng.standard_normal(10)
        targets = states @ w_true
        readout = RidgeReadout(alpha=0.0).fit(states, targets)
        assert np.allclose(readout.predict(states), targets, atol=1e-8)

    def test_recovers_bias(self, rng):
        states = rng.standard_normal((100, 5))
        targets = states @ np.ones(5) + 3.0
        readout = RidgeReadout(alpha=0.0).fit(states, targets)
        assert readout.bias[0] == pytest.approx(3.0, abs=1e-8)

    def test_no_bias_mode(self, rng):
        states = rng.standard_normal((100, 5))
        targets = states @ np.ones(5)
        readout = RidgeReadout(alpha=0.0, fit_bias=False).fit(states, targets)
        assert np.allclose(readout.bias, 0.0)
        assert np.allclose(readout.predict(states), targets, atol=1e-8)

    def test_regularization_shrinks_weights(self, rng):
        states = rng.standard_normal((50, 20))
        targets = rng.standard_normal(50)
        loose = RidgeReadout(alpha=1e-9).fit(states, targets)
        tight = RidgeReadout(alpha=100.0).fit(states, targets)
        assert np.linalg.norm(tight.w_out) < np.linalg.norm(loose.w_out)

    def test_multi_output(self, rng):
        states = rng.standard_normal((80, 6))
        targets = rng.standard_normal((80, 3))
        readout = RidgeReadout().fit(states, targets)
        assert readout.predict(states).shape == (80, 3)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RidgeReadout().predict(np.zeros((4, 2)))

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            RidgeReadout().fit(np.zeros((10, 2)), np.zeros(8))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeReadout(alpha=-1.0)

    def test_noisy_recovery_with_regularization(self, rng):
        states = rng.standard_normal((500, 8))
        w_true = rng.standard_normal(8)
        targets = states @ w_true + 0.01 * rng.standard_normal(500)
        readout = RidgeReadout(alpha=1e-3).fit(states, targets)
        assert np.allclose(readout.w_out.ravel(), w_true, atol=0.05)
