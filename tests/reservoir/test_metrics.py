"""Tests for reservoir evaluation metrics."""

import numpy as np
import pytest

from repro.reservoir.metrics import (
    accuracy,
    memory_capacity,
    mse,
    nrmse,
    rmse,
    symbol_error_rate,
)


class TestBasicMetrics:
    def test_mse_zero_for_perfect(self):
        x = np.array([1.0, 2.0, 3.0])
        assert mse(x, x) == 0.0

    def test_mse_known_value(self):
        assert mse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_rmse_is_sqrt_mse(self):
        p = np.array([1.0, 3.0])
        t = np.array([0.0, 0.0])
        assert rmse(p, t) == pytest.approx(np.sqrt(mse(p, t)))

    def test_nrmse_normalizes_by_std(self, rng):
        t = rng.standard_normal(1000)
        p = t + 0.1
        assert nrmse(p, t) == pytest.approx(0.1 / np.std(t))

    def test_nrmse_rejects_constant_targets(self):
        with pytest.raises(ValueError):
            nrmse(np.array([1.0]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))


class TestMemoryCapacity:
    def test_perfect_recall_sums_to_delay_count(self, rng):
        targets = rng.standard_normal((100, 4))
        assert memory_capacity(targets, targets) == pytest.approx(4.0)

    def test_uncorrelated_predictions_near_zero(self, rng):
        targets = rng.standard_normal((2000, 3))
        predictions = rng.standard_normal((2000, 3))
        assert memory_capacity(predictions, targets) < 0.05

    def test_constant_column_skipped(self):
        targets = np.ones((50, 1))
        predictions = np.ones((50, 1))
        assert memory_capacity(predictions, targets) == 0.0


class TestSymbolErrorRate:
    def test_perfect_decoding(self):
        symbols = np.array([-3.0, -1.0, 1.0, 3.0])
        targets = np.array([-3.0, 1.0, 3.0, -1.0])
        assert symbol_error_rate(targets, targets, symbols) == 0.0

    def test_slicing_to_nearest(self):
        targets = np.array([1.0, -1.0])
        predictions = np.array([1.4, -0.8])  # still slice correctly
        assert symbol_error_rate(predictions, targets) == 0.0

    def test_errors_counted(self):
        targets = np.array([3.0, 3.0])
        predictions = np.array([2.9, -2.9])
        assert symbol_error_rate(predictions, targets) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            symbol_error_rate(np.zeros(2), np.zeros(3))


class TestAccuracy:
    def test_all_correct(self):
        labels = np.array([0, 1, 2])
        assert accuracy(labels, labels) == 1.0

    def test_half_correct(self):
        assert accuracy(np.array([0, 1]), np.array([0, 2])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(2), np.zeros(3))
