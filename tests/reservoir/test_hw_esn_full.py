"""Tests for the fully-hardware ESN (augmented-matrix compilation)."""

import numpy as np
import pytest

from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.quantize import quantize_esn
from repro.reservoir.weights import random_input_weights, random_reservoir


def make_esn(dim=12, n_inputs=2, seed=0):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, rng=rng)
    w_in = random_input_weights(dim, n_inputs, rng=rng)
    return quantize_esn(w, w_in, weight_width=6, state_width=6)


class TestAugmentedMatrix:
    def test_step_matches_software(self, rng):
        esn = make_esn()
        hw = HardwareESN(esn, include_input=True, backend="functional")
        state = rng.integers(-31, 32, size=esn.dim)
        u = rng.integers(-127, 128, size=esn.n_inputs)
        assert np.array_equal(hw.step(state, u), esn.step(state, u))

    def test_run_matches_software(self, rng):
        esn = make_esn()
        hw = HardwareESN(esn, include_input=True)
        inputs = rng.integers(-127, 128, size=(15, esn.n_inputs))
        assert np.array_equal(hw.run(inputs), esn.run(inputs))

    def test_augmented_shape(self):
        esn = make_esn(dim=10, n_inputs=3)
        hw = HardwareESN(esn, include_input=True)
        assert hw.multiplier.rows == 13  # dim + n_inputs
        assert hw.multiplier.cols == 10

    def test_stream_width_covers_inputs(self):
        esn = make_esn()
        hw = HardwareESN(esn, include_input=True, input_quant_width=8)
        assert hw.multiplier.input_width == 8  # max(state 6, input 8)

    def test_recurrent_product_blocked_in_full_mode(self, rng):
        hw = HardwareESN(make_esn(), include_input=True)
        with pytest.raises(RuntimeError):
            hw.recurrent_product(np.zeros(12, dtype=np.int64))

    def test_gate_level_augmented_step(self, rng):
        """The whole pre-activation from the cycle-accurate simulator."""
        esn = make_esn(dim=6, n_inputs=1, seed=5)
        hw = HardwareESN(esn, include_input=True, backend="gates")
        state = rng.integers(-31, 32, size=6)
        u = rng.integers(-127, 128, size=1)
        assert np.array_equal(hw.step(state, u), esn.step(state, u))
