"""Tests for the hardware-compiled readout (Eq. 2 on the architecture)."""

import numpy as np
import pytest

from repro.reservoir.hw_readout import HardwareReadout
from repro.reservoir.readout import RidgeReadout


def trained_readout(rng, dim=16, outputs=1):
    states = rng.standard_normal((300, dim))
    w_true = rng.standard_normal((outputs, dim))
    targets = states @ w_true.T
    if outputs == 1:
        targets = targets[:, 0]
    return RidgeReadout(alpha=1e-8).fit(states, targets), states, targets


class TestCompilation:
    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            HardwareReadout(RidgeReadout())

    def test_bad_width_rejected(self, rng):
        readout, __, __ = trained_readout(rng)
        with pytest.raises(ValueError):
            HardwareReadout(readout, weight_width=1)

    def test_multiplier_shape(self, rng):
        readout, __, __ = trained_readout(rng, dim=20, outputs=3)
        hw = HardwareReadout(readout)
        assert hw.multiplier.rows == 20
        assert hw.multiplier.cols == 3


class TestPrediction:
    def test_integer_path_matches_numpy(self, rng):
        readout, __, __ = trained_readout(rng)
        hw = HardwareReadout(readout)
        state_q = rng.integers(-128, 128, size=16)
        assert np.array_equal(hw.predict_integer(state_q), hw.w_out_q @ state_q)

    def test_dequantized_close_to_float_readout(self, rng):
        readout, __, __ = trained_readout(rng, dim=12)
        hw = HardwareReadout(readout, weight_width=10)
        states_q = rng.integers(-128, 128, size=(20, 12))
        hw_pred = hw.predict(states_q)
        float_pred = readout.predict(states_q.astype(float))
        bound = hw.quantization_error_bound(state_peak=128.0)
        assert np.abs(hw_pred - float_pred).max() <= bound + 1e-9

    def test_more_bits_tighter(self, rng):
        readout, __, __ = trained_readout(rng, dim=10)
        states_q = rng.integers(-64, 64, size=(30, 10))
        float_pred = readout.predict(states_q.astype(float))
        errors = {}
        for width in (4, 12):
            hw = HardwareReadout(readout, weight_width=width)
            errors[width] = np.abs(hw.predict(states_q) - float_pred).max()
        assert errors[12] < errors[4]

    def test_multi_output(self, rng):
        readout, __, __ = trained_readout(rng, dim=8, outputs=3)
        hw = HardwareReadout(readout)
        states_q = rng.integers(-32, 32, size=(5, 8))
        assert hw.predict(states_q).shape == (5, 3)

    def test_single_state_vector(self, rng):
        readout, __, __ = trained_readout(rng, dim=8)
        hw = HardwareReadout(readout)
        prediction = hw.predict(rng.integers(-32, 32, size=8))
        assert np.isscalar(prediction) or prediction.shape == ()

    def test_bias_applied(self, rng):
        states = rng.standard_normal((200, 6))
        targets = states @ np.ones(6) + 5.0
        readout = RidgeReadout(alpha=1e-9).fit(states, targets)
        hw = HardwareReadout(readout, weight_width=12)
        zero_state = np.zeros(6, dtype=np.int64)
        assert float(hw.predict(zero_state)) == pytest.approx(5.0, abs=0.01)
