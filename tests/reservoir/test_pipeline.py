"""Tests for the high-level reservoir pipeline."""

import numpy as np
import pytest

from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.pipeline import ReservoirPipeline
from repro.reservoir.quantize import quantize_esn
from repro.reservoir.tasks import channel_equalization, narma10
from repro.reservoir.weights import random_input_weights, random_reservoir


def float_esn(dim=80, seed=0):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, rng=rng)
    w_in = random_input_weights(dim, 1, rng=rng)
    return EchoStateNetwork(w, w_in)


def integer_esn(dim=60, seed=0):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, rng=rng)
    w_in = random_input_weights(dim, 1, rng=rng)
    return quantize_esn(w, w_in)


class TestFloatPipeline:
    def test_fit_evaluate_report(self):
        pipeline = ReservoirPipeline(float_esn(), washout=50, alpha=1e-5)
        report = pipeline.fit_evaluate(narma10(1200, np.random.default_rng(1)))
        assert report.train_samples + report.test_samples == 1200 - 50
        assert 0 < report.test_nrmse < 1.0
        assert report.test_symbol_error_rate is None

    def test_train_error_not_worse_than_chance(self):
        pipeline = ReservoirPipeline(float_esn(), washout=50)
        report = pipeline.fit_evaluate(narma10(1000, np.random.default_rng(2)))
        assert report.train_nrmse < report.test_nrmse * 1.5

    def test_symbol_error_reporting(self):
        pipeline = ReservoirPipeline(float_esn(dim=100), washout=80, alpha=1e-4)
        data = channel_equalization(3000, rng=np.random.default_rng(3))
        report = pipeline.fit_evaluate(
            data, symbols=np.array([-3.0, -1.0, 1.0, 3.0])
        )
        assert report.test_symbol_error_rate is not None
        assert report.test_symbol_error_rate < 0.5

    def test_predict_after_fit(self):
        pipeline = ReservoirPipeline(float_esn(), washout=20)
        data = narma10(500, np.random.default_rng(4))
        pipeline.fit_evaluate(data)
        predictions = pipeline.predict(data.inputs)
        assert predictions.shape == (500 - 20,)


class TestIntegerPipeline:
    def test_integer_reservoir_works(self):
        pipeline = ReservoirPipeline(integer_esn(), washout=50, alpha=1e-4)
        report = pipeline.fit_evaluate(narma10(1000, np.random.default_rng(5)))
        assert report.test_nrmse < 1.0

    def test_hardware_reservoir_matches_integer(self):
        esn = integer_esn(dim=24)
        data = narma10(300, np.random.default_rng(6))
        sw = ReservoirPipeline(esn, washout=20, alpha=1e-4)
        hw = ReservoirPipeline(
            HardwareESN(esn, backend="functional"), washout=20, alpha=1e-4
        )
        sw_states = sw.harvest(data.inputs)
        hw_states = hw.harvest(data.inputs)
        assert np.array_equal(sw_states, hw_states)


class TestValidation:
    def test_bad_train_fraction(self):
        with pytest.raises(ValueError):
            ReservoirPipeline(float_esn(), train_fraction=1.0)

    def test_bad_washout(self):
        with pytest.raises(ValueError):
            ReservoirPipeline(float_esn(), washout=-1)
