"""Tests for reservoir weight generation."""

import numpy as np
import pytest

from repro.core.sparsity import element_sparsity
from repro.reservoir.weights import (
    random_input_weights,
    random_reservoir,
    rescale_spectral_radius,
    spectral_radius,
)


class TestSpectralRadius:
    def test_diagonal_matrix(self):
        assert spectral_radius(np.diag([0.5, -0.9, 0.2])) == pytest.approx(0.9)

    def test_zero_matrix(self):
        assert spectral_radius(np.zeros((4, 4))) == pytest.approx(0.0)

    def test_power_iteration_agrees_with_dense(self, rng):
        """The >600-dim power-iteration path matches eigvals on a matrix we
        can check both ways."""
        w = rng.standard_normal((50, 50)) / np.sqrt(50)
        dense = spectral_radius(w)
        # Force the power-iteration path via a symmetric positive variant
        # whose dominant eigenvalue converges reliably.
        sym = (w + w.T) / 2
        rng2 = np.random.default_rng(0)
        vec = rng2.standard_normal(50)
        for _ in range(500):
            nxt = sym @ vec
            vec = nxt / np.linalg.norm(nxt)
        power_estimate = np.linalg.norm(sym @ vec)
        assert power_estimate == pytest.approx(
            np.max(np.abs(np.linalg.eigvals(sym))), rel=2e-2
        )
        assert dense > 0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            spectral_radius(np.zeros((3, 4)))


class TestRescale:
    def test_rescaled_radius_matches_target(self, rng):
        w = rng.standard_normal((30, 30))
        scaled = rescale_spectral_radius(w, 0.8)
        assert spectral_radius(scaled) == pytest.approx(0.8, rel=1e-9)

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError):
            rescale_spectral_radius(np.zeros((3, 3)), 0.9)

    def test_bad_target_rejected(self, rng):
        with pytest.raises(ValueError):
            rescale_spectral_radius(rng.standard_normal((3, 3)), 0.0)


class TestRandomReservoir:
    def test_default_sparsity_75_percent(self, rng):
        """The paper's baseline RC system: '75% of the elements being 0'."""
        w = random_reservoir(100, rng=rng)
        assert element_sparsity(w) == pytest.approx(0.75, abs=0.02)

    def test_spectral_radius_target(self, rng):
        w = random_reservoir(80, spectral_radius_target=0.95, rng=rng)
        assert spectral_radius(w) == pytest.approx(0.95, rel=1e-6)

    def test_high_sparsity(self, rng):
        """Gallicchio: 'sparsity should exceed 80%'."""
        w = random_reservoir(64, element_sparsity=0.9, rng=rng)
        assert element_sparsity(w) >= 0.89

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_reservoir(0, rng=rng)
        with pytest.raises(ValueError):
            random_reservoir(10, element_sparsity=1.0, rng=rng)

    def test_deterministic(self):
        a = random_reservoir(20, rng=np.random.default_rng(5))
        b = random_reservoir(20, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestInputWeights:
    def test_shape_and_scale(self, rng):
        w_in = random_input_weights(50, 3, scale=0.4, rng=rng)
        assert w_in.shape == (50, 3)
        assert np.abs(w_in).max() <= 0.4

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_input_weights(0, 1, rng=rng)
        with pytest.raises(ValueError):
            random_input_weights(10, 1, scale=0.0, rng=rng)
