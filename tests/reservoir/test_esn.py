"""Tests for the floating-point Echo State Network."""

import numpy as np
import pytest

from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.weights import random_input_weights, random_reservoir


def make_esn(dim=40, n_inputs=1, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, rng=rng)
    w_in = random_input_weights(dim, n_inputs, rng=rng)
    return EchoStateNetwork(w, w_in, **kwargs)


class TestConstruction:
    def test_dims(self):
        esn = make_esn(dim=30, n_inputs=2)
        assert esn.dim == 30
        assert esn.n_inputs == 2

    def test_non_square_w_rejected(self):
        with pytest.raises(ValueError):
            EchoStateNetwork(np.zeros((3, 4)), np.zeros((3, 1)))

    def test_mismatched_w_in_rejected(self):
        with pytest.raises(ValueError):
            EchoStateNetwork(np.zeros((3, 3)), np.zeros((4, 1)))

    def test_bad_leak_rejected(self):
        with pytest.raises(ValueError):
            make_esn(leak=0.0)
        with pytest.raises(ValueError):
            make_esn(leak=1.5)


class TestDynamics:
    def test_step_implements_equation_1(self):
        """x(n) = f(W_in u(n) + W x(n-1)) checked by hand."""
        w = np.array([[0.0, 0.5], [0.0, 0.0]])
        w_in = np.array([[1.0], [0.0]])
        esn = EchoStateNetwork(w, w_in)
        state = np.array([0.2, 0.4])
        u = np.array([0.3])
        expected = np.tanh(w_in @ u + w @ state)
        assert np.allclose(esn.step(state, u), expected)

    def test_run_shapes(self):
        esn = make_esn(dim=25)
        states = esn.run(np.linspace(0, 1, 50))
        assert states.shape == (50, 25)

    def test_washout_drops_leading_states(self):
        esn = make_esn(dim=10)
        inputs = np.linspace(0, 1, 30)
        full = esn.run(inputs)
        washed = esn.run(inputs, washout=10)
        assert washed.shape == (20, 10)
        assert np.allclose(washed, full[10:])

    def test_states_bounded_by_tanh(self):
        esn = make_esn(dim=20)
        states = esn.run(np.random.default_rng(0).uniform(-1, 1, 100))
        assert np.abs(states).max() <= 1.0

    def test_leaky_integration_smooths(self):
        fast = make_esn(dim=15, leak=1.0)
        slow = make_esn(dim=15, leak=0.1)
        inputs = np.zeros(20)
        inputs[0] = 1.0
        fast_states = fast.run(inputs)
        slow_states = slow.run(inputs)
        # The leaky network decays more slowly after the impulse.
        assert np.abs(slow_states[-1]).sum() > np.abs(fast_states[-1]).sum() * 0.1

    def test_echo_state_property_fading_memory(self):
        """Two different initial states converge under the same input when
        the spectral radius is < 1 (the echo state property)."""
        esn = make_esn(dim=50)
        rng = np.random.default_rng(1)
        inputs = rng.uniform(-0.5, 0.5, 200)
        a = esn.run(inputs, initial_state=rng.standard_normal(50))
        b = esn.run(inputs, initial_state=rng.standard_normal(50))
        gap_start = np.abs(a[0] - b[0]).max()
        gap_end = np.abs(a[-1] - b[-1]).max()
        assert gap_end < gap_start * 1e-3

    def test_multivariate_input(self):
        esn = make_esn(dim=20, n_inputs=3)
        inputs = np.random.default_rng(0).uniform(-1, 1, (40, 3))
        states = esn.run(inputs)
        assert states.shape == (40, 20)

    def test_feature_count_mismatch_rejected(self):
        esn = make_esn(dim=20, n_inputs=3)
        with pytest.raises(ValueError):
            esn.run(np.zeros((10, 2)))

    def test_washout_out_of_range_rejected(self):
        esn = make_esn(dim=10)
        with pytest.raises(ValueError):
            esn.run(np.zeros(5), washout=5)
