"""Tests for integer ESN quantization."""

import numpy as np
import pytest

from repro.reservoir.quantize import IntegerESN, quantize_esn, quantize_weights
from repro.reservoir.weights import random_input_weights, random_reservoir


class TestQuantizeWeights:
    def test_range_respected(self, rng):
        w = rng.uniform(-1, 1, size=(20, 20))
        w_q, scale = quantize_weights(w, 8)
        assert w_q.min() >= -127
        assert w_q.max() <= 127
        assert scale > 0

    def test_reconstruction_error_bounded(self, rng):
        w = rng.uniform(-1, 1, size=(20, 20))
        w_q, scale = quantize_weights(w, 8)
        assert np.abs(w_q / scale - w).max() <= 0.5 / scale + 1e-12

    def test_zero_matrix(self):
        w_q, scale = quantize_weights(np.zeros((4, 4)), 8)
        assert (w_q == 0).all()
        assert scale == 1.0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            quantize_weights(np.ones((2, 2)), 1)

    def test_more_bits_less_error(self, rng):
        w = rng.uniform(-1, 1, size=(30, 30))
        err = {}
        for width in (3, 8):
            w_q, scale = quantize_weights(w, width)
            err[width] = np.abs(w_q / scale - w).max()
        assert err[8] < err[3]


class TestIntegerEsn:
    def make(self, dim=16, width=8, state_width=8, seed=0):
        rng = np.random.default_rng(seed)
        w = random_reservoir(dim, rng=rng)
        w_in = random_input_weights(dim, 1, rng=rng)
        return quantize_esn(w, w_in, weight_width=width, state_width=state_width)

    def test_state_range_clipped(self, rng):
        esn = self.make(state_width=6)
        inputs = rng.integers(-127, 128, size=(100, 1))
        states = esn.run(inputs)
        assert states.min() >= -32
        assert states.max() <= 31

    def test_states_are_integers(self, rng):
        esn = self.make()
        states = esn.run(rng.integers(-127, 128, size=(20, 1)))
        assert states.dtype == np.int64

    def test_step_deterministic(self, rng):
        esn = self.make()
        state = rng.integers(-100, 100, size=esn.dim)
        u = np.array([5])
        assert np.array_equal(esn.step(state, u), esn.step(state, u))

    def test_recurrent_product_override(self, rng):
        """Supplying the hardware's product gives the identical next state."""
        esn = self.make()
        state = rng.integers(-100, 100, size=esn.dim)
        u = np.array([17])
        product = esn.w_q @ state
        assert np.array_equal(
            esn.step(state, u), esn.step(state, u, recurrent_product=product)
        )

    def test_quantize_inputs(self):
        esn = self.make()
        q = esn.quantize_inputs(np.array([-1.0, 0.0, 1.0, 2.0]), input_width=8)
        assert q.tolist() == [-127, 0, 127, 127]

    def test_activation_shift(self):
        esn = IntegerESN(
            w_q=np.zeros((2, 2), dtype=np.int64),
            w_in_q=np.zeros((2, 1), dtype=np.int64),
            shift=3,
            state_width=8,
        )
        pre = np.array([80, -80])
        assert esn.activation(pre).tolist() == [10, -10]

    def test_validation(self):
        with pytest.raises(ValueError):
            IntegerESN(np.zeros((2, 3)), np.zeros((2, 1)), 0, 8)
        with pytest.raises(ValueError):
            IntegerESN(np.zeros((2, 2)), np.zeros((3, 1)), 0, 8)
        with pytest.raises(ValueError):
            IntegerESN(np.zeros((2, 2)), np.zeros((2, 1)), -1, 8)
        with pytest.raises(ValueError):
            IntegerESN(np.zeros((2, 2)), np.zeros((2, 1)), 0, 1)

    def test_washout(self, rng):
        esn = self.make()
        inputs = rng.integers(-50, 50, size=(30, 1))
        full = esn.run(inputs)
        washed = esn.run(inputs, washout=10)
        assert np.array_equal(washed, full[10:])

    def test_integer_states_track_float_esn(self, rng):
        """Kleyko et al. [16]: quantized reservoirs preserve the dynamics.
        The integer state trajectory correlates strongly with the float one."""
        dim = 32
        gen = np.random.default_rng(7)
        w = random_reservoir(dim, rng=gen)
        w_in = random_input_weights(dim, 1, rng=gen)
        from repro.reservoir.esn import EchoStateNetwork

        float_esn = EchoStateNetwork(w, w_in, activation=lambda x: np.clip(x, -1, 1))
        int_esn = quantize_esn(w, w_in, weight_width=8, state_width=8)
        u = gen.uniform(-1, 1, size=200)
        float_states = float_esn.run(u)
        int_states = int_esn.run(int_esn.quantize_inputs(u)).astype(float) / 127.0
        # Correlate a handful of neurons' trajectories.
        for neuron in range(0, dim, 8):
            f = float_states[:, neuron]
            i = int_states[:, neuron]
            if np.std(f) > 1e-6 and np.std(i) > 1e-6:
                assert np.corrcoef(f, i)[0, 1] > 0.8
