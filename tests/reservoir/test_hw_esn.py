"""Tests for the hardware-backed ESN: software and hardware must agree."""

import numpy as np
import pytest

from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.quantize import quantize_esn
from repro.reservoir.weights import random_input_weights, random_reservoir


def make_integer_esn(dim=12, seed=0):
    rng = np.random.default_rng(seed)
    w = random_reservoir(dim, rng=rng)
    w_in = random_input_weights(dim, 1, rng=rng)
    return quantize_esn(w, w_in, weight_width=6, state_width=6)


class TestFunctionalBackend:
    def test_states_match_software(self, rng):
        esn = make_integer_esn()
        hw = HardwareESN(esn, backend="functional", rng=rng)
        inputs = rng.integers(-31, 32, size=(30, 1))
        assert np.array_equal(hw.run(inputs), esn.run(inputs))

    def test_recurrent_product_is_w_times_x(self, rng):
        esn = make_integer_esn()
        hw = HardwareESN(esn, backend="functional", rng=rng)
        state = rng.integers(-31, 32, size=esn.dim)
        assert np.array_equal(hw.recurrent_product(state), esn.w_q @ state)

    def test_step_latency_estimate_positive(self, rng):
        hw = HardwareESN(make_integer_esn(), rng=rng)
        assert 0 < hw.step_latency_s() < 1e-6

    def test_summary(self, rng):
        hw = HardwareESN(make_integer_esn(), rng=rng)
        assert "HardwareESN" in hw.summary()

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            HardwareESN(make_integer_esn(), backend="quantum")


class TestGateBackend:
    def test_gate_level_states_match_software(self, rng):
        """Every recurrent product through the cycle-accurate simulator."""
        esn = make_integer_esn(dim=8)
        hw = HardwareESN(esn, backend="gates", rng=rng)
        inputs = rng.integers(-31, 32, size=(5, 1))
        assert np.array_equal(hw.run(inputs), esn.run(inputs))

    def test_gate_and_functional_backends_agree(self, rng):
        esn = make_integer_esn(dim=6, seed=3)
        gates = HardwareESN(esn, backend="gates", rng=np.random.default_rng(0))
        func = HardwareESN(esn, backend="functional", rng=np.random.default_rng(0))
        state = rng.integers(-31, 32, size=esn.dim)
        u = np.array([7])
        assert np.array_equal(gates.step(state, u), func.step(state, u))


class TestWashout:
    def test_washout_matches_software(self, rng):
        esn = make_integer_esn()
        hw = HardwareESN(esn, rng=rng)
        inputs = rng.integers(-31, 32, size=(20, 1))
        assert np.array_equal(hw.run(inputs, washout=5), esn.run(inputs, washout=5))

    def test_washout_validation(self, rng):
        hw = HardwareESN(make_integer_esn(), rng=rng)
        with pytest.raises(ValueError):
            hw.run(np.zeros((3, 1), dtype=np.int64), washout=3)
