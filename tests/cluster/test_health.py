"""Revival state machine under a fake clock — zero real sleeps.

The backoff/probe logic is the part of the self-healing fleet that is
all about *time*, so these tests inject a hand-cranked clock into
:class:`ProbeState` / :class:`RemoteShard` and step it explicitly: no
test here ever waits on a wall clock (connection attempts against a
reserved-but-unbound loopback port fail with ECONNREFUSED immediately).
"""

import random
import socket

import numpy as np
import pytest

from repro.cluster import (
    BackoffPolicy,
    ClusterController,
    HealthProber,
    LocalServerHandle,
    ProbeState,
    RemoteShardError,
)
from repro.serve.cache import CompileCache
from repro.serve.shards import ShardedMultiplier


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _reserve_port(host="127.0.0.1"):
    """A currently-unbound loopback port (connects fail instantly)."""
    sock = socket.socket()
    sock.bind((host, 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestBackoffPolicy:
    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(initial_s=0.5, multiplier=2.0, max_s=4.0, jitter=0.0)
        assert [policy.base_delay(n) for n in (1, 2, 3, 4, 5, 50)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            4.0,
            4.0,
        ]

    def test_jitter_is_bounded(self):
        policy = BackoffPolicy(
            initial_s=1.0,
            multiplier=2.0,
            max_s=8.0,
            jitter=0.25,
            rng=random.Random(7),
        )
        for failures in (1, 2, 3, 4):
            base = policy.base_delay(failures)
            for _ in range(200):
                delay = policy.delay(failures)
                assert base <= delay <= base * 1.25

    def test_zero_jitter_is_deterministic(self):
        policy = BackoffPolicy(initial_s=0.5, jitter=0.0)
        assert policy.delay(3) == policy.base_delay(3) == 2.0

    def test_long_outages_do_not_overflow(self):
        policy = BackoffPolicy(initial_s=0.5, multiplier=10.0, max_s=30.0, jitter=0.0)
        assert policy.delay(10_000) == 30.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_s": 0.0},
            {"multiplier": 0.5},
            {"max_s": 0.1, "initial_s": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)


class TestProbeState:
    def test_failure_schedules_and_success_resets(self):
        clock = FakeClock()
        state = ProbeState(
            BackoffPolicy(initial_s=2.0, multiplier=2.0, max_s=16.0, jitter=0.0),
            clock=clock,
        )
        assert state.due()  # never failed: always due
        state.note_failure("connection refused")
        assert state.consecutive_failures == 1
        assert not state.due()
        clock.advance(1.9)
        assert not state.due()
        clock.advance(0.2)
        assert state.due()
        # A second failure doubles the window.
        state.note_failure()
        assert state.last_delay_s == 4.0
        clock.advance(3.9)
        assert not state.due()
        clock.advance(0.2)
        assert state.due()
        state.note_success(revived=True)
        assert state.consecutive_failures == 0
        assert state.due()
        assert state.auto_revivals == 1
        assert state.last_error is None

    def test_reset_is_the_manual_fast_path(self):
        clock = FakeClock()
        state = ProbeState(
            BackoffPolicy(initial_s=60.0, max_s=120.0, jitter=0.0), clock=clock
        )
        state.note_failure()
        assert not state.due()
        state.reset()
        assert state.due()  # no waiting out the hour

    def test_telemetry_shape(self):
        clock = FakeClock()
        state = ProbeState(
            BackoffPolicy(initial_s=3.0, max_s=12.0, jitter=0.0), clock=clock
        )
        state.note_probe()
        state.note_failure("dead")
        clock.advance(1.0)
        snap = state.telemetry()
        assert snap["consecutive_failures"] == 1
        assert snap["next_probe_in_s"] == pytest.approx(2.0)
        assert snap["backoff_s"] == 3.0
        assert snap["backoff_max_s"] == 12.0
        assert snap["probes"] == 1
        assert snap["last_error"] == "dead"
        # Past the deadline the countdown clamps to zero.
        clock.advance(10.0)
        assert state.telemetry()["next_probe_in_s"] == 0.0


class TestHealthProber:
    class _FakeShard:
        def __init__(self, healthy, due=True, recovers=False):
            self.healthy = healthy
            self._due = due
            self._recovers = recovers
            self.probes = 0

        def probe_due(self):
            return self._due

        def probe(self):
            self.probes += 1
            if self._recovers:
                self.healthy = True
            return self.healthy

    def test_poke_probes_only_due_unhealthy_shards(self):
        healthy = self._FakeShard(healthy=True)
        waiting = self._FakeShard(healthy=False, due=False)
        dead = self._FakeShard(healthy=False)
        back = self._FakeShard(healthy=False, recovers=True)
        prober = HealthProber([healthy, waiting, dead, back])
        assert prober.poke() == {"probed": 2, "revived": 1, "waiting": 1}
        assert healthy.probes == 0 and waiting.probes == 0
        assert dead.probes == 1 and back.probes == 1
        # The revived shard is healthy now; only the dead one re-probes.
        assert prober.poke() == {"probed": 1, "revived": 0, "waiting": 1}


class TestRemoteShardRevival:
    """unhealthy -> probe -> still-dead (backoff grows) -> recovered,
    driven entirely by a fake clock against instant-refusal endpoints."""

    @pytest.fixture()
    def dead_endpoint_sharded(self, tmp_path):
        clock = FakeClock()
        store = tmp_path / "store"
        store.mkdir()
        port = _reserve_port()
        rng = np.random.default_rng(0)
        matrix = rng.integers(-50, 51, size=(8, 6))
        sharded = ShardedMultiplier(
            matrix,
            shards=1,
            cache=CompileCache(directory=store),
            backend="remote",
            endpoints=[("127.0.0.1", port)],
            probe_backoff=BackoffPolicy(
                initial_s=5.0, multiplier=2.0, max_s=40.0, jitter=0.0
            ),
            probe_clock=clock,
        )
        try:
            yield sharded, matrix, clock, store, port
        finally:
            sharded.close()

    def test_full_revival_cycle_with_zero_sleeps(self, dead_endpoint_sharded):
        sharded, matrix, clock, store, port = dead_endpoint_sharded
        remote = sharded._remotes[0]
        vectors = np.arange(24, dtype=np.int64).reshape(3, 8) % 5 - 2

        # 1. First batch: both attempts refused instantly -> unhealthy,
        #    served locally, bit-exact.
        assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)
        assert remote.healthy is False
        assert remote.local_fallbacks == 1
        state = remote.probe_state
        assert state.consecutive_failures == 1
        first_deadline = state.next_probe_at

        # 2. Inside the backoff window: fail-fast fallback, no probe.
        assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)
        assert state.consecutive_failures == 1
        assert state.probes == 0
        assert state.next_probe_at == first_deadline

        # 3. Past the deadline, still dead: exactly one probe attempt,
        #    backoff doubles, traffic stays exact.
        clock.advance(5.1)
        assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)
        assert state.probes == 1
        assert state.consecutive_failures == 2
        assert state.last_delay_s == 10.0
        assert remote.local_fallbacks == 3

        # 4. The host comes back on the same endpoint; within the new
        #    window nothing probes, past it the next batch revives.
        server = LocalServerHandle(store, port=port, name="revived")
        try:
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.healthy is False  # still inside the window
            clock.advance(10.1)
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.healthy is True
            assert state.auto_revivals == 1
            assert state.consecutive_failures == 0
            assert remote.remote_calls == 1
            fallbacks = remote.local_fallbacks
            # 5. Recovered: remote serving resumes, fallback counter stops.
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.remote_calls == 2
            assert remote.local_fallbacks == fallbacks
            probe_snap = sharded.utilization()["per_shard"][0]["probe"]
            assert probe_snap["auto_revivals"] == 1
        finally:
            server.stop()

    def test_explicit_prober_poke_revives_idle_links(self, dead_endpoint_sharded):
        sharded, matrix, clock, store, port = dead_endpoint_sharded
        remote = sharded._remotes[0]
        vectors = np.zeros((1, 8), dtype=np.int64)
        assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)
        assert remote.healthy is False
        # No traffic from here on: the prober drives recovery instead.
        assert sharded.poke_probes() == {"probed": 0, "revived": 0, "waiting": 1}
        clock.advance(5.1)
        report = sharded.poke_probes()
        assert report == {"probed": 1, "revived": 0, "waiting": 0}
        server = LocalServerHandle(store, port=port, name="revived")
        try:
            clock.advance(10.1)
            assert sharded.poke_probes() == {
                "probed": 1,
                "revived": 1,
                "waiting": 0,
            }
            assert remote.healthy is True
        finally:
            server.stop()

    def test_manual_revive_skips_the_backoff_window(self, dead_endpoint_sharded):
        sharded, matrix, clock, store, port = dead_endpoint_sharded
        remote = sharded._remotes[0]
        vectors = np.zeros((2, 8), dtype=np.int64)
        assert np.array_equal(sharded.multiply_batch(vectors), vectors @ matrix)
        assert remote.healthy is False
        server = LocalServerHandle(store, port=port, name="revived")
        try:
            # The window has not passed — but revive() clears it.
            assert not remote.probe_due()
            remote.revive()
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.healthy is True
            assert remote.remote_calls == 1
        finally:
            server.stop()

    def test_unhealthy_inside_window_raises_fast(self, dead_endpoint_sharded):
        sharded, matrix, clock, store, port = dead_endpoint_sharded
        remote = sharded._remotes[0]
        vectors = np.zeros((1, 8), dtype=np.int64)
        sharded.multiply_batch(vectors)
        with pytest.raises(RemoteShardError, match="unhealthy"):
            remote.execute(vectors, "auto")


class TestControllerRestart:
    def test_restart_refuses_a_live_server(self, tmp_path):
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            with pytest.raises(RuntimeError, match="still running"):
                controller.restart_server(0)

    def test_restart_rebinds_the_original_endpoint(self, tmp_path):
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            endpoint = controller.endpoints[0]
            controller.kill_server(0)
            handle = controller.restart_server(0)
            assert handle.endpoint == endpoint
            assert controller.endpoints[0] == endpoint
            stats = controller.fleet_stats()
            assert stats[0].get("name") == "local-0-r"


class TestCircuitBreaker:
    """trip_threshold > 1: isolated blips tolerated, sustained failure trips.

    Every request still gets its two attempts and its local fallback —
    the breaker only decides when the link stops being *tried* at all.
    """

    def _dead_sharded(self, tmp_path, clock, trip_threshold):
        store = tmp_path / "store"
        store.mkdir(exist_ok=True)
        port = _reserve_port()
        matrix = np.random.default_rng(0).integers(-50, 51, size=(8, 6))
        sharded = ShardedMultiplier(
            matrix,
            shards=1,
            cache=CompileCache(directory=store),
            backend="remote",
            endpoints=[("127.0.0.1", port)],
            probe_backoff=BackoffPolicy(
                initial_s=5.0, multiplier=2.0, max_s=40.0, jitter=0.0
            ),
            probe_clock=clock,
            trip_threshold=trip_threshold,
        )
        return sharded, matrix, store, port

    def test_breaker_tolerates_blips_then_trips(self, tmp_path):
        clock = FakeClock()
        sharded, matrix, store, port = self._dead_sharded(tmp_path, clock, 3)
        try:
            remote = sharded._remotes[0]
            vectors = np.zeros((2, 8), dtype=np.int64)
            # Failures 1 and 2: served locally, breaker still closed —
            # the link keeps being tried.
            for expected_streak in (1, 2):
                assert np.array_equal(
                    sharded.multiply_batch(vectors), vectors @ matrix
                )
                assert remote.healthy is True
                assert remote.breaker_state == "closed"
                assert remote.telemetry()["breaker"] == {
                    "state": "closed",
                    "trip_threshold": 3,
                    "failure_streak": expected_streak,
                }
            # Failure 3 trips the breaker: unhealthy, backoff scheduled.
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.healthy is False
            assert remote.breaker_state == "open"
            # Inside the window nothing touches the network; past it the
            # breaker is half-open (the next request doubles as a probe).
            clock.advance(5.1)
            assert remote.breaker_state == "half_open"
        finally:
            sharded.close()

    def test_success_resets_the_streak(self, tmp_path):
        clock = FakeClock()
        sharded, matrix, store, port = self._dead_sharded(tmp_path, clock, 2)
        server = None
        try:
            remote = sharded._remotes[0]
            vectors = np.zeros((2, 8), dtype=np.int64)
            sharded.multiply_batch(vectors)  # blip 1 (streak 1 of 2)
            assert remote.breaker_state == "closed"
            server = LocalServerHandle(store, port=port, name="back")
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.telemetry()["breaker"]["failure_streak"] == 0
            server.stop()
            server = None
            # The streak starts over: one fresh failure does not trip.
            sharded.multiply_batch(vectors)
            assert remote.breaker_state == "closed"
        finally:
            if server is not None:
                server.stop()
            sharded.close()

    def test_half_open_probe_success_closes_the_breaker(self, tmp_path):
        clock = FakeClock()
        sharded, matrix, store, port = self._dead_sharded(tmp_path, clock, 2)
        server = None
        try:
            remote = sharded._remotes[0]
            vectors = np.zeros((2, 8), dtype=np.int64)
            sharded.multiply_batch(vectors)
            sharded.multiply_batch(vectors)
            assert remote.breaker_state == "open"
            server = LocalServerHandle(store, port=port, name="revived")
            clock.advance(5.1)
            assert remote.breaker_state == "half_open"
            # The next request is the probe; success re-closes.
            assert np.array_equal(
                sharded.multiply_batch(vectors), vectors @ matrix
            )
            assert remote.healthy is True
            assert remote.breaker_state == "closed"
            assert remote.telemetry()["breaker"]["failure_streak"] == 0
        finally:
            if server is not None:
                server.stop()
            sharded.close()

    def test_threshold_one_is_the_historical_behavior(self, tmp_path):
        clock = FakeClock()
        sharded, matrix, store, port = self._dead_sharded(tmp_path, clock, 1)
        try:
            remote = sharded._remotes[0]
            vectors = np.zeros((1, 8), dtype=np.int64)
            sharded.multiply_batch(vectors)
            assert remote.healthy is False  # one exhausted request trips
        finally:
            sharded.close()

    def test_invalid_threshold_rejected(self, tmp_path):
        clock = FakeClock()
        with pytest.raises(ValueError, match="trip_threshold"):
            self._dead_sharded(tmp_path, clock, 0)
