"""Shared-secret HELLO auth: challenge/response, stable refusals.

The trust-model satellite: a fleet started with ``auth_secret=`` issues
a fresh HMAC-SHA256 challenge per connection and refuses everything
that cannot answer it — with one stable ``"auth"`` token for every
failure shape (wrong MAC, wrong frame type, missing AUTH), so a probe
learns nothing.  Authenticated fleets then serve traffic, stats, and
deployments exactly as open ones do; servers without a secret never
challenge, keeping the default wire bytes unchanged.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.cluster import ClusterController, FrameType, auth_response
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteFault,
    recv_frame,
    send_frame,
)

SECRET = "correct horse battery staple"


def _matrix(seed=0, shape=(10, 8)):
    return np.random.default_rng(seed).integers(-50, 51, size=shape)


@pytest.fixture()
def auth_fleet(tmp_path):
    with ClusterController(
        tmp_path / "store", auth_secret=SECRET
    ) as controller:
        controller.start_local_fleet(2)
        yield controller


def _handshake_to_challenge(endpoint):
    sock = socket.create_connection(endpoint, timeout=5.0)
    sock.settimeout(5.0)
    send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
    ftype, meta, _ = recv_frame(sock)
    assert ftype is FrameType.HELLO
    return sock, meta["challenge"]


class TestAuthHandshake:
    def test_authenticated_fleet_serves_bit_exact(self, auth_fleet):
        matrix = _matrix()
        vectors = np.random.default_rng(1).integers(-80, 81, size=(6, 10))
        with auth_fleet.remote_service() as service:
            handle = auth_fleet.deploy_fleet(service, matrix)
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            rows = asyncio.run(service.submit_many(handle, vectors))
            assert np.array_equal(rows, vectors @ matrix)
            # Every remote link authenticated (no local fallbacks).
            assert all(r.healthy for r in handle.sharded._remotes)
            assert all(
                r.local_fallbacks == 0 for r in handle.sharded._remotes
            )

    def test_correct_mac_accepted_raw(self, auth_fleet):
        sock, challenge = _handshake_to_challenge(auth_fleet.endpoints[0])
        try:
            send_frame(
                sock, FrameType.AUTH,
                {"mac": auth_response(SECRET, challenge)},
            )
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.OK
            assert meta["authenticated"] is True
            # The authenticated connection serves normally.
            send_frame(sock, FrameType.STATS, {})
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.OK
            assert meta["stats"]["auth_required"] is True
        finally:
            sock.close()

    def test_wrong_mac_gets_the_stable_token(self, auth_fleet):
        sock, challenge = _handshake_to_challenge(auth_fleet.endpoints[0])
        try:
            send_frame(
                sock, FrameType.AUTH,
                {"mac": auth_response("wrong secret", challenge)},
            )
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.ERROR
            assert meta["error"] == "auth"
        finally:
            sock.close()

    def test_skipping_auth_gets_the_same_token(self, auth_fleet):
        sock, _challenge = _handshake_to_challenge(auth_fleet.endpoints[0])
        try:
            send_frame(sock, FrameType.STATS, {})  # no AUTH first
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.ERROR
            assert meta["error"] == "auth"
        finally:
            sock.close()

    def test_malformed_mac_gets_the_same_token(self, auth_fleet):
        sock, _challenge = _handshake_to_challenge(auth_fleet.endpoints[0])
        try:
            send_frame(sock, FrameType.AUTH, {"mac": 12345})
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.ERROR
            assert meta["error"] == "auth"
        finally:
            sock.close()

    def test_challenges_are_unique_per_connection(self, auth_fleet):
        sock_a, challenge_a = _handshake_to_challenge(auth_fleet.endpoints[0])
        sock_b, challenge_b = _handshake_to_challenge(auth_fleet.endpoints[0])
        sock_a.close()
        sock_b.close()
        assert challenge_a != challenge_b  # no replayable MACs

    def test_auth_failures_are_counted(self, auth_fleet):
        sock, challenge = _handshake_to_challenge(auth_fleet.endpoints[0])
        send_frame(sock, FrameType.AUTH, {"mac": "00" * 32})
        recv_frame(sock)
        sock.close()
        stats = auth_fleet.fleet_stats()
        assert stats[0]["auth_failures"] == 1
        assert stats[0]["auth_required"] is True

    def test_secretless_client_fails_fast_with_guidance(self, auth_fleet):
        from repro.cluster.client import _Connection

        host, port = auth_fleet.endpoints[0]
        with pytest.raises(RemoteFault, match="requires a shared secret"):
            _Connection(host, port, timeout_s=5.0)

    def test_open_server_never_challenges(self, tmp_path):
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            sock = socket.create_connection(controller.endpoints[0], 5.0)
            sock.settimeout(5.0)
            try:
                send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
                _, meta, _ = recv_frame(sock)
                assert "challenge" not in meta
                send_frame(sock, FrameType.STATS, {})
                ftype, meta, _ = recv_frame(sock)
                assert ftype is FrameType.OK
                assert meta["stats"]["auth_required"] is False
            finally:
                sock.close()

    def test_malformed_challenge_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed auth challenge"):
            auth_response(SECRET, "not-hex!")
