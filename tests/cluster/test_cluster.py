"""Fleet integration: bit-exactness, faults, failures, and lifecycle.

Every test runs a real loopback fleet — :class:`ShardServer` instances
on background event loops, each resolving kernels from a shared
artifact store by content digest — and drives it through the same
:class:`MatMulService` facade production traffic uses.  The load-bearing
claims:

* a 3-server fleet is **bit-exact** with the monolithic multiplier,
  through both the direct path and the micro-batcher, including
  per-shard fault injection and >62-bit (``"bigint"``-frame) shards;
* warm deploys execute **zero** plan/build/lower/fuse stages anywhere
  in the process (client and servers), by stage counter;
* a server killed mid-stream degrades to **local fallback** — results
  stay exact, the link is marked unhealthy, and a host that comes back
  is promoted to remote serving automatically (manual ``revive()``
  stays as the fast path);
* fault-override schedules survive connection death — a FAULT frame
  acknowledged on a link that then dies is re-synced on the retry
  connection, in every interleaving;
* ``service.close()`` rejects queued requests instead of hanging them
  and closes every shard socket.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.core.stages import STAGES
from repro.cluster import (
    PROTOCOL_VERSION,
    ClusterController,
    FrameType,
    RemoteShard,
    RemoteShardError,
)
from repro.cluster.protocol import encode_frame, recv_frame, send_frame
from repro.hwsim.faults import fault_campaign, inject_stuck_output
from repro.serve import CompileCache, MatMulService


def _matrix(seed=0, shape=(20, 18), sparsity=0.6):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-100, 101, size=shape)
    matrix[rng.random(shape) < sparsity] = 0
    return matrix


def _vectors(seed, batch, rows, width=8):
    lo = -(1 << (width - 1))
    return np.random.default_rng(seed).integers(
        lo, -lo, size=(batch, rows)
    )


@pytest.fixture()
def fleet(tmp_path):
    """A 3-server loopback fleet over a fresh artifact store."""
    with ClusterController(tmp_path / "store") as controller:
        controller.start_local_fleet(3)
        yield controller


class TestFleetBitExactness:
    def test_three_server_fleet_matches_monolith(self, fleet):
        matrix = _matrix()
        vectors = _vectors(1, 9, 20)
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            assert handle.sharded.backend == "remote"
            assert handle.shard_count == 3
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            # Micro-batched path over the same deployment.
            rows = asyncio.run(service.submit_many(handle, vectors))
            assert np.array_equal(rows, vectors @ matrix)
            # Every shard actually went over its socket.
            per_shard = handle.sharded.utilization()["per_shard"]
            assert all(p["remote_calls"] >= 2 for p in per_shard)
            assert all(p["healthy"] for p in per_shard)
            assert all(p["local_fallbacks"] == 0 for p in per_shard)

    def test_more_shards_than_servers_multiplexes(self, fleet):
        matrix = _matrix(2, shape=(12, 10))
        vectors = _vectors(3, 5, 12)
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix, shards=5)
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            endpoints = {
                p["endpoint"]
                for p in handle.sharded.utilization()["per_shard"]
            }
            assert len(endpoints) == 3  # round-robin reuse

    def test_warm_fleet_deploy_is_zero_stage(self, fleet):
        matrix = _matrix(4)
        vectors = _vectors(5, 6, 20)
        with fleet.remote_service() as warmup:
            fleet.deploy_fleet(warmup, matrix)
        before = STAGES.snapshot()
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
        delta = STAGES.delta(before)
        for stage in ("plan", "build", "lower", "fuse"):
            assert delta.get(stage, 0) == 0, (stage, delta)

    def test_wide_shards_travel_as_bigint_frames(self, fleet):
        rng = np.random.default_rng(11)
        matrix = np.hstack(
            [
                rng.integers(-2, 3, size=(40, 2)),
                rng.integers(-(2**20), 2**20, size=(40, 3)),
            ]
        )
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(
                service, matrix, shards=2, input_width=40
            )
            widths = [
                s.fast.kernel.result_width for s in handle.sharded.shards
            ]
            assert max(widths) > 62  # at least one genuinely wide shard
            vectors = rng.integers(-(2**39), 2**39, size=(4, 40))
            out = service.multiply(handle, vectors)
            assert out.dtype == object
            golden = [
                sum(int(vectors[b, r]) * int(matrix[r, j]) for r in range(40))
                for b in range(4)
                for j in range(5)
            ]
            assert [int(x) for x in out.ravel()] == golden


class TestFaultsOverTheNetwork:
    def test_per_shard_injection_matches_local_gates(self, fleet):
        matrix = _matrix(7, shape=(12, 9))
        vectors = _vectors(8, 6, 12)
        with fleet.remote_service() as service:
            # use_cache=False: live netlists to inject into (the remote
            # path persists the fault-free artifacts for the servers).
            handle = fleet.deploy_fleet(service, matrix, use_cache=False)
            golden = service.multiply(handle, vectors)
            assert np.array_equal(golden, vectors @ matrix)
            shard = handle.sharded.shards[1]
            component = shard.circuit.netlist.components[40]
            injection = inject_stuck_output(
                shard.circuit.netlist, component, 1
            )
            try:
                faulty = service.multiply(handle, vectors)
                # The shard's columns match its own local gate engine
                # under the same fault — replayed over a FAULT frame.
                local = shard.fast.multiply_batch(vectors, engine="bitplane")
                assert np.array_equal(
                    faulty[:, shard.start : shard.stop], local
                )
                # Unfaulted shards are untouched.
                other = handle.sharded.shards[0]
                assert np.array_equal(
                    faulty[:, other.start : other.stop],
                    golden[:, other.start : other.stop],
                )
                # Auto-engine resolved to gates while faults are live.
                snap = service.telemetry(handle)
                assert snap["engine"]["effective"] == "bitplane"
            finally:
                injection.revert()
            # Revert propagates (a FAULT clear frame): fused again.
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            snap = service.telemetry(handle)
            assert snap["engine"]["effective"] == "fused:dense"

    def test_fault_campaign_runs_unchanged_over_the_fleet(self, fleet):
        from repro.core.plan import plan_matrix
        from repro.hwsim.builder import build_circuit

        matrix = _matrix(9, shape=(10, 8))
        vectors = _vectors(10, 5, 10)
        circuit = build_circuit(plan_matrix(matrix, input_width=8))
        with fleet.remote_service() as service:
            served = fault_campaign(
                circuit, vectors, max_faults=10, service=service, shards=3
            )
            assert served["served"] is True
            assert served["telemetry"]["shards"]["backend"] == "remote"
        direct = fault_campaign(circuit, vectors, max_faults=10)
        # The fleet sweep reports the same coverage as the direct path.
        assert served["injected"] == direct["injected"]
        assert served["detected"] == direct["detected"]


class TestFailureSemantics:
    def test_killed_server_falls_back_locally_mid_stream(self, fleet):
        matrix = _matrix(12)
        vectors = _vectors(13, 7, 20)
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            fleet.kill_server(0)
            # Still bit-exact: the dead shard is served locally.
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            per_shard = handle.sharded.utilization()["per_shard"]
            assert per_shard[0]["healthy"] is False
            assert per_shard[0]["local_fallbacks"] >= 1
            assert per_shard[1]["healthy"] and per_shard[2]["healthy"]
            # Unhealthy links fail fast: further traffic stays exact and
            # keeps counting fallbacks without re-probing the dead host.
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            assert (
                handle.sharded.utilization()["per_shard"][0]["local_fallbacks"]
                >= 2
            )

    def test_stats_on_a_killed_host_degrades_like_execute(self, fleet):
        """Satellite regression: stats() used to raise raw transport
        errors without dropping the broken connection or updating
        health, so a dead host could wedge fleet telemetry collection
        while execute() had already degraded gracefully."""
        matrix = _matrix(24)
        vectors = _vectors(25, 3, 20)
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            remote = handle.sharded._remotes[0]
            assert remote.stats()["executes"] >= 1
            fleet.kill_server(0)
            # The same RemoteShardError execute() raises — not a raw
            # socket error — and the connection is torn down.
            with pytest.raises(RemoteShardError):
                remote.stats()
            assert remote.healthy is False
            assert remote._conn is None
            # Telemetry collection keeps working (probe state included)
            # and traffic stays exact through the local fallback.
            assert remote.telemetry()["probe"]["consecutive_failures"] >= 1
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )

    def test_fault_schedule_resyncs_when_link_dies_after_fault_ack(
        self, fleet
    ):
        """Satellite regression: a FAULT frame acknowledged on a
        connection that dies before (or after) its EXECUTE must be
        re-synced on the retry connection — the server's override state
        lives and dies with the connection, so skipping the re-send
        would silently serve fault-free results mid-campaign."""
        matrix = _matrix(26, shape=(12, 9))
        vectors = _vectors(27, 5, 12)
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix, use_cache=False)
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )
            shard = handle.sharded.shards[1]
            component = shard.circuit.netlist.components[40]
            injection = inject_stuck_output(
                shard.circuit.netlist, component, 1
            )
            try:
                # Sync the schedule: the FAULT frame is acknowledged on
                # the current connection.
                faulted = service.multiply(handle, vectors)
                golden = shard.fast.multiply_batch(vectors, engine="bitplane")
                assert np.array_equal(
                    faulted[:, shard.start : shard.stop], golden
                )
                remote = handle.sharded._remotes[1]
                assert remote._synced is not None
                # The link dies *between* the FAULT ack and the next
                # EXECUTE: sever the socket under the client.  The next
                # call's first attempt fails in-flight, and the retry
                # lands on a fresh connection whose server-side override
                # state is empty — the schedule must be re-sent.
                remote._conn.sock.close()
                faulted = service.multiply(handle, vectors)
                assert np.array_equal(
                    faulted[:, shard.start : shard.stop], golden
                )
                # The retry succeeded remotely — no silent local
                # fallback, no lingering unhealthy mark.
                assert remote.healthy is True
                assert remote.local_fallbacks == 0
            finally:
                injection.revert()
            assert np.array_equal(
                service.multiply(handle, vectors), vectors @ matrix
            )

    def test_dead_host_rejoins_automatically_without_revive(self, tmp_path):
        """The tentpole acceptance path: kill a loopback server under
        offered load, restart it on the same endpoint, and watch the
        link return to remote serving with *no* revive() call — every
        request in between answered bit-exactly."""
        import time as _time

        from repro.cluster import BackoffPolicy

        matrix = _matrix(28, shape=(10, 8))
        vectors = _vectors(29, 4, 10)
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            with controller.remote_service(
                probe_backoff=BackoffPolicy(
                    initial_s=0.01, multiplier=1.5, max_s=0.05, jitter=0.0
                )
            ) as service:
                handle = controller.deploy_fleet(service, matrix, shards=1)
                remote = handle.sharded._remotes[0]
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                controller.kill_server(0)
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert remote.healthy is False
                controller.restart_server(0)
                # Keep offering load; the link revives through its own
                # traffic once the backoff deadline passes.
                deadline = _time.monotonic() + 10.0
                while not remote.healthy and _time.monotonic() < deadline:
                    assert np.array_equal(
                        service.multiply(handle, vectors), vectors @ matrix
                    )
                    _time.sleep(0.01)
                assert remote.healthy is True
                probe = remote.telemetry()["probe"]
                assert probe["auto_revivals"] >= 1
                assert probe["consecutive_failures"] == 0
                # Remote serving actually resumed.
                calls_before = remote.remote_calls
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert remote.remote_calls > calls_before

    def test_fleet_stats_reports_dead_hosts(self, fleet):
        fleet.kill_server(1)
        stats = fleet.fleet_stats()
        assert len(stats) == 3
        assert "error" in stats[1]
        assert stats[0].get("name") and stats[2].get("name")

    def test_unknown_digest_is_a_clean_error(self, fleet):
        host, port = fleet.endpoints[0]
        shard = RemoteShard(
            host,
            port,
            {
                "matrix_digest": "0" * 64,
                "input_width": 8,
                "scheme": "csd",
                "tree_style": "compact",
                "start": 0,
                "stop": 4,
            },
            timeout_s=5.0,
        )
        # The server answers (no transport failure), refusing the LOAD:
        # at execute time that is the fall-back-locally signal — the
        # store cannot serve this shard until refilled — with the
        # refusal's stable token preserved in the message.
        with pytest.raises(RemoteShardError, match="unknown-kernel"):
            shard.execute(np.zeros((1, 4), dtype=np.int64), "auto")
        assert not shard.healthy
        # Deploy-time warmup keeps the loud behaviour: a misconfigured
        # store should fail the deploy, not silently serve locally.
        shard.revive()
        from repro.cluster import RemoteFault

        with pytest.raises(RemoteFault, match="unknown-kernel"):
            shard.warm()
        shard.close()

    def test_version_mismatch_is_refused_at_handshake(self, fleet):
        host, port = fleet.endpoints[0]
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            sock.settimeout(5.0)
            send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION + 1})
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.ERROR
            assert meta["error"] == "version"
        finally:
            sock.close()

    def test_execute_before_load_is_refused(self, fleet):
        host, port = fleet.endpoints[0]
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            sock.settimeout(5.0)
            send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
            recv_frame(sock)
            sock.sendall(
                encode_frame(
                    FrameType.EXECUTE,
                    {"engine": "auto", "codec": "i64", "shape": [1, 4]},
                    b"\x00" * 32,
                )
            )
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.ERROR
            assert meta["error"] == "not-loaded"
        finally:
            sock.close()

    def test_revive_reprobes_a_recovered_host(self, tmp_path):
        matrix = _matrix(14, shape=(10, 8))
        vectors = _vectors(15, 4, 10)
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            with controller.remote_service() as service:
                handle = controller.deploy_fleet(service, matrix, shards=1)
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                controller.kill_server(0)
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                remote = handle.sharded._remotes[0]
                assert not remote.healthy
                # Host comes back on the *same* port?  Ports are
                # ephemeral here, so model recovery by starting a new
                # server and retargeting the handle, then reviving.
                replacement = controller.start_local_fleet(1)[-1]
                remote.host, remote.port = replacement
                remote.revive()
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert remote.healthy
                assert (
                    handle.sharded.utilization()["per_shard"][0]["remote_calls"]
                    >= 2
                )


class TestServiceClose:
    def test_close_rejects_queued_requests_and_closes_sockets(self, fleet):
        matrix = _matrix(16, shape=(10, 8))

        async def main():
            # A deadline far in the future: submits stay queued until
            # close() — which must reject them, not strand them.
            service = fleet.remote_service(max_delay_s=30.0, max_batch=64)
            handle = fleet.deploy_fleet(service, matrix)
            vec = np.zeros(10, dtype=np.int64)
            tasks = [
                asyncio.create_task(service.submit(handle, vec))
                for _ in range(4)
            ]
            await asyncio.sleep(0.05)
            assert handle.batcher.pending == 4
            service.close()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            assert all("service closed" in str(r) for r in results)
            return handle

        handle = asyncio.run(asyncio.wait_for(main(), timeout=30.0))
        # Sockets are gone: the remote handles were closed.
        assert handle.sharded._remotes == []

    def test_close_is_idempotent_and_keeps_local_backends_working(self):
        matrix = _matrix(17, shape=(8, 6))
        service = MatMulService()
        handle = service.deploy(matrix, shards=2)
        vectors = _vectors(18, 3, 8)
        assert np.array_equal(
            service.multiply(handle, vectors), vectors @ matrix
        )
        service.close()
        service.close()


class TestStoreSemantics:
    def test_servers_share_one_store_and_count_loads(self, fleet):
        matrix = _matrix(19)
        with fleet.remote_service() as service:
            fleet.deploy_fleet(service, matrix)
            stats = fleet.fleet_stats()
            assert [s["loads"] for s in stats] == [1, 1, 1]
            assert all(s["store"]["persistent"] for s in stats)

    def test_memory_only_cache_with_explicit_store_still_feeds_fleet(
        self, fleet
    ):
        """A cache that persists nowhere (or elsewhere) must not starve
        the servers: the remote deploy persists each shard's artifacts
        into the fleet store itself."""
        from repro.serve.shards import ShardedMultiplier

        matrix = _matrix(22, shape=(10, 8))
        vectors = _vectors(23, 4, 10)
        with ShardedMultiplier(
            matrix,
            shards=2,
            cache=CompileCache(),  # memory-only: persists nothing
            backend="remote",
            endpoints=fleet.endpoints,
            store=str(fleet.store),
        ) as sharded:
            out = sharded.multiply_batch(vectors)
            assert np.array_equal(out, vectors @ matrix)
            per_shard = sharded.utilization()["per_shard"]
            assert all(p["remote_calls"] == 1 for p in per_shard)

    def test_deploy_without_endpoints_is_a_clear_error(self, tmp_path):
        from repro.serve.shards import ShardedMultiplier

        with pytest.raises(ValueError, match="endpoints"):
            ShardedMultiplier(_matrix(20), shards=2, backend="remote")

    def test_deploy_without_store_is_a_clear_error(self, tmp_path):
        from repro.serve.shards import ShardedMultiplier

        with pytest.raises(ValueError, match="store"):
            ShardedMultiplier(
                _matrix(21),
                shards=2,
                backend="remote",
                endpoints=[("127.0.0.1", 1)],
            )

    def test_remote_shard_error_type_is_exported(self):
        assert issubclass(RemoteShardError, RuntimeError)
