"""Chaos proxy: injected network faults degrade gracefully, bit-exactly.

Each test wraps a loopback fleet in :class:`ChaosProxy` instances and
drives real traffic through the injected fault.  The claims:

* a clean proxy is invisible — results match the monolith exactly and
  the bytes demonstrably flowed through the proxy;
* corrupt / blackhole / cut links never corrupt *results* — the client
  detects the fault (decode error, timeout, refused connection) and
  serves the shard locally, still bit-exact;
* faults are runtime-mutable: the same proxy passes traffic, breaks,
  and (for recoverable faults) passes traffic again.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.cluster import ChaosProxy, ClusterController, wrap_fleet
from repro.cluster.chaos import _CHUNK


def _matrix(seed=0, shape=(12, 10), sparsity=0.5):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-60, 61, size=shape)
    matrix[rng.random(shape) < sparsity] = 0
    return matrix


def _vectors(seed, batch, rows):
    return np.random.default_rng(seed).integers(-100, 101, size=(batch, rows))


@pytest.fixture()
def fleet(tmp_path):
    with ClusterController(
        tmp_path / "store", request_timeout_s=1.0
    ) as controller:
        controller.start_local_fleet(2)
        yield controller


def _deploy_through(proxied, fleet, matrix, request_timeout_s=None):
    timeout = (
        fleet.request_timeout_s if request_timeout_s is None else request_timeout_s
    )
    service = fleet.remote_service()
    handle = service.deploy(
        matrix,
        shards=len(proxied),
        backend="remote",
        endpoints=proxied,
        store=str(fleet.store),
        request_timeout_s=timeout,
    )
    return service, handle


class TestPassthrough:
    def test_clean_proxy_is_bit_exact_and_carries_the_bytes(self, fleet):
        matrix = _matrix()
        vectors = _vectors(1, 7, 12)
        proxies, proxied = wrap_fleet(fleet.endpoints)
        try:
            service, handle = _deploy_through(proxied, fleet, matrix)
            with service:
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                rows = asyncio.run(service.submit_many(handle, vectors))
                assert np.array_equal(rows, vectors @ matrix)
            for proxy in proxies:
                stats = proxy.stats()
                assert stats["connections"] >= 1
                assert stats["bytes_forwarded"] > 0
                assert stats["chunks_corrupted"] == 0
        finally:
            for proxy in proxies:
                proxy.stop()

    def test_delay_inflates_rtt_but_stays_exact(self, fleet):
        matrix = _matrix(2)
        vectors = _vectors(2, 4, 12)
        proxies, proxied = wrap_fleet(fleet.endpoints, delay_s=0.01)
        try:
            service, handle = _deploy_through(proxied, fleet, matrix)
            with service:
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                remote = handle.sharded._remotes[0]
                assert remote.healthy
                assert remote.rtt.percentiles(50.0)["p50"] >= 0.01
        finally:
            for proxy in proxies:
                proxy.stop()

    def test_slow_drip_reassembles_frames(self, fleet):
        matrix = _matrix(3)
        vectors = _vectors(3, 3, 12)
        proxies, proxied = wrap_fleet(
            fleet.endpoints, drip_bytes=64, drip_delay_s=0.0005
        )
        try:
            service, handle = _deploy_through(proxied, fleet, matrix)
            with service:
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert all(r.healthy for r in handle.sharded._remotes)
        finally:
            for proxy in proxies:
                proxy.stop()


class TestFaults:
    def test_corrupt_frames_fall_back_bit_exact(self, fleet):
        matrix = _matrix(4)
        vectors = _vectors(4, 5, 12)
        proxies, proxied = wrap_fleet(fleet.endpoints, seed=11)
        try:
            service, handle = _deploy_through(proxied, fleet, matrix)
            with service:
                # Healthy first, to prove the corruption is what breaks it.
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                for proxy in proxies:
                    proxy.corrupt_rate = 1.0
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert any(
                    r.local_fallbacks > 0 for r in handle.sharded._remotes
                )
                assert any(
                    p.stats()["chunks_corrupted"] > 0 for p in proxies
                )
        finally:
            for proxy in proxies:
                proxy.stop()

    def test_blackhole_times_out_to_local_fallback(self, fleet):
        matrix = _matrix(5)
        vectors = _vectors(5, 3, 12)
        proxies, proxied = wrap_fleet(fleet.endpoints)
        try:
            service, handle = _deploy_through(
                proxied, fleet, matrix, request_timeout_s=0.3
            )
            with service:
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                proxies[0].blackhole = True
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert not handle.sharded._remotes[0].healthy
                assert handle.sharded._remotes[1].healthy
                assert proxies[0].stats()["chunks_blackholed"] > 0
        finally:
            for proxy in proxies:
                proxy.stop()

    def test_cut_link_refuses_and_falls_back(self, fleet):
        matrix = _matrix(6)
        vectors = _vectors(6, 3, 12)
        proxies, proxied = wrap_fleet(fleet.endpoints)
        try:
            service, handle = _deploy_through(proxied, fleet, matrix)
            with service:
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                proxies[0].cut()
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert not handle.sharded._remotes[0].healthy
                assert proxies[0].alive  # counters survive the cut
        finally:
            for proxy in proxies:
                proxy.stop()

    def test_drop_rate_loses_chunks(self, fleet):
        matrix = _matrix(7)
        vectors = _vectors(7, 3, 12)
        proxies, proxied = wrap_fleet(fleet.endpoints, drop_rate=1.0, seed=3)
        try:
            service, handle = _deploy_through(
                proxied, fleet, matrix, request_timeout_s=0.3
            )
            with service:
                assert np.array_equal(
                    service.multiply(handle, vectors), vectors @ matrix
                )
                assert any(
                    p.stats()["chunks_dropped"] > 0 for p in proxies
                )
        finally:
            for proxy in proxies:
                proxy.stop()


class TestProxyLifecycle:
    def test_upstream_refused_aborts_the_client(self, tmp_path):
        # Reserve an unbound port: the proxy accepts, upstream refuses.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with ChaosProxy(("127.0.0.1", dead_port)) as proxy:
            client = socket.create_connection(proxy.endpoint, timeout=2.0)
            client.settimeout(2.0)
            try:
                # The proxy aborts once the upstream connect fails: the
                # client sees EOF/reset, never a hang.
                client.sendall(b"hello?")
                with pytest.raises((ConnectionError, OSError)) as info:
                    while client.recv(_CHUNK):
                        pass
                    raise ConnectionResetError("clean EOF")  # also fine
                assert info.type is not socket.timeout
            finally:
                client.close()
            assert proxy.stats()["upstream_failures"] == 1

    def test_stop_is_idempotent(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        proxy = ChaosProxy(("127.0.0.1", port))
        proxy.stop()
        proxy.stop()
        assert not proxy.alive
