"""Wire-protocol unit tests: framing, codecs, and malformed-peer handling."""

import socket
import threading

import numpy as np
import pytest

from repro.core.serialize import array_from_payload, array_to_payload
from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameType,
    ProtocolError,
    batch_frame,
    decode_overrides,
    decode_payload,
    encode_frame,
    encode_overrides,
    recv_frame,
    result_frame,
    send_frame,
)


class TestFraming:
    def test_round_trip_meta_and_blob(self):
        frame = encode_frame(FrameType.LOAD, {"a": 1, "b": "x"}, b"\x00\x01raw")
        ftype, meta, blob = decode_payload(frame[4:])
        assert ftype is FrameType.LOAD
        assert meta == {"a": 1, "b": "x"}
        assert blob == b"\x00\x01raw"

    def test_round_trip_over_a_real_socket(self):
        server, client = socket.socketpair()
        try:
            payloads = [
                (FrameType.HELLO, {"version": PROTOCOL_VERSION}, b""),
                (FrameType.EXECUTE, {"engine": "auto"}, b"\xff" * 1000),
            ]

            def _send():
                for ftype, meta, blob in payloads:
                    send_frame(client, ftype, meta, blob)

            thread = threading.Thread(target=_send)
            thread.start()
            for expected in payloads:
                assert recv_frame(server) == expected
            thread.join()
        finally:
            server.close()
            client.close()

    def test_unknown_frame_type_rejected(self):
        frame = bytearray(encode_frame(FrameType.OK, {}))
        frame[4] = 200  # not a FrameType
        with pytest.raises(ProtocolError, match="frame type"):
            decode_payload(bytes(frame[4:]))

    def test_non_json_meta_rejected(self):
        frame = bytearray(encode_frame(FrameType.OK, {"k": 1}))
        frame[9] = 0xFF  # corrupt the JSON body
        with pytest.raises(ProtocolError):
            decode_payload(bytes(frame[4:]))

    def test_truncated_payload_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_payload(b"\x01")

    def test_oversized_frame_refused_at_encode(self):
        class Huge:
            def __len__(self):
                return MAX_FRAME_BYTES + 1

            def __bytes__(self):  # pragma: no cover - never reached
                raise AssertionError

        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(FrameType.EXECUTE, {}, Huge())

    def test_peer_announcing_oversized_frame_dropped(self):
        server, client = socket.socketpair()
        try:
            client.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="byte"):
                recv_frame(server)
        finally:
            server.close()
            client.close()


class TestArrayPayloads:
    def test_i64_round_trip(self):
        batch = np.arange(12, dtype=np.int64).reshape(3, 4) - 6
        meta, blob = array_to_payload(batch)
        assert meta["codec"] == "i64"
        out = array_from_payload(meta, blob)
        assert out.dtype == np.int64
        assert np.array_equal(out, batch)

    def test_bigint_round_trip_for_exact_big_integers(self):
        wide = np.empty((2, 2), dtype=object)
        wide[:] = [[1 << 80, -(1 << 90)], [3, -(1 << 100) + 7]]
        meta, blob = array_to_payload(wide)
        assert meta["codec"] == "bigint"
        # Fixed-width limbs: widest element (ceil(100+1 bits / 8) = 13
        # bytes) sets the itemsize, blob is exactly count * itemsize.
        assert meta["itemsize"] == 13
        assert len(blob) == 4 * 13
        out = array_from_payload(meta, blob)
        assert out.dtype == object
        assert [int(x) for x in out.ravel()] == [int(x) for x in wide.ravel()]

    def test_bigint_exact_boundary_values_round_trip(self):
        # -2**k fits in k+1 signed bits; 2**k needs k+2.  Hit both edges.
        wide = np.empty((1, 4), dtype=object)
        wide[:] = [[-(1 << 127), (1 << 127) - 1, 0, -1]]
        meta, blob = array_to_payload(wide)
        out = array_from_payload(meta, blob)
        assert [int(x) for x in out.ravel()] == [int(x) for x in wide.ravel()]

    def test_bigint_blob_length_mismatch_rejected(self):
        wide = np.empty((1, 2), dtype=object)
        wide[:] = [[1 << 70, -(1 << 70)]]
        meta, blob = array_to_payload(wide)
        with pytest.raises(ValueError, match="bytes"):
            array_from_payload(meta, blob[:-1])

    def test_bigint_absurd_itemsize_rejected_before_decode(self):
        meta = {"codec": "bigint", "shape": [1, 1], "itemsize": (1 << 16) + 1}
        with pytest.raises(ValueError, match="itemsize"):
            array_from_payload(meta, b"\x00" * ((1 << 16) + 1))

    def test_pickle_codec_is_fully_retired(self):
        # The v1 codec's decode-only shim rode exactly one release; with
        # protocol v3 a pickle frame is rejected like any other unknown
        # codec — nothing executable can ride a frame, even by claim.
        import pickle

        values = [1 << 80, -(1 << 90), 3, 7]
        meta = {"codec": "pickle", "shape": [2, 2]}
        with pytest.raises(ValueError, match="codec"):
            array_from_payload(meta, pickle.dumps(values))

    def test_pickle_not_listed_in_known_codecs(self):
        from repro.core.serialize import ARRAY_CODECS

        assert "pickle" not in ARRAY_CODECS
        assert ARRAY_CODECS == ("i64", "bigint")

    def test_zero_row_batch(self):
        meta, blob = array_to_payload(np.zeros((0, 7), dtype=np.int64))
        out = array_from_payload(meta, blob)
        assert out.shape == (0, 7)

    def test_length_mismatch_rejected(self):
        meta, blob = array_to_payload(np.ones((2, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="bytes"):
            array_from_payload(meta, blob[:-8])

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            array_from_payload({"codec": "msgpack", "shape": [1, 1]}, b"")

    def test_non_2d_rejected_at_encode(self):
        with pytest.raises(ValueError, match="2-D"):
            array_to_payload(np.zeros(3, dtype=np.int64))

    def test_batch_and_result_frames_round_trip(self):
        batch = np.arange(8, dtype=np.int64).reshape(2, 4)
        ftype, meta, blob = decode_payload(batch_frame(batch, "fused")[4:])
        assert ftype is FrameType.EXECUTE and meta["engine"] == "fused"
        assert np.array_equal(array_from_payload(meta, blob), batch)
        ftype, meta, blob = decode_payload(
            result_frame(batch * 2, "bitplane", 0.25)[4:]
        )
        assert ftype is FrameType.RESULT
        assert meta["engine"] == "bitplane" and meta["busy_s"] == 0.25
        assert np.array_equal(array_from_payload(meta, blob), batch * 2)


class TestOverrideCodec:
    def test_round_trip(self):
        overrides = (
            [(3, 1), (17, 0)],
            {"add": [(0, 1)], "sub": [], "neg": [(2, 0)]},
        )
        assert decode_overrides(encode_overrides(overrides)) == overrides

    def test_empty_round_trip(self):
        empty = ([], {"add": [], "sub": [], "neg": []})
        assert decode_overrides(encode_overrides(empty)) == empty

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError, match="override"):
            decode_overrides({"stuck": "nope"})
