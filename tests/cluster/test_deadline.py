"""Deadline propagation over the wire: servers skip abandoned work.

The EXECUTE frame's ``deadline_s`` is the batch's *remaining* budget;
the server restarts the countdown at frame receipt and re-checks on the
worker thread — the executor queue is exactly where budgets die under
load.  An exhausted budget is answered with the stable ``"expired"``
token, which the client maps to :class:`DeadlineExceeded` (not a link
failure: falling back locally would just perform the abandoned work
more slowly).
"""

import asyncio

import numpy as np
import pytest

from repro.cluster import ClusterController
from repro.serve.admission import DeadlineExceeded


def _matrix(seed=0, shape=(10, 8)):
    return np.random.default_rng(seed).integers(-50, 51, size=shape)


@pytest.fixture()
def fleet(tmp_path):
    with ClusterController(tmp_path / "store") as controller:
        controller.start_local_fleet(1)
        yield controller


class TestWireDeadlines:
    def test_exhausted_budget_is_skipped_with_the_stable_token(self, fleet):
        matrix = _matrix()
        vectors = np.random.default_rng(1).integers(-80, 81, size=(4, 10))
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            remote = handle.sharded._remotes[0]
            # Warm path first: generous budgets execute remotely.
            out, _, _, _ = remote.execute(vectors, "auto", deadline_s=30.0)
            assert np.array_equal(out, vectors @ matrix)
            # A zero budget is exhausted by the time the worker runs it.
            with pytest.raises(DeadlineExceeded):
                remote.execute(vectors, "auto", deadline_s=0.0)
            stats = fleet.fleet_stats()
            assert stats[0]["expired_skips"] == 1
            # Crucially: the refusal is NOT a link failure.  The breaker
            # did not move and the next request serves remotely.
            assert remote.healthy
            assert remote.breaker_state == "closed"
            out, _, _, _ = remote.execute(vectors, "auto", deadline_s=30.0)
            assert np.array_equal(out, vectors @ matrix)

    def test_undeadlined_execute_wire_bytes_unchanged(self, fleet):
        matrix = _matrix(2)
        vectors = np.random.default_rng(2).integers(-80, 81, size=(3, 10))
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            remote = handle.sharded._remotes[0]
            out, _, _, _ = remote.execute(vectors, "auto")
            assert np.array_equal(out, vectors @ matrix)
            assert fleet.fleet_stats()[0]["expired_skips"] == 0

    def test_service_deadline_threads_to_the_wire(self, fleet):
        """submit(deadline_s=...) with a healthy budget: served remotely
        and bit-exactly (the budget rides the frame but never bites)."""
        matrix = _matrix(3)
        vectors = np.random.default_rng(3).integers(-80, 81, size=(5, 10))
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            rows = asyncio.run(
                service.submit_many(handle, vectors, deadline_s=30.0)
            )
            assert np.array_equal(rows, vectors @ matrix)
            remote = handle.sharded._remotes[0]
            assert remote.remote_calls >= 1
            assert remote.local_fallbacks == 0
            assert handle.telemetry.snapshot()["admission"]["expired"] == 0

    def test_malformed_deadline_meta_is_refused(self, fleet):
        import socket
        import zlib

        from repro.cluster.protocol import (
            PROTOCOL_VERSION,
            FrameType,
            encode_frame,
            recv_frame,
            send_frame,
        )
        from repro.core.serialize import array_to_payload

        matrix = _matrix(4)
        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, matrix)
            key_meta = handle.sharded._remotes[0].key_meta
            sock = socket.create_connection(fleet.endpoints[0], timeout=5.0)
            sock.settimeout(5.0)
            try:
                send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
                recv_frame(sock)
                send_frame(sock, FrameType.LOAD, key_meta)
                ftype, _, _ = recv_frame(sock)
                assert ftype is FrameType.OK
                vectors = np.ones((1, matrix.shape[0]), dtype=np.int64)
                meta, blob = array_to_payload(vectors)
                meta["engine"] = "auto"
                meta["crc32"] = zlib.crc32(blob)
                meta["deadline_s"] = "soon"
                sock.sendall(encode_frame(FrameType.EXECUTE, meta, blob))
                ftype, meta, _ = recv_frame(sock)
                assert ftype is FrameType.ERROR
                assert meta["error"] == "protocol"
                assert "deadline_s" in meta["message"]
            finally:
                sock.close()
