"""Protocol robustness: malformed frames get stable errors, never hangs.

Two layers of fuzzing, both fully deterministic (seeded RNG):

* **decoder fuzz** — thousands of truncated / bit-flipped / type-confused
  payloads through :func:`decode_payload` and :func:`frame_array`; the
  only acceptable outcomes are a well-formed decode or
  :class:`ProtocolError`.  No other exception type, ever — transport
  code maps exactly one failure type.
* **live-server fuzz** — raw sockets against a real :class:`ShardServer`
  sending garbage, torn frames, hostile length prefixes, and
  out-of-order frame types.  Every case must end in a stable error
  token or a clean disconnect within the socket timeout: a malformed
  peer can never wedge a connection handler.
"""

import socket

import numpy as np
import pytest

from repro.cluster import ClusterController, FrameType, MAX_FRAME_BYTES
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    batch_frame,
    decode_payload,
    encode_frame,
    frame_array,
    recv_frame,
    send_frame,
)

_LEN_PREFIX = 4  # uint32 length precedes every payload


def _payload(frame: bytes) -> bytes:
    """Strip the wire length prefix: decode_payload's input."""
    return frame[_LEN_PREFIX:]


def _valid_frames():
    batch = np.arange(24, dtype=np.int64).reshape(4, 6) - 7
    return [
        encode_frame(FrameType.HELLO, {"version": PROTOCOL_VERSION}),
        encode_frame(FrameType.STATS, {}),
        encode_frame(FrameType.OK, {"answer": 42}, b"tail bytes"),
        batch_frame(batch, "auto"),
        batch_frame(batch, "fused", trace={"trace_id": "t", "span_id": "s"},
                    deadline_s=0.25),
    ]


class TestDecoderFuzz:
    def test_truncations_never_raise_anything_but_protocol_error(self):
        for frame in _valid_frames():
            payload = _payload(frame)
            for cut in range(len(payload)):
                try:
                    decode_payload(payload[:cut])
                except ProtocolError:
                    pass

    def test_random_bit_flips_decode_or_protocol_error(self):
        rng = np.random.default_rng(1234)
        frames = _valid_frames()
        for _ in range(400):
            payload = bytearray(_payload(frames[rng.integers(len(frames))]))
            for _ in range(int(rng.integers(1, 4))):
                payload[rng.integers(len(payload))] ^= 1 << rng.integers(8)
            try:
                ftype, meta, blob = decode_payload(bytes(payload))
            except ProtocolError:
                continue
            # A parse that survived must still be type-safe to consume.
            assert isinstance(meta, dict)
            if ftype in (FrameType.EXECUTE, FrameType.RESULT):
                try:
                    frame_array(meta, blob)
                except ProtocolError:
                    pass

    def test_blob_bit_flip_is_caught_by_the_crc(self):
        # The CRC backstop: a flip in the *array bytes* — past every
        # structural check — must still fail loudly, not compute.
        batch = np.arange(64, dtype=np.int64).reshape(8, 8)
        payload = bytearray(_payload(batch_frame(batch, "auto")))
        ftype, meta, blob = decode_payload(bytes(payload))
        flipped = bytearray(blob)
        flipped[5] ^= 0x10
        with pytest.raises(ProtocolError, match="CRC32"):
            frame_array(meta, bytes(flipped))
        # And the pristine blob still decodes exactly.
        assert np.array_equal(frame_array(meta, blob), batch)

    def test_type_confusion_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_payload(b"\xff" + b"\x00\x00\x00\x02" + b"{}")
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            decode_payload(b"\x02" + b"\x00\x00\x00\x04" + b"[42]")
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_payload(b"\x02" + b"\x00\x00\x00\x04" + b"\xff\xfe\x00\x01")
        with pytest.raises(ProtocolError, match="past the payload"):
            decode_payload(b"\x02" + b"\x00\x00\xff\xff" + b"{}")


@pytest.fixture()
def server(tmp_path):
    with ClusterController(tmp_path / "store") as controller:
        controller.start_local_fleet(1)
        yield controller.endpoints[0]


def _connect(endpoint, timeout=5.0):
    sock = socket.create_connection(endpoint, timeout=timeout)
    sock.settimeout(timeout)
    return sock


def _expect_error_or_disconnect(sock, token=None):
    """The server must answer an ERROR (optionally a specific token) or
    close cleanly — within the socket timeout, which is the no-hang
    guarantee."""
    try:
        ftype, meta, _ = recv_frame(sock)
    except (ConnectionError, EOFError, ProtocolError):
        return None
    assert ftype is FrameType.ERROR
    if token is not None:
        assert meta.get("error") == token
    return meta


class TestLiveServerFuzz:
    def test_garbage_bytes_get_a_clean_close(self, server):
        sock = _connect(server)
        try:
            sock.sendall(b"\x00" * 3)  # torn length prefix
            sock.shutdown(socket.SHUT_WR)
            assert sock.recv(4096) == b""  # server closed, no reply needed
        finally:
            sock.close()

    def test_hostile_length_prefix_is_refused(self, server):
        sock = _connect(server)
        try:
            hello = encode_frame(FrameType.HELLO, {"version": PROTOCOL_VERSION})
            sock.sendall(hello)
            recv_frame(sock)  # server HELLO
            sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            _expect_error_or_disconnect(sock, token="protocol")
        finally:
            sock.close()

    def test_announced_length_never_sent_disconnects_not_hangs(self, server):
        sock = _connect(server, timeout=5.0)
        try:
            hello = encode_frame(FrameType.HELLO, {"version": PROTOCOL_VERSION})
            sock.sendall(hello)
            recv_frame(sock)
            # Announce 1 KiB, send 3 bytes, walk away: the server must
            # notice at our close and drop the connection, not wait on
            # bytes that never come after the peer is gone.
            sock.sendall((1024).to_bytes(4, "big") + b"abc")
            sock.shutdown(socket.SHUT_WR)
            assert sock.recv(4096) == b""
        finally:
            sock.close()

    def test_execute_before_hello_is_refused(self, server):
        sock = _connect(server)
        try:
            batch = np.ones((2, 4), dtype=np.int64)
            sock.sendall(batch_frame(batch, "auto"))
            _expect_error_or_disconnect(sock, token="version")
        finally:
            sock.close()

    def test_wrong_version_gets_the_stable_token(self, server):
        sock = _connect(server)
        try:
            send_frame(sock, FrameType.HELLO, {"version": 999})
            _expect_error_or_disconnect(sock, token="version")
        finally:
            sock.close()

    def test_corrupt_frame_after_handshake_gets_protocol_token(self, server):
        sock = _connect(server)
        try:
            send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
            recv_frame(sock)
            # A plausible length with a garbage body.
            sock.sendall((16).to_bytes(4, "big") + b"\xde\xad" * 8)
            _expect_error_or_disconnect(sock, token="protocol")
        finally:
            sock.close()

    def test_execute_without_load_is_a_stable_refusal(self, server):
        sock = _connect(server)
        try:
            send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
            recv_frame(sock)
            batch = np.ones((2, 4), dtype=np.int64)
            sock.sendall(batch_frame(batch, "auto"))
            meta = _expect_error_or_disconnect(sock)
            assert meta is not None and meta["error"] == "not-loaded"
        finally:
            sock.close()

    def test_fuzzed_streams_never_wedge_the_server(self, server):
        """Seeded random garbage over many fresh connections; after all
        of them the server must still answer a well-formed STATS."""
        rng = np.random.default_rng(99)
        for _ in range(25):
            sock = _connect(server, timeout=2.0)
            try:
                blob = rng.bytes(int(rng.integers(1, 200)))
                sock.sendall(blob)
                try:
                    sock.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                try:
                    while sock.recv(4096):
                        pass
                except (ConnectionError, OSError):
                    pass
            finally:
                sock.close()
        sock = _connect(server)
        try:
            send_frame(sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
            recv_frame(sock)
            send_frame(sock, FrameType.STATS, {})
            ftype, meta, _ = recv_frame(sock)
            assert ftype is FrameType.OK
            assert meta["stats"]["connections"] >= 26
        finally:
            sock.close()
