"""Tests for sparsity metrics."""

import numpy as np
import pytest

from repro.core.sparsity import (
    bit_sparsity,
    element_sparsity,
    element_to_bit_sparsity,
    nnz,
    total_ones,
)


class TestElementSparsity:
    def test_all_zero(self):
        assert element_sparsity(np.zeros((4, 4))) == 1.0

    def test_no_zero(self):
        assert element_sparsity(np.ones((4, 4))) == 0.0

    def test_three_quarters(self):
        matrix = np.array([[0, 0], [0, 5]])
        assert element_sparsity(matrix) == 0.75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            element_sparsity(np.zeros((0, 0)))

    def test_nnz(self):
        assert nnz(np.array([[0, 1], [2, 0]])) == 2


class TestBitSparsity:
    def test_all_bits_set(self):
        matrix = np.full((3, 3), 255)
        assert bit_sparsity(matrix, 8) == 0.0

    def test_all_bits_clear(self):
        assert bit_sparsity(np.zeros((3, 3), dtype=np.int64), 8) == 1.0

    def test_half_bits(self):
        # 0b1010 = half the bits of width 4.
        matrix = np.full((2, 2), 0b1010)
        assert bit_sparsity(matrix, 4) == 0.5

    def test_superset_of_element_sparsity(self, rng):
        """A zero element contributes `width` zero bits, so bit sparsity is
        always >= element sparsity for any non-negative matrix."""
        matrix = rng.integers(0, 256, size=(16, 16))
        matrix[rng.random((16, 16)) < 0.5] = 0
        assert bit_sparsity(matrix, 8) >= element_sparsity(matrix)

    def test_element_to_bit_sparsity_alias(self, rng):
        matrix = rng.integers(0, 256, size=(8, 8))
        assert element_to_bit_sparsity(matrix, 8) == bit_sparsity(matrix, 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bit_sparsity(np.zeros((0, 2)), 8)


class TestTotalOnes:
    def test_counts_all_set_bits(self):
        assert total_ones(np.array([[7, 8], [0, 255]])) == 3 + 1 + 0 + 8

    def test_relation_to_bit_sparsity(self, rng):
        matrix = rng.integers(0, 256, size=(10, 10))
        ones = total_ones(matrix, 8)
        assert ones == round((1.0 - bit_sparsity(matrix, 8)) * matrix.size * 8)
