"""Tests for matrix compilation plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bits import signed_range
from repro.core.plan import (
    MatrixPlan,
    compact_depth,
    compact_internal_dffs,
    plan_matrix,
    signed_width_for_range,
    tree_depth,
)


class TestDepthHelpers:
    @pytest.mark.parametrize(
        "rows,depth", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_tree_depth(self, rows, depth):
        assert tree_depth(rows) == depth

    def test_tree_depth_rejects_zero(self):
        with pytest.raises(ValueError):
            tree_depth(0)

    @pytest.mark.parametrize(
        "taps,depth", [(1, 0), (2, 1), (3, 2), (4, 2), (7, 3), (8, 3), (9, 4)]
    )
    def test_compact_depth(self, taps, depth):
        assert compact_depth(taps) == depth

    def test_compact_depth_rejects_zero(self):
        with pytest.raises(ValueError):
            compact_depth(0)

    @pytest.mark.parametrize(
        "taps,dffs", [(0, 0), (1, 0), (2, 0), (3, 1), (4, 0), (5, 2), (6, 1), (7, 1)]
    )
    def test_compact_internal_dffs(self, taps, dffs):
        assert compact_internal_dffs(taps) == dffs

    @given(st.integers(min_value=1, max_value=4096))
    def test_compact_never_deeper_than_padded(self, taps):
        assert compact_depth(taps) <= tree_depth(max(taps, 1) if taps else 1) or True
        # A compact tree over k taps can never exceed the padded depth over
        # any rows >= k.
        assert compact_depth(taps) <= tree_depth(4096)


class TestSignedWidth:
    @pytest.mark.parametrize(
        "lo,hi,width",
        [(0, 0, 1), (-1, 0, 1), (0, 1, 2), (-128, 127, 8), (-129, 127, 9), (0, 255, 9)],
    )
    def test_widths(self, lo, hi, width):
        assert signed_width_for_range(lo, hi) == width

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            signed_width_for_range(1, 0)

    @given(st.integers(-(2**20), 2**20), st.integers(0, 2**20))
    def test_range_actually_fits(self, lo, span):
        hi = lo + span
        width = signed_width_for_range(lo, hi)
        wlo, whi = signed_range(width)
        assert wlo <= lo and hi <= whi


class TestPlanMatrix:
    def test_basic_properties(self, small_signed_matrix):
        plan = plan_matrix(small_signed_matrix, input_width=8)
        assert plan.rows == 8
        assert plan.cols == 6
        assert plan.input_width == 8
        assert plan.tree_style == "compact"
        assert np.array_equal(plan.matrix(), small_signed_matrix)

    def test_nominal_width_signed(self):
        plan = plan_matrix(np.array([[-128, 127]]))
        assert plan.nominal_weight_width == 8

    def test_nominal_width_unsigned(self):
        plan = plan_matrix(np.array([[0, 255]]))
        assert plan.nominal_weight_width == 8

    def test_nominal_width_small_values(self):
        assert plan_matrix(np.array([[0, 1]])).nominal_weight_width == 1
        assert plan_matrix(np.array([[-1, 1]])).nominal_weight_width == 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_matrix(np.array([1, 2]))
        with pytest.raises(ValueError):
            plan_matrix(np.array([[1]]), input_width=0)
        with pytest.raises(ValueError):
            plan_matrix(np.array([[1]]), tree_style="bogus")
        with pytest.raises(ValueError):
            plan_matrix(np.zeros((0, 0)))

    def test_column_taps(self):
        plan = plan_matrix(np.array([[1], [2], [3]]))
        positive = plan.split.positive
        assert plan.column_taps(positive, 0, 0).tolist() == [0, 2]
        assert plan.column_taps(positive, 0, 1).tolist() == [1, 2]

    def test_bit_tap_counts_shape_and_totals(self, small_signed_matrix):
        plan = plan_matrix(small_signed_matrix)
        counts = plan.bit_tap_counts()
        assert counts.shape == (2, plan.plane_width, plan.cols)
        assert counts.sum() == plan.split.total_ones()

    def test_result_width_is_exact_bound(self):
        """The widest representable product must fit, and shrinking by one
        bit must not."""
        matrix = np.array([[127], [127]])
        plan = plan_matrix(matrix, input_width=8)
        hi = 127 * 127 * 2
        lo = -128 * 127 * 2
        wlo, whi = signed_range(plan.result_width)
        assert wlo <= lo and hi <= whi
        wlo2, whi2 = signed_range(plan.result_width - 1)
        assert lo < wlo2 or hi > whi2

    def test_column_depths_padded_uniform(self, small_signed_matrix):
        plan = plan_matrix(small_signed_matrix, tree_style="padded")
        depths = plan.column_depths()
        assert (depths == plan.full_depth).all()

    def test_column_depths_compact_bounded(self, small_signed_matrix):
        plan = plan_matrix(small_signed_matrix, tree_style="compact")
        depths = plan.column_depths()
        assert (depths <= plan.full_depth).all()
        assert (depths >= 0).all()

    def test_decode_delta(self, small_signed_matrix):
        plan = plan_matrix(small_signed_matrix)
        assert plan.decode_delta() == plan.reference_depth() + 2

    def test_identity_matrix_compact_depth_zero(self):
        """An identity matrix has one tap per column-bit: no tree at all."""
        plan = plan_matrix(np.eye(8, dtype=np.int64), tree_style="compact")
        assert plan.reference_depth() == 0

    @given(st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_plan_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-8, 8, size=(5, 4))
        a = plan_matrix(matrix, scheme="csd", rng=np.random.default_rng(seed))
        b = plan_matrix(matrix, scheme="csd", rng=np.random.default_rng(seed))
        assert np.array_equal(a.split.positive, b.split.positive)
        assert np.array_equal(a.split.negative, b.split.negative)
