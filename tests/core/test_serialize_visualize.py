"""Tests for plan serialization and circuit visualization."""

import json

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.serialize import (
    census_from_dict,
    census_to_dict,
    plan_from_dict,
    plan_to_dict,
)
from repro.core.stats import census_plan
from repro.core.visualize import render_column, summarize_plan
from repro.hwsim.builder import build_circuit


class TestPlanSerialization:
    def test_round_trip_preserves_everything(self, rng):
        matrix = rng.integers(-64, 64, size=(9, 7))
        plan = plan_matrix(matrix, input_width=6, scheme="csd", rng=rng)
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert np.array_equal(rebuilt.split.positive, plan.split.positive)
        assert np.array_equal(rebuilt.split.negative, plan.split.negative)
        assert rebuilt.input_width == plan.input_width
        assert rebuilt.result_width == plan.result_width
        assert rebuilt.tree_style == plan.tree_style

    def test_json_compatible(self, rng):
        matrix = rng.integers(-8, 8, size=(4, 4))
        plan = plan_matrix(matrix)
        text = json.dumps(plan_to_dict(plan))
        rebuilt = plan_from_dict(json.loads(text))
        assert np.array_equal(rebuilt.matrix(), matrix)

    def test_rebuilt_plan_compiles_identically(self, rng):
        matrix = rng.integers(-16, 16, size=(6, 5))
        plan = plan_matrix(matrix, input_width=5)
        rebuilt = plan_from_dict(plan_to_dict(plan))
        vector = rng.integers(-16, 16, size=6)
        assert np.array_equal(
            build_circuit(plan).multiply(vector),
            build_circuit(rebuilt).multiply(vector),
        )

    def test_version_check(self):
        with pytest.raises(ValueError):
            plan_from_dict({"format_version": 999})


class TestCensusSerialization:
    def test_round_trip(self, rng):
        matrix = rng.integers(-64, 64, size=(8, 8))
        census = census_plan(plan_matrix(matrix))
        rebuilt = census_from_dict(census_to_dict(census))
        assert rebuilt == census

    def test_json_compatible(self, rng):
        matrix = rng.integers(-8, 8, size=(3, 3))
        census = census_plan(plan_matrix(matrix))
        rebuilt = census_from_dict(json.loads(json.dumps(census_to_dict(census))))
        assert rebuilt.serial_adders == census.serial_adders

    def test_version_check(self):
        with pytest.raises(ValueError):
            census_from_dict({"format_version": 0})


class TestVisualization:
    def test_render_column_mentions_structure(self):
        plan = plan_matrix(np.array([[3], [1]]), input_width=4)
        text = render_column(plan, 0)
        assert "P bit 0" in text
        assert "chain MSb->LSb" in text
        assert "subtract stage" in text
        assert "decode" in text

    def test_negative_only_column(self):
        plan = plan_matrix(np.array([[-2]]), input_width=4)
        text = render_column(plan, 0)
        assert "SerialNegator" in text
        assert "P: empty plane" in text

    def test_mixed_column_uses_subtractor(self):
        plan = plan_matrix(np.array([[1], [-1]]), input_width=4)
        assert "SerialSubtractor" in render_column(plan, 0)

    def test_empty_column(self):
        plan = plan_matrix(np.array([[0]]), input_width=4)
        assert "constant 0" in render_column(plan, 0)

    def test_out_of_range_column(self):
        plan = plan_matrix(np.array([[1]]), input_width=4)
        with pytest.raises(ValueError):
            render_column(plan, 5)

    def test_summarize_plan(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 4))
        text = summarize_plan(plan_matrix(matrix))
        assert "serial adders" in text
        assert "alignment DFFs" in text

    def test_render_matches_census_adders(self, rng):
        """The rendered per-bit adder counts sum to the census totals."""
        matrix = rng.integers(-8, 8, size=(5, 3))
        plan = plan_matrix(matrix)
        census = census_plan(plan)
        total = 0
        for col in range(plan.cols):
            text = render_column(plan, col)
            for line in text.splitlines():
                if "adders, tree depth" in line:
                    total += int(line.split("->")[1].split("adders")[0].strip())
        tree_adders = census.positive.tree_adders + census.negative.tree_adders
        assert total == tree_adders
