"""Tests for the NAF recoding extension (third split scheme)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csd import naf_split_unsigned
from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.split import split_matrix


class TestNafSplitUnsigned:
    def test_reconstruction(self, rng):
        matrix = rng.integers(0, 256, size=(16, 12))
        result = naf_split_unsigned(matrix, 8)
        assert np.array_equal(result.positive - result.negative, matrix)
        assert result.width == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            naf_split_unsigned(np.array([[-1]]), 8)

    def test_deterministic(self, rng):
        matrix = rng.integers(0, 64, size=(6, 6))
        a = naf_split_unsigned(matrix, 6)
        b = naf_split_unsigned(matrix, 6)
        assert np.array_equal(a.positive, b.positive)
        assert np.array_equal(a.negative, b.negative)


class TestNafScheme:
    def test_scheme_registered(self):
        from repro.core.split import RECODING_SCHEMES

        assert "naf" in RECODING_SCHEMES

    def test_reconstruction(self, rng):
        matrix = rng.integers(-128, 128, size=(10, 8))
        split = split_matrix(matrix, scheme="naf")
        assert np.array_equal(split.reconstruct(), matrix)
        assert split.scheme == "naf"

    def test_naf_never_heavier_than_csd(self, rng):
        """NAF is minimal-weight: it lower-bounds Listing 1."""
        for __ in range(5):
            matrix = rng.integers(-128, 128, size=(12, 12))
            csd = split_matrix(matrix, scheme="csd", rng=rng)
            naf = split_matrix(matrix, scheme="naf")
            assert naf.total_ones() <= csd.total_ones()

    def test_naf_never_heavier_than_pn(self, rng):
        matrix = rng.integers(-128, 128, size=(12, 12))
        pn = split_matrix(matrix, scheme="pn")
        naf = split_matrix(matrix, scheme="naf")
        assert naf.total_ones() <= pn.total_ones()

    def test_multiplier_computes_correctly_with_naf(self, rng):
        matrix = rng.integers(-64, 64, size=(8, 6))
        mult = FixedMatrixMultiplier(matrix, input_width=6, scheme="naf")
        a = rng.integers(-32, 32, size=8)
        assert np.array_equal(mult.multiply(a), a @ matrix)
        assert np.array_equal(mult.simulate(a), a @ matrix)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_naf_property(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-16, 16, size=(5, 5))
        split = split_matrix(matrix, scheme="naf")
        assert np.array_equal(split.reconstruct(), matrix)
        assert (split.positive >= 0).all() and (split.negative >= 0).all()
