"""Tests for the paper's Listing 1 CSD recoding and the NAF extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bits import popcount, to_unsigned_bits
from repro.core.csd import (
    convert_to_csd,
    convert_to_naf,
    csd_split_unsigned,
    csd_value,
    csd_variants,
    digits_to_pn,
    digits_to_value,
)


def _msb_bits(value: int, width: int) -> list[int]:
    return list(reversed(to_unsigned_bits(value, width)))


class TestListing1:
    def test_paper_example_15(self):
        """15 = 16 - 1: four set bits become two signed digits."""
        digits = convert_to_csd(_msb_bits(15, 4))
        assert digits_to_value(digits) == 15
        assert digits == [1, 0, 0, 0, -1]

    def test_output_one_wider_than_input(self):
        for width in (1, 3, 8):
            digits = convert_to_csd(_msb_bits(0, width))
            assert len(digits) == width + 1

    def test_single_bit_chain_left_alone(self):
        digits = convert_to_csd(_msb_bits(4, 4))
        assert digits == [0, 0, 1, 0, 0]

    def test_length_three_chain_substituted(self):
        digits = convert_to_csd(_msb_bits(7, 4))
        assert digits == [0, 1, 0, 0, -1]

    def test_length_two_chain_is_coin_flip(self):
        outcomes = set()
        for seed in range(20):
            digits = convert_to_csd(_msb_bits(3, 4), np.random.default_rng(seed))
            outcomes.add(tuple(digits))
        assert tuple([0, 0, 1, 0, -1]) in outcomes
        assert tuple([0, 0, 0, 1, 1]) in outcomes
        assert len(outcomes) == 2

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            convert_to_csd([0, 2, 1])

    def test_deterministic_default_rng(self):
        a = convert_to_csd(_msb_bits(219, 8))
        b = convert_to_csd(_msb_bits(219, 8))
        assert a == b

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=200)
    def test_value_preserved(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        seed = data.draw(st.integers(0, 2**16))
        digits = convert_to_csd(_msb_bits(value, width), np.random.default_rng(seed))
        assert digits_to_value(digits) == value

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=200)
    def test_never_more_set_digits_than_bits(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        seed = data.draw(st.integers(0, 2**16))
        digits = convert_to_csd(_msb_bits(value, width), np.random.default_rng(seed))
        nonzero = sum(1 for d in digits if d != 0)
        assert nonzero <= max(1, popcount(value))


class TestDigitHelpers:
    def test_digits_to_pn_splits_signs(self):
        p, n = digits_to_pn([1, 0, -1])
        assert p == 4 and n == 1

    def test_digits_to_pn_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            digits_to_pn([2])

    def test_digits_to_value_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            digits_to_value([0, 3])

    @given(st.integers(min_value=1, max_value=12), st.data())
    def test_csd_value_reconstructs(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        p, n = csd_value(value, width, np.random.default_rng(0))
        assert p - n == value


class TestNaf:
    @given(st.integers(min_value=0, max_value=2**20))
    def test_value_preserved(self, value):
        assert digits_to_value(convert_to_naf(value)) == value

    @given(st.integers(min_value=0, max_value=2**20))
    def test_no_adjacent_nonzeros(self, value):
        digits = convert_to_naf(value)
        for a, b in zip(digits, digits[1:]):
            assert not (a != 0 and b != 0)

    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_naf_never_heavier_than_listing1(self, width, data):
        """NAF is minimal-weight, so Listing 1 can never beat it."""
        value = data.draw(st.integers(0, (1 << width) - 1))
        listing1 = convert_to_csd(_msb_bits(value, width), np.random.default_rng(1))
        naf = convert_to_naf(value, width)
        weight = lambda ds: sum(1 for d in ds if d)
        assert weight(naf) <= weight(listing1)

    def test_width_too_small_rejected(self):
        with pytest.raises(ValueError):
            convert_to_naf(2**10, width=4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            convert_to_naf(-1)

    def test_zero(self):
        assert convert_to_naf(0) == [0]


class TestVariants:
    def test_no_chain2_single_variant(self):
        assert len(csd_variants(7, 4)) == 1  # chain of 3

    def test_one_chain2_two_variants(self):
        variants = csd_variants(3, 4)
        assert len(variants) == 2
        assert all(p - n == 3 for p, n in variants)

    def test_two_chains_four_variants(self):
        # 0b1101100 has chains "11" and "11": 2 coins -> 4 outcomes.
        value = 0b1101100
        variants = csd_variants(value, 7)
        assert len(variants) == 4
        assert all(p - n == value for p, n in variants)

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_all_variants_preserve_value(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        for p, n in csd_variants(value, width):
            assert p - n == value

    def test_rng_choice_matches_a_variant(self):
        """Listing 1's randomized output is always one of the variants."""
        for value in (3, 27, 107, 219):
            variants = set(csd_variants(value, 8))
            for seed in range(10):
                got = csd_value(value, 8, np.random.default_rng(seed))
                assert got in variants


class TestMatrixSplit:
    def test_reconstruction(self, rng):
        matrix = rng.integers(0, 256, size=(20, 17))
        result = csd_split_unsigned(matrix, 8, rng)
        assert np.array_equal(result.positive - result.negative, matrix)
        assert result.width == 9

    def test_negative_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            csd_split_unsigned(np.array([[-1]]), 8, rng)

    def test_reduces_total_ones_for_uniform_values(self, rng):
        """The paper's ~17% hardware reduction comes from fewer set bits."""
        from repro.core.bits import matrix_popcount

        matrix = rng.integers(0, 256, size=(64, 64))
        result = csd_split_unsigned(matrix, 8, rng)
        before = matrix_popcount(matrix)
        after = matrix_popcount(result.positive) + matrix_popcount(result.negative)
        assert after < before
        saving = 1.0 - after / before
        assert 0.10 < saving < 0.25

    def test_matches_elementwise_listing1_variants(self, rng):
        matrix = rng.integers(0, 64, size=(5, 5))
        result = csd_split_unsigned(matrix, 6, rng)
        for i in range(5):
            for j in range(5):
                variants = csd_variants(int(matrix[i, j]), 6)
                assert (int(result.positive[i, j]), int(result.negative[i, j])) in variants
