"""Kernel artifact round-trips: serialize -> load -> execute equivalence.

The ``.npz`` lowered-kernel artifact is the deployment unit of the
staged pipeline, so the load-bearing property is end-to-end: a kernel
written to disk and read back must execute bit-exactly with the circuit
it was lowered from — across recoding schemes, sparsity levels,
>62-bit result widths, and with injected faults (which are snapshotted
into the kernel, i.e. faults *survive serialization*).
"""

import json
import zipfile

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.serialize import (
    KERNEL_FORMAT_VERSION,
    kernel_from_npz,
    kernel_to_npz,
)
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit, lower
from repro.hwsim.faults import inject_stuck_carry, inject_stuck_output
from repro.hwsim.components import SerialAdder


def _circuit(seed=0, rows=12, cols=9, scheme="csd", input_width=8, sparsity=0.6):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-90, 91, size=(rows, cols))
    matrix[rng.random((rows, cols)) < sparsity] = 0
    circuit = build_circuit(
        plan_matrix(matrix, input_width=input_width, scheme=scheme)
    )
    lo, hi = -(1 << (input_width - 1)), (1 << (input_width - 1)) - 1
    vectors = rng.integers(lo, hi + 1, size=(5, rows))
    return matrix, circuit, vectors


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ["pn", "csd"])
    @pytest.mark.parametrize("sparsity", [0.3, 0.7, 0.95])
    def test_execute_equivalence_across_schemes_and_sparsity(
        self, tmp_path, scheme, sparsity
    ):
        matrix, circuit, vectors = _circuit(
            seed=int(sparsity * 10), scheme=scheme, sparsity=sparsity
        )
        path = tmp_path / "k.kernel.npz"
        kernel_to_npz(lower(circuit), path)
        loaded = kernel_from_npz(path)
        golden = FastCircuit.from_compiled(circuit).multiply_batch(vectors)
        assert np.array_equal(golden, vectors @ matrix)
        for engine in FastCircuit.ENGINES:
            assert np.array_equal(
                FastCircuit(loaded).multiply_batch(vectors, engine=engine), golden
            )

    def test_round_trip_preserves_every_field(self, tmp_path):
        _, circuit, _ = _circuit(seed=3)
        kernel = lower(circuit)
        path = tmp_path / "k.kernel.npz"
        kernel_to_npz(kernel, path)
        assert kernel_from_npz(path).equivalent(kernel)

    def test_wide_result_width_round_trip(self, tmp_path):
        """>62-bit serial results decode through Python ints; the artifact
        must reproduce that object-dtype path exactly."""
        matrix = np.full((64, 2), (1 << 31) - 1, dtype=np.int64)
        circuit = build_circuit(plan_matrix(matrix, input_width=32))
        assert circuit.plan.result_width > 62
        path = tmp_path / "wide.kernel.npz"
        kernel_to_npz(lower(circuit), path)
        loaded = kernel_from_npz(path)
        a = np.full((1, 64), -(1 << 31), dtype=np.int64)
        want = int(-(1 << 31)) * ((1 << 31) - 1) * 64
        got = FastCircuit(loaded).multiply_batch(a)
        assert got.dtype == object
        assert int(got[0, 0]) == want and int(got[0, 1]) == want
        assert abs(want) > 2**62

    def test_faults_survive_serialization(self, tmp_path):
        """The chosen fault policy: faults injected before lowering are
        part of the artifact and replay after a load in a process that
        never saw the netlist."""
        matrix, circuit, vectors = _circuit(seed=4)
        bound = FastCircuit.from_compiled(circuit)
        golden = bound.multiply_batch(vectors)
        inject_stuck_output(circuit.netlist, circuit.column_probes[0].src, 1)
        adder = next(
            c for c in circuit.netlist.components if isinstance(c, SerialAdder)
        )
        inject_stuck_carry(circuit.netlist, adder, 0)
        faulty = bound.multiply_batch(vectors)
        assert not np.array_equal(faulty, golden)
        path = tmp_path / "faulty.kernel.npz"
        kernel_to_npz(lower(circuit), path)
        loaded = kernel_from_npz(path)
        assert loaded.has_faults
        for engine in FastCircuit.FAULT_CAPABLE_ENGINES:
            assert np.array_equal(
                FastCircuit(loaded).multiply_batch(vectors, engine=engine), faulty
            )
        # The fused engine is linear-only: a fault-bearing kernel must be
        # refused loudly, never silently simulated fault-free.
        with pytest.raises(ValueError, match="fused"):
            FastCircuit(loaded).multiply_batch(vectors, engine="fused")


class TestArtifactValidation:
    def _stored(self, tmp_path):
        _, circuit, _ = _circuit(seed=5)
        path = tmp_path / "k.kernel.npz"
        kernel_to_npz(lower(circuit), path)
        return path

    def test_unknown_format_version_rejected(self, tmp_path):
        path = self._stored(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            entries = {k: data[k] for k in data.files}
        header = json.loads(str(entries["__header__"][()]))
        header["format_version"] = KERNEL_FORMAT_VERSION + 1
        entries["__header__"] = json.dumps(header)
        np.savez(path, **entries)
        with pytest.raises(ValueError, match="format version"):
            kernel_from_npz(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = self._stored(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            entries = {k: data[k] for k in data.files}
        header = json.loads(str(entries["__header__"][()]))
        header["kind"] = "something-else"
        entries["__header__"] = json.dumps(header)
        np.savez(path, **entries)
        with pytest.raises(ValueError, match="artifact kind"):
            kernel_from_npz(path)

    def test_missing_array_rejected(self, tmp_path):
        path = self._stored(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            entries = {k: data[k] for k in data.files if k != "probe_idx"}
        np.savez(path, **entries)
        with pytest.raises(ValueError, match="probe_idx"):
            kernel_from_npz(path)

    def test_missing_header_rejected(self, tmp_path):
        path = self._stored(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            entries = {k: data[k] for k in data.files if k != "__header__"}
        np.savez(path, **entries)
        with pytest.raises(ValueError, match="no header"):
            kernel_from_npz(path)

    def test_truncated_file_raises_zip_error(self, tmp_path):
        path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(zipfile.BadZipFile):
            kernel_from_npz(path)

    def test_write_is_atomic(self, tmp_path):
        path = self._stored(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
