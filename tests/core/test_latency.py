"""Tests pinning the paper's Eq. 5 latency model."""

import pytest

from repro.core.latency import (
    batch_cycles,
    latency_cycles,
    latency_ns,
    pipelined_reconfig_overhead_cycles,
)


class TestEq5:
    def test_paper_worked_example(self):
        """'given 8-bit inputs and weights and a 1024x1024 weight matrix, we
        perform the vector-matrix product in 8 + 8 + log2(1024) + 2 = 28
        cycles.'"""
        assert latency_cycles(8, 8, 1024) == 28

    @pytest.mark.parametrize(
        "bwi,bww,rows,cycles",
        [
            (8, 8, 64, 24),
            (8, 8, 4096, 30),
            (1, 1, 2, 5),
            (4, 8, 512, 23),
            (8, 8, 1, 18),
        ],
    )
    def test_other_points(self, bwi, bww, rows, cycles):
        assert latency_cycles(bwi, bww, rows) == cycles

    def test_non_power_of_two_rows_round_up(self):
        assert latency_cycles(8, 8, 1025) == 29

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            latency_cycles(0, 8, 4)
        with pytest.raises(ValueError):
            latency_cycles(8, 0, 4)
        with pytest.raises(ValueError):
            latency_cycles(8, 8, 0)

    def test_latency_ns(self):
        # 28 cycles at 500 MHz = 56 ns.
        assert latency_ns(8, 8, 1024, 500e6) == pytest.approx(56.0)

    def test_latency_ns_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            latency_ns(8, 8, 1024, 0)


class TestBatching:
    def test_sequential_scaling(self):
        assert batch_cycles(8, 8, 1024, 1) == 28
        assert batch_cycles(8, 8, 1024, 4) == 112
        assert batch_cycles(8, 8, 1024, 64) == 28 * 64

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            batch_cycles(8, 8, 1024, 0)


class TestPipelineReconfig:
    def test_wave_length(self):
        # One configuration wave = tree depth + chain length.
        assert pipelined_reconfig_overhead_cycles(1024, 8) == 18

    def test_single_row(self):
        assert pipelined_reconfig_overhead_cycles(1, 8) == 8

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            pipelined_reconfig_overhead_cycles(0, 8)

    def test_much_cheaper_than_full_reconfig(self):
        """Sec. VIII: FPGA full reconfiguration is ~200 ms; a pipeline wave
        at 250 MHz is tens of nanoseconds."""
        cycles = pipelined_reconfig_overhead_cycles(1024, 8)
        wave_s = cycles / 250e6
        assert wave_s < 1e-6
        assert 200e-3 / wave_s > 1e6
