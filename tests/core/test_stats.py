"""Unit tests for the combinatorial circuit census."""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.stats import census_plan


def census_of(matrix, **kwargs):
    return census_plan(plan_matrix(np.asarray(matrix), **kwargs))


class TestSmallCircuits:
    def test_single_positive_weight(self):
        """V = [[1]]: one tap, no tree adders, chain DFF, subtract DFF."""
        census = census_of([[1]], input_width=4)
        assert census.ones == 1
        assert census.serial_adders == 0
        assert census.positive.live_roots == 1
        assert census.subtract_dffs == 1
        assert census.negators == 0

    def test_single_negative_weight_needs_negator(self):
        census = census_of([[-1]], input_width=4)
        assert census.negators == 1
        assert census.subtractors == 0

    def test_mixed_signs_need_subtractor(self):
        census = census_of([[1], [-1]], input_width=4)
        assert census.subtractors == 1

    def test_zero_matrix_has_no_arithmetic(self):
        census = census_of([[0, 0], [0, 0]])
        assert census.serial_adders == 0
        assert census.dffs == 0
        assert census.ones == 0

    def test_two_taps_one_adder(self):
        census = census_of([[1], [1]], input_width=4)
        assert census.positive.tree_adders == 1
        assert census.positive.tree_dffs == 0

    def test_weight_three_chains_two_bits(self):
        """V = [[3]]: bits 0 and 1 live -> one chain adder, one chain DFF
        (the MSb 'adder with 0' link)."""
        census = census_of([[3]], input_width=4)
        assert census.positive.chain_adders == 1
        assert census.positive.chain_dffs == 1

    def test_weight_four_single_bit_no_chain_adder(self):
        census = census_of([[4]], input_width=4)
        assert census.positive.chain_adders == 0
        # Chain DFF links walk from bit 2 down to bit 0.
        assert census.positive.chain_dffs == 3


class TestCensusInvariants:
    @pytest.mark.parametrize("style", ["compact", "padded"])
    def test_adders_equal_ones_minus_roots_plus_chain(self, rng, style):
        """Tree adders = ones - live column-bit roots (k-1 per group)."""
        matrix = rng.integers(-16, 16, size=(12, 10))
        census = census_of(matrix, tree_style=style)
        tree_adders = census.positive.tree_adders + census.negative.tree_adders
        live = census.positive.live_roots + census.negative.live_roots
        assert tree_adders == census.ones - live

    @pytest.mark.parametrize("style", ["compact", "padded"])
    def test_styles_agree_on_adders(self, rng, style):
        """Culling never changes adder counts, only alignment flops."""
        matrix = rng.integers(-16, 16, size=(9, 7))
        compact = census_of(matrix, tree_style="compact")
        padded = census_of(matrix, tree_style="padded")
        assert compact.serial_adders == padded.serial_adders

    def test_compact_needs_fewer_dffs(self, rng):
        matrix = rng.integers(-128, 128, size=(32, 32))
        matrix[rng.random((32, 32)) < 0.9] = 0  # highly sparse
        compact = census_of(matrix, tree_style="compact")
        padded = census_of(matrix, tree_style="padded")
        assert compact.dffs < padded.dffs

    def test_cost_tracks_ones(self, rng):
        """The fundamental minimization: adders scale with matrix ones."""
        dense = rng.integers(-128, 128, size=(16, 16))
        sparse = dense.copy()
        sparse[rng.random((16, 16)) < 0.8] = 0
        dense_census = census_of(dense)
        sparse_census = census_of(sparse)
        assert sparse_census.ones < dense_census.ones
        assert sparse_census.serial_adders < dense_census.serial_adders

    def test_io_counts(self, rng):
        matrix = rng.integers(-4, 5, size=(7, 13))
        census = census_of(matrix)
        assert census.input_shift_registers == 7
        assert census.output_shift_registers == 13

    def test_padded_style_has_no_output_pads(self, rng):
        matrix = rng.integers(-16, 16, size=(8, 8))
        assert census_of(matrix, tree_style="padded").output_pad_dffs == 0

    def test_census_metadata(self, small_signed_matrix):
        census = census_of(small_signed_matrix, input_width=6)
        assert census.rows == 8
        assert census.cols == 6
        assert census.input_width == 6
        assert census.tree_style == "compact"
