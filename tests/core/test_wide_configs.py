"""Wide-bitwidth configurations: no silent int64 overflow anywhere.

The paper sweeps weights to 32 bits (Fig. 8); combined with wide inputs
and many rows, serial results can exceed 63 bits.  The library must either
compute exactly (arbitrary precision) or be exactly right in int64 — never
silently wrong.
"""

import numpy as np
import pytest

from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.plan import plan_matrix


class TestWideWidths:
    def test_result_width_exact_for_wide_config(self):
        """256 rows of maximal 32-bit weights with 32-bit inputs: the bound
        computation must not wrap."""
        matrix = np.full((256, 1), (1 << 31) - 1, dtype=np.int64)
        plan = plan_matrix(matrix, input_width=32)
        # |o| <= 256 * 2^31 * (2^31 - 1) ~ 2^70: needs ~71 bits.
        assert plan.result_width > 63

    def test_wide_multiply_exact(self):
        matrix = np.full((64, 2), (1 << 31) - 1, dtype=np.int64)
        mult = FixedMatrixMultiplier(matrix, input_width=32)
        a = np.full(64, -(1 << 31), dtype=np.int64)
        got = mult.multiply(a)
        want = int(-(1 << 31)) * ((1 << 31) - 1) * 64
        assert int(got[0]) == want
        assert int(got[1]) == want
        assert abs(want) > 2**62  # the point: this cannot live in int64

    def test_wide_batch_multiply(self):
        matrix = np.full((32, 1), (1 << 31) - 1, dtype=np.int64)
        mult = FixedMatrixMultiplier(matrix, input_width=32)
        batch = np.full((3, 32), (1 << 31) - 1, dtype=np.int64)
        got = mult.multiply_batch(batch)
        want = ((1 << 31) - 1) ** 2 * 32
        assert all(int(v) == want for v in got[:, 0])

    def test_gate_sim_handles_wide_results(self):
        """The serial datapath is width-agnostic: simulate a product whose
        result exceeds 63 bits and check bit-exactness."""
        matrix = np.full((4, 1), (1 << 31) - 1, dtype=np.int64)
        mult = FixedMatrixMultiplier(matrix, input_width=32)
        a = np.full(4, -(1 << 31), dtype=np.int64)
        want = int(-(1 << 31)) * ((1 << 31) - 1) * 4
        got = mult.simulate(a)
        assert int(got[0]) == want

    def test_normal_configs_stay_int64(self, rng):
        matrix = rng.integers(-128, 128, size=(8, 4))
        mult = FixedMatrixMultiplier(matrix, input_width=8)
        assert mult.plan.result_width <= 62
        assert mult.multiply(rng.integers(-128, 128, size=8)).dtype == np.int64
