"""Tests for Sec. VIII tiled execution."""

import numpy as np
import pytest

from repro.core.tiling import (
    FPGA_RECONFIGURATION_S,
    TiledMatrixMultiplier,
    plan_column_tiles,
)


class TestPlanColumnTiles:
    def test_single_tile_when_budget_ample(self, rng):
        matrix = rng.integers(-8, 8, size=(16, 8))
        tiles = plan_column_tiles(matrix, lut_budget=10**6)
        assert tiles == [(0, 8)]

    def test_partition_covers_all_columns(self, rng):
        matrix = rng.integers(-128, 128, size=(32, 20))
        tiles = plan_column_tiles(matrix, lut_budget=2000)
        assert tiles[0][0] == 0
        assert tiles[-1][1] == 20
        for (s1, e1), (s2, e2) in zip(tiles, tiles[1:]):
            assert e1 == s2
        assert len(tiles) > 1

    def test_budget_too_small_for_one_column(self, rng):
        matrix = rng.integers(-128, 128, size=(64, 4))
        with pytest.raises(ValueError):
            plan_column_tiles(matrix, lut_budget=100)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_column_tiles(np.zeros((0, 0)), 1000)
        with pytest.raises(ValueError):
            plan_column_tiles(np.ones((2, 2)), 0)


class TestTiledMultiplier:
    def test_functionally_exact(self, rng):
        matrix = rng.integers(-64, 64, size=(24, 16))
        tiled = TiledMatrixMultiplier(matrix, lut_budget=600, input_width=8)
        assert tiled.tile_count > 1
        vector = rng.integers(-128, 128, size=24)
        assert np.array_equal(tiled.multiply(vector), vector @ matrix)

    def test_every_tile_respects_budget(self, rng):
        matrix = rng.integers(-64, 64, size=(24, 16))
        tiled = TiledMatrixMultiplier(matrix, lut_budget=600)
        assert tiled.max_tile_luts() <= 600

    def test_fpga_reconfiguration_dominates(self, rng):
        """The paper's point: 200 ms reprograms swamp nanosecond compute."""
        matrix = rng.integers(-64, 64, size=(24, 16))
        tiled = TiledMatrixMultiplier(matrix, lut_budget=600)
        estimate = tiled.execution_estimate(batch=100)
        assert estimate.reconfiguration_fraction > 0.999
        assert estimate.reconfiguration_s == pytest.approx(
            tiled.tile_count * FPGA_RECONFIGURATION_S
        )

    def test_pipeline_reconfiguration_restores_viability(self, rng):
        """With CGRA wave reconfiguration, compute dominates again."""
        matrix = rng.integers(-64, 64, size=(24, 16))
        tiled = TiledMatrixMultiplier(matrix, lut_budget=600)
        fpga = tiled.execution_estimate(batch=100)
        cgra = tiled.execution_estimate(batch=100, pipeline_reconfiguration=True)
        assert cgra.total_s < fpga.total_s / 1e4
        assert cgra.reconfiguration_fraction < 0.5

    def test_batch_scaling(self, rng):
        matrix = rng.integers(-8, 8, size=(16, 8))
        tiled = TiledMatrixMultiplier(matrix, lut_budget=1200)
        one = tiled.execution_estimate(batch=1, pipeline_reconfiguration=True)
        ten = tiled.execution_estimate(batch=10, pipeline_reconfiguration=True)
        assert ten.compute_s == pytest.approx(10 * one.compute_s)
        assert ten.reconfiguration_s == pytest.approx(one.reconfiguration_s)

    def test_invalid_batch(self, rng):
        matrix = rng.integers(-8, 8, size=(8, 4))
        tiled = TiledMatrixMultiplier(matrix, lut_budget=10**6)
        with pytest.raises(ValueError):
            tiled.execution_estimate(batch=0)
