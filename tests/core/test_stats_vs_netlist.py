"""The load-bearing cross-validation: census == instantiated netlist.

The large-scale experiments (Figs. 10-12) trust the O(ones) combinatorial
census; these tests prove it counts exactly the primitives the gate-level
builder instantiates, over random matrices, both recodings, and both tree
styles.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan import plan_matrix
from repro.core.stats import census_plan
from repro.fpga.mapping import map_census, map_netlist
from repro.hwsim.builder import build_circuit
from repro.hwsim.components import (
    DFF,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)


def assert_census_matches_netlist(matrix, input_width, scheme, tree_style, seed=0):
    plan = plan_matrix(
        matrix,
        input_width=input_width,
        scheme=scheme,
        rng=np.random.default_rng(seed),
        tree_style=tree_style,
    )
    census = census_plan(plan)
    circuit = build_circuit(plan)
    netlist = circuit.netlist
    adders = (
        netlist.count(SerialAdder)
        + netlist.count(SerialSubtractor)
        + netlist.count(SerialNegator)
    )
    assert adders == census.serial_adders
    assert netlist.count(DFF) == census.dffs
    assert netlist.count(SerialSubtractor) == census.subtractors
    assert netlist.count(SerialNegator) == census.negators
    assert map_census(census) == map_netlist(circuit)
    assert circuit.decode_delta == plan.decode_delta()


@pytest.mark.parametrize("tree_style", ["compact", "padded"])
@pytest.mark.parametrize("scheme", ["pn", "csd"])
class TestKnownShapes:
    def test_dense_square(self, rng, tree_style, scheme):
        matrix = rng.integers(-128, 128, size=(16, 16))
        assert_census_matches_netlist(matrix, 8, scheme, tree_style)

    def test_sparse_square(self, rng, tree_style, scheme):
        matrix = rng.integers(-128, 128, size=(16, 16))
        matrix[rng.random((16, 16)) < 0.85] = 0
        assert_census_matches_netlist(matrix, 8, scheme, tree_style)

    def test_rectangular_wide(self, rng, tree_style, scheme):
        matrix = rng.integers(-8, 8, size=(5, 19))
        assert_census_matches_netlist(matrix, 6, scheme, tree_style)

    def test_rectangular_tall(self, rng, tree_style, scheme):
        matrix = rng.integers(-8, 8, size=(19, 5))
        assert_census_matches_netlist(matrix, 6, scheme, tree_style)

    def test_single_row(self, rng, tree_style, scheme):
        matrix = rng.integers(-8, 8, size=(1, 9))
        assert_census_matches_netlist(matrix, 4, scheme, tree_style)

    def test_single_column(self, rng, tree_style, scheme):
        matrix = rng.integers(-8, 8, size=(9, 1))
        assert_census_matches_netlist(matrix, 4, scheme, tree_style)

    def test_all_zero(self, tree_style, scheme):
        assert_census_matches_netlist(np.zeros((6, 6), dtype=np.int64), 4, scheme, tree_style)

    def test_identity(self, tree_style, scheme):
        assert_census_matches_netlist(np.eye(8, dtype=np.int64), 4, scheme, tree_style)

    def test_all_negative(self, rng, tree_style, scheme):
        matrix = -rng.integers(1, 17, size=(7, 7))
        assert_census_matches_netlist(matrix, 5, scheme, tree_style)

    def test_power_of_two_weights(self, tree_style, scheme):
        matrix = np.array([[1, 2, 4, 8], [16, 32, 64, -64]])
        assert_census_matches_netlist(matrix, 8, scheme, tree_style)


@given(
    seed=st.integers(0, 2**20),
    rows=st.integers(1, 20),
    cols=st.integers(1, 20),
    width=st.integers(1, 8),
    input_width=st.integers(1, 8),
    scheme=st.sampled_from(["pn", "csd"]),
    tree_style=st.sampled_from(["compact", "padded"]),
    sparsity=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_census_matches_netlist_property(
    seed, rows, cols, width, input_width, scheme, tree_style, sparsity
):
    rng = np.random.default_rng(seed)
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    matrix = rng.integers(lo, hi + 1, size=(rows, cols))
    matrix[rng.random((rows, cols)) < sparsity] = 0
    assert_census_matches_netlist(matrix, input_width, scheme, tree_style, seed)
