"""Tests for signed-weight PN/CSD splitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bits import matrix_popcount
from repro.core.split import pn_split, split_matrix


class TestPnSplit:
    def test_basic_split(self):
        matrix = np.array([[3, -2], [0, -128]])
        split = pn_split(matrix)
        assert np.array_equal(split.positive, [[3, 0], [0, 0]])
        assert np.array_equal(split.negative, [[0, 2], [0, 128]])
        assert split.scheme == "pn"

    def test_reconstruction(self, rng):
        matrix = rng.integers(-128, 128, size=(12, 9))
        assert np.array_equal(pn_split(matrix).reconstruct(), matrix)

    def test_width_covers_abs_minimum(self):
        split = pn_split(np.array([[-128]]))
        assert split.width == 8  # |-128| = 128 needs 8 unsigned bits

    def test_planes_nonnegative(self, rng):
        matrix = rng.integers(-100, 100, size=(6, 6))
        split = pn_split(matrix)
        assert (split.positive >= 0).all()
        assert (split.negative >= 0).all()

    def test_disjoint_support(self, rng):
        matrix = rng.integers(-50, 50, size=(10, 10))
        split = pn_split(matrix)
        assert not np.any((split.positive > 0) & (split.negative > 0))

    def test_ones_conserved(self, rng):
        """'the number of ones in the two matrices is conserved by this
        transform' — PN split keeps magnitude popcounts."""
        matrix = rng.integers(-128, 128, size=(16, 16))
        split = pn_split(matrix)
        expected = matrix_popcount(np.abs(matrix))
        assert split.total_ones() == expected

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            pn_split(np.array([1, 2, 3]))

    def test_shape_properties(self):
        split = pn_split(np.zeros((3, 7), dtype=np.int64))
        assert split.shape == (3, 7)
        assert split.rows == 3
        assert split.cols == 7


class TestCsdSplit:
    def test_reconstruction(self, rng):
        matrix = rng.integers(-128, 128, size=(12, 9))
        split = split_matrix(matrix, scheme="csd", rng=rng)
        assert np.array_equal(split.reconstruct(), matrix)
        assert split.scheme == "csd"

    def test_width_grows_by_at_most_one(self, rng):
        matrix = rng.integers(-128, 128, size=(8, 8))
        pn = split_matrix(matrix, scheme="pn")
        csd = split_matrix(matrix, scheme="csd", rng=rng)
        assert csd.width <= pn.width + 1

    def test_csd_never_heavier(self, rng):
        for __ in range(5):
            matrix = rng.integers(-128, 128, size=(10, 10))
            pn = split_matrix(matrix, scheme="pn")
            csd = split_matrix(matrix, scheme="csd", rng=rng)
            assert csd.total_ones() <= pn.total_ones()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            split_matrix(np.array([[1]]), scheme="nonsense")

    @given(st.integers(0, 2**16), st.integers(min_value=2, max_value=8))
    @settings(max_examples=50)
    def test_reconstruction_property(self, seed, width):
        rng = np.random.default_rng(seed)
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        matrix = rng.integers(lo, hi + 1, size=(4, 4))
        split = split_matrix(matrix, scheme="csd", rng=rng)
        assert np.array_equal(split.reconstruct(), matrix)
        assert (split.positive >= 0).all() and (split.negative >= 0).all()
