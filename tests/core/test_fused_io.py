"""Fused-kernel artifact round-trips and the reject-unknown policy.

The ``.fused.npz`` artifact is what makes the cycle-loop-free serving
path a zero-work warm start: a persisted schedule must execute
bit-exactly after a load in a process that never saw the matrix, and a
reader must refuse anything it does not fully understand (unknown
version, wrong artifact kind, missing arrays) so a stale store degrades
to a re-fuse, never to a wrong answer.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.serialize import (
    FUSED_FORMAT_VERSION,
    fused_from_npz,
    fused_to_npz,
    kernel_to_npz,
    npz_header,
)
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit, lower
from repro.hwsim.fused import FusedCircuit, FusedKernel, fuse


def _fused(seed=0, rows=12, cols=9, scheme="csd", input_width=8, sparsity=0.6):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-90, 91, size=(rows, cols))
    matrix[rng.random((rows, cols)) < sparsity] = 0
    circuit = build_circuit(
        plan_matrix(matrix, input_width=input_width, scheme=scheme)
    )
    lo, hi = -(1 << (input_width - 1)), (1 << (input_width - 1)) - 1
    vectors = rng.integers(lo, hi + 1, size=(5, rows))
    return matrix, circuit, fuse(lower(circuit)), vectors


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ["csd", "pn"])
    @pytest.mark.parametrize("sparsity", [0.2, 0.8])
    def test_loaded_schedule_is_equivalent_and_executes(
        self, tmp_path, scheme, sparsity
    ):
        matrix, _, fused, vectors = _fused(
            seed=1, scheme=scheme, sparsity=sparsity
        )
        path = tmp_path / "m.fused.npz"
        fused_to_npz(fused, path)
        loaded = fused_from_npz(path)
        assert loaded.equivalent(fused)
        assert loaded.fingerprint == fused.fingerprint
        assert np.array_equal(
            FusedCircuit(loaded).multiply_batch(vectors), vectors @ matrix
        )

    def test_wide_schedule_round_trips(self, tmp_path):
        rng = np.random.default_rng(2)
        matrix = rng.integers(-(2**18), 2**18, size=(36, 4))
        plan = plan_matrix(matrix, input_width=40, scheme="csd")
        assert plan.result_width > 62
        fused = fuse(lower(build_circuit(plan)))
        path = tmp_path / "wide.fused.npz"
        fused_to_npz(fused, path)
        loaded = fused_from_npz(path)
        vectors = rng.integers(-(2**30), 2**30, size=(3, 36))
        out = FusedCircuit(loaded).multiply_batch(vectors)
        assert out.dtype == object
        golden = [
            sum(int(vectors[b, r]) * int(matrix[r, j]) for r in range(36))
            for b in range(3)
            for j in range(4)
        ]
        assert [int(x) for x in out.ravel()] == golden

    def test_loaded_schedule_binds_to_a_fast_circuit(self, tmp_path):
        """The compile-cache pattern: kernel + fused artifact, no netlist."""
        matrix, circuit, fused, vectors = _fused(seed=3)
        kernel = lower(circuit)
        fused_to_npz(fused, tmp_path / "m.fused.npz")
        loaded = fused_from_npz(tmp_path / "m.fused.npz")
        fast = FastCircuit(kernel, fused=loaded)
        assert fast.fused is loaded
        assert np.array_equal(
            fast.multiply_batch(vectors, engine="fused"), vectors @ matrix
        )


class TestTermMetadata:
    """Term statistics ride in the .npz header so the executor selector
    can decide from metadata alone — without loading term arrays or
    materializing the dense fold."""

    def test_fused_header_carries_term_count_and_density(self, tmp_path):
        _, _, fused, _ = _fused(seed=7)
        path = tmp_path / "m.fused.npz"
        fused_to_npz(fused, path)
        header = npz_header(path)
        assert header["term_count"] == fused.terms
        assert header["term_density"] == pytest.approx(
            fused.terms / (fused.rows * fused.cols)
        )

    def test_kernel_header_accepts_extra_metadata(self, tmp_path):
        _, circuit, fused, _ = _fused(seed=8)
        path = tmp_path / "k.kernel.npz"
        kernel_to_npz(
            lower(circuit),
            path,
            metadata={"term_count": fused.terms, "term_density": 0.25},
        )
        header = npz_header(path)
        assert header["term_count"] == fused.terms
        assert header["term_density"] == 0.25

    def test_pre_metadata_artifacts_still_load(self, tmp_path):
        """Graceful backfill: stores written before the metadata existed
        have no term_count key, and readers must not care."""
        _, _, fused, vectors = _fused(seed=9)
        path = tmp_path / "old.fused.npz"
        fused_to_npz(fused, path)
        with np.load(path, allow_pickle=False) as data:
            entries = {k: data[k] for k in data.files}
        header = json.loads(str(entries.pop("__header__")[()]))
        header.pop("term_count")
        header.pop("term_density")
        np.savez_compressed(path, __header__=json.dumps(header), **entries)
        loaded = fused_from_npz(path)
        assert loaded.equivalent(fused)
        assert "term_count" not in npz_header(path)

    def test_npz_header_rejects_headerless_archives(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez_compressed(path, data=np.arange(3))
        with pytest.raises(ValueError, match="header"):
            npz_header(path)


class TestArtifactValidation:
    def _stored(self, tmp_path):
        _, _, fused, _ = _fused(seed=5)
        path = tmp_path / "f.fused.npz"
        fused_to_npz(fused, path)
        return path

    def _rewrite_header(self, path, mutate):
        with np.load(path, allow_pickle=False) as data:
            entries = {k: data[k] for k in data.files}
        header = json.loads(str(entries.pop("__header__")[()]))
        mutate(header, entries)
        np.savez_compressed(path, __header__=json.dumps(header), **entries)

    def test_rejects_unknown_format_version(self, tmp_path):
        path = self._stored(tmp_path)
        self._rewrite_header(
            path,
            lambda h, _: h.update(format_version=FUSED_FORMAT_VERSION + 1),
        )
        with pytest.raises(ValueError, match="version"):
            fused_from_npz(path)

    def test_rejects_wrong_artifact_kind(self, tmp_path):
        path = self._stored(tmp_path)
        self._rewrite_header(path, lambda h, _: h.update(kind="repro-something"))
        with pytest.raises(ValueError, match="kind"):
            fused_from_npz(path)

    def test_rejects_kernel_artifact_read_as_fused(self, tmp_path):
        """Cross-kind confusion must fail loudly, both directions."""
        _, circuit, _, _ = _fused(seed=6)
        path = tmp_path / "k.kernel.npz"
        kernel_to_npz(lower(circuit), path)
        with pytest.raises(ValueError, match="kind"):
            fused_from_npz(path)

    def test_rejects_missing_arrays_and_scalars(self, tmp_path):
        path = self._stored(tmp_path)
        self._rewrite_header(path, lambda h, e: e.pop("term_shift"))
        with pytest.raises(ValueError, match="term_shift"):
            fused_from_npz(path)
        path = self._stored(tmp_path)
        self._rewrite_header(path, lambda h, _: h.pop("result_width"))
        with pytest.raises(ValueError, match="result_width"):
            fused_from_npz(path)

    def test_rejects_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.fused.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises((ValueError, zipfile.BadZipFile)):
            fused_from_npz(path)

    def test_rejects_corrupted_terms_at_construction(self, tmp_path):
        """Header validation composes with FusedKernel's own checks."""
        path = self._stored(tmp_path)

        def corrupt(_, entries):
            entries["term_sign"] = np.array(
                [3] * len(entries["term_sign"]), dtype=np.int64
            )

        self._rewrite_header(path, corrupt)
        with pytest.raises(ValueError, match="sign"):
            fused_from_npz(path)
