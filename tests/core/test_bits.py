"""Unit and property tests for two's-complement bit streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bits import (
    bit_plane,
    bit_planes,
    decode_twos_complement_stream,
    from_twos_complement_bits,
    from_unsigned_bits,
    matrix_popcount,
    min_bits_unsigned,
    popcount,
    sign_extended_stream,
    signed_range,
    to_twos_complement_bits,
    to_unsigned_bits,
    unsigned_range,
)


class TestRanges:
    def test_unsigned_range_8bit(self):
        assert unsigned_range(8) == (0, 255)

    def test_signed_range_8bit(self):
        assert signed_range(8) == (-128, 127)

    def test_signed_range_1bit(self):
        assert signed_range(1) == (-1, 0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            unsigned_range(0)
        with pytest.raises(ValueError):
            signed_range(-3)


class TestUnsignedBits:
    def test_example_from_docstring(self):
        assert to_unsigned_bits(6, 4) == [0, 1, 1, 0]

    def test_lsb_first_order(self):
        assert to_unsigned_bits(1, 4) == [1, 0, 0, 0]
        assert to_unsigned_bits(8, 4) == [0, 0, 0, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            to_unsigned_bits(16, 4)
        with pytest.raises(ValueError):
            to_unsigned_bits(-1, 4)

    @given(st.integers(min_value=1, max_value=32), st.data())
    def test_round_trip(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        assert from_unsigned_bits(to_unsigned_bits(value, width)) == value


class TestTwosComplement:
    def test_negative_example(self):
        assert to_twos_complement_bits(-3, 4) == [1, 0, 1, 1]

    def test_minimum_value(self):
        assert from_twos_complement_bits(to_twos_complement_bits(-8, 4)) == -8

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            to_twos_complement_bits(8, 4)
        with pytest.raises(ValueError):
            to_twos_complement_bits(-9, 4)

    def test_empty_decode_rejected(self):
        with pytest.raises(ValueError):
            from_twos_complement_bits([])

    @given(st.integers(min_value=1, max_value=32), st.data())
    def test_round_trip(self, width, data):
        lo, hi = signed_range(width)
        value = data.draw(st.integers(lo, hi))
        assert from_twos_complement_bits(to_twos_complement_bits(value, width)) == value


class TestSignExtension:
    def test_positive_extends_with_zeros(self):
        assert sign_extended_stream(3, 4, 7) == [1, 1, 0, 0, 0, 0, 0]

    def test_negative_extends_with_ones(self):
        assert sign_extended_stream(-1, 4, 6) == [1, 1, 1, 1, 1, 1]

    def test_length_shorter_than_width_rejected(self):
        with pytest.raises(ValueError):
            sign_extended_stream(1, 8, 4)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=24),
        st.data(),
    )
    def test_extended_stream_decodes_to_same_value(self, width, extra, data):
        lo, hi = signed_range(width)
        value = data.draw(st.integers(lo, hi))
        stream = sign_extended_stream(value, width, width + extra)
        assert from_twos_complement_bits(stream) == value

    def test_decode_stream_prefix(self):
        stream = sign_extended_stream(-5, 5, 12)
        assert decode_twos_complement_stream(stream, 5) == -5

    def test_decode_stream_too_short_rejected(self):
        with pytest.raises(ValueError):
            decode_twos_complement_stream([1, 0], 4)


class TestPopcount:
    def test_small_values(self):
        assert popcount(0) == 0
        assert popcount(7) == 3
        assert popcount(255) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_matrix_popcount_matches_elementwise(self):
        matrix = np.array([[3, 0], [255, 1]])
        assert matrix_popcount(matrix) == 2 + 0 + 8 + 1

    def test_matrix_popcount_empty(self):
        assert matrix_popcount(np.zeros((0, 0), dtype=np.int64)) == 0

    def test_matrix_popcount_width_check(self):
        with pytest.raises(ValueError):
            matrix_popcount(np.array([[256]]), width=8)

    def test_matrix_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            matrix_popcount(np.array([[-1]]))

    @given(
        st.lists(st.integers(0, 2**20), min_size=1, max_size=30)
    )
    def test_matrix_popcount_property(self, values):
        matrix = np.array(values).reshape(1, -1)
        assert matrix_popcount(matrix) == sum(v.bit_count() for v in values)


class TestBitPlanes:
    def test_bit_plane_selects_correct_entries(self):
        matrix = np.array([[1, 2], [3, 4]])
        assert bit_plane(matrix, 0).tolist() == [[True, False], [True, False]]
        assert bit_plane(matrix, 1).tolist() == [[False, True], [True, False]]
        assert bit_plane(matrix, 2).tolist() == [[False, False], [False, True]]

    def test_bit_planes_reconstruct_matrix(self):
        matrix = np.array([[5, 9], [0, 14]])
        planes = bit_planes(matrix, 4)
        rebuilt = sum((planes[b].astype(int) << b) for b in range(4))
        assert np.array_equal(rebuilt, matrix)

    def test_negative_bit_rejected(self):
        with pytest.raises(ValueError):
            bit_plane(np.array([[1]]), -1)


class TestMinBits:
    @pytest.mark.parametrize(
        "value,expected", [(0, 1), (1, 1), (2, 2), (3, 2), (255, 8), (256, 9)]
    )
    def test_values(self, value, expected):
        assert min_bits_unsigned(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            min_bits_unsigned(-1)
