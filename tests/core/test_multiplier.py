"""Tests for the FixedMatrixMultiplier facade."""

import numpy as np
import pytest

from repro.core.multiplier import FixedMatrixMultiplier
from repro.fpga.device import XCVU13P


class TestConstruction:
    def test_basic_properties(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix, input_width=8)
        assert mult.rows == 8
        assert mult.cols == 6
        assert mult.input_width == 8
        assert mult.scheme == "pn"
        assert mult.ones == mult.plan.split.total_ones()

    def test_csd_scheme(self, small_signed_matrix, rng):
        mult = FixedMatrixMultiplier(small_signed_matrix, scheme="csd", rng=rng)
        assert mult.scheme == "csd"

    def test_repr(self, small_signed_matrix):
        text = repr(FixedMatrixMultiplier(small_signed_matrix))
        assert "FixedMatrixMultiplier" in text
        assert "rows=8" in text

    def test_summary_contains_key_lines(self, small_signed_matrix):
        summary = FixedMatrixMultiplier(small_signed_matrix).summary()
        for key in ("ones:", "LUTs:", "Fmax:", "latency:", "power:"):
            assert key in summary

    def test_utilization_report(self, small_signed_matrix):
        report = FixedMatrixMultiplier(small_signed_matrix).utilization_report()
        assert "Utilization report" in report
        assert "| LUT" in report
        assert "Design fits device: yes" in report


class TestFunctionalPath:
    def test_multiply_matches_numpy(self, rng):
        matrix = rng.integers(-128, 128, size=(10, 7))
        mult = FixedMatrixMultiplier(matrix)
        a = rng.integers(-128, 128, size=10)
        assert np.array_equal(mult.multiply(a), a @ matrix)

    def test_multiply_rejects_wrong_length(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        with pytest.raises(ValueError):
            mult.multiply([1, 2, 3])

    def test_multiply_batch(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 4))
        mult = FixedMatrixMultiplier(matrix, input_width=4)
        batch = rng.integers(-8, 8, size=(5, 6))
        assert np.array_equal(mult.multiply_batch(batch), batch @ matrix)

    def test_multiply_batch_rejects_bad_shape(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        with pytest.raises(ValueError):
            mult.multiply_batch(np.zeros((2, 3)))

    def test_simulate_matches_multiply(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 5))
        mult = FixedMatrixMultiplier(matrix, input_width=5)
        a = rng.integers(-16, 16, size=6)
        assert np.array_equal(mult.simulate(a), mult.multiply(a))


class TestModels:
    def test_latency_cycles_eq5(self, rng):
        matrix = rng.integers(-128, 128, size=(64, 64))
        mult = FixedMatrixMultiplier(matrix)
        assert mult.latency_cycles() == 8 + 8 + 6 + 2

    def test_batch_cycles_linear(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        assert mult.batch_cycles(4) == 4 * mult.latency_cycles()

    def test_fmax_within_device_limits(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        assert 0 < mult.fmax_hz() <= 600e6

    def test_latency_consistency(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        assert mult.latency_ns() == pytest.approx(mult.latency_s() * 1e9)
        assert mult.latency_s(batch=3) == pytest.approx(3 * mult.latency_s())

    def test_pipelined_mode_adds_cycles_or_speed(self, rng):
        """The Sec. VIII broadcast pipelining trades cycles for frequency."""
        matrix = rng.integers(-128, 128, size=(64, 64))
        mult = FixedMatrixMultiplier(matrix)
        plain = mult.timing_estimate(pipelined=False)
        piped = mult.timing_estimate(pipelined=True)
        assert piped.fmax_hz >= plain.fmax_hz
        assert piped.extra_pipeline_cycles >= plain.extra_pipeline_cycles

    def test_power_positive_and_bounded(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        assert 0 < mult.power_w() < 200

    def test_fits_device(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix, device=XCVU13P)
        assert mult.fits_device()

    def test_resources_cached(self, small_signed_matrix):
        mult = FixedMatrixMultiplier(small_signed_matrix)
        assert mult.resources is mult.resources


class TestSchemeComparison:
    def test_csd_no_worse_than_pn(self, rng):
        matrix = rng.integers(-128, 128, size=(24, 24))
        pn = FixedMatrixMultiplier(matrix, scheme="pn")
        csd = FixedMatrixMultiplier(matrix, scheme="csd", rng=rng)
        assert csd.ones <= pn.ones
        assert csd.resources.luts <= pn.resources.luts

    def test_schemes_compute_identically(self, rng):
        matrix = rng.integers(-128, 128, size=(12, 12))
        a = rng.integers(-128, 128, size=12)
        pn = FixedMatrixMultiplier(matrix, scheme="pn")
        csd = FixedMatrixMultiplier(matrix, scheme="csd", rng=rng)
        assert np.array_equal(pn.multiply(a), csd.multiply(a))
        assert np.array_equal(pn.simulate(a), csd.simulate(a))


class TestVerilogExport:
    def test_to_verilog_emits_module(self, rng):
        matrix = rng.integers(-4, 5, size=(3, 3))
        text = FixedMatrixMultiplier(matrix, input_width=4).to_verilog("mymat")
        assert "module mymat" in text
        assert "endmodule" in text
