"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; reseeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_signed_matrix(rng) -> np.ndarray:
    """An 8x6 signed 8-bit matrix with some zeros."""
    matrix = rng.integers(-128, 128, size=(8, 6))
    matrix[rng.random((8, 6)) < 0.3] = 0
    return matrix


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (gate-level sims of larger matrices)"
    )
