"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

#: Per-test wall-clock ceiling (seconds) for the fallback watchdog
#: below.  The cluster/serve suites exercise sockets, drains, and
#: condition-variable waits, where a regression's natural failure mode
#: is a hang, not an assertion — a hung test must fail, not wedge the
#: run.  Override with ``REPRO_TEST_TIMEOUT_S=0`` to disable.
DEFAULT_TEST_TIMEOUT_S = 120.0


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; reseeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_signed_matrix(rng) -> np.ndarray:
    """An 8x6 signed 8-bit matrix with some zeros."""
    matrix = rng.integers(-128, 128, size=(8, 6))
    matrix[rng.random((8, 6)) < 0.3] = 0
    return matrix


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (gate-level sims of larger matrices)"
    )
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit (pytest-timeout "
        "syntax; honored by the SIGALRM fallback when the plugin is absent)",
    )


def _fallback_timeout_active(config) -> bool:
    """True when this conftest should arm its own per-test watchdog.

    CI installs ``pytest-timeout`` and passes ``--timeout``; when that
    plugin is present it owns the job and this fallback stays inert.
    The fallback also needs ``SIGALRM`` (main thread, POSIX), so
    platforms without it simply run unguarded — same as before.
    """
    if config.pluginmanager.hasplugin("timeout"):
        return False
    return hasattr(signal, "SIGALRM")


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if not _fallback_timeout_active(item.config):
        return (yield)
    limit = float(os.environ.get("REPRO_TEST_TIMEOUT_S", DEFAULT_TEST_TIMEOUT_S))
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        limit = float(marker.args[0])
    if limit <= 0:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:g}s fallback timeout "
            "(REPRO_TEST_TIMEOUT_S / @pytest.mark.timeout to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
