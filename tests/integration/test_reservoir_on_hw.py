"""Integration: a quantized reservoir solving a task on the compiled hardware.

This is the paper's whole pitch in one test: build an ESN, quantize it,
compile its recurrent matrix to the spatial bit-serial architecture, run
the task with every recurrent product on the (simulated) hardware, and
confirm both bit-exactness against software and useful task accuracy.
"""

import numpy as np
import pytest

from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.metrics import nrmse
from repro.reservoir.quantize import quantize_esn
from repro.reservoir.readout import RidgeReadout
from repro.reservoir.tasks import narma10
from repro.reservoir.weights import random_input_weights, random_reservoir


@pytest.fixture(scope="module")
def quantized_reservoir():
    rng = np.random.default_rng(11)
    w = random_reservoir(100, element_sparsity=0.8, rng=rng)
    w_in = random_input_weights(100, 1, rng=rng)
    return quantize_esn(w, w_in, weight_width=6, state_width=8)


class TestHardwareTaskRun:
    def test_narma_on_hardware_multiplier(self, quantized_reservoir):
        esn = quantized_reservoir
        hw = HardwareESN(esn, scheme="csd", backend="functional")
        data = narma10(1200, np.random.default_rng(0))
        u_q = esn.quantize_inputs(2.0 * data.inputs - 0.5)  # map [0,0.5] -> [-1,0]
        washout = 50
        hw_states = hw.run(u_q, washout=washout).astype(float)
        sw_states = esn.run(u_q, washout=washout).astype(float)

        # Bit-exact agreement between hardware and software reservoirs.
        assert np.array_equal(hw_states, sw_states)

        # And the harvested states actually solve the task.
        targets = data.targets[washout:]
        cut = int(len(hw_states) * 0.7)
        readout = RidgeReadout(alpha=1e-4).fit(hw_states[:cut], targets[:cut])
        error = nrmse(readout.predict(hw_states[cut:]), targets[cut:])
        assert error < 0.75  # integer reservoir, modest size: beats mean predictor

    def test_hardware_reports_deployment_metrics(self, quantized_reservoir):
        hw = HardwareESN(quantized_reservoir, scheme="csd")
        mult = hw.multiplier
        assert mult.fits_device()
        # A 100-dim reservoir is tiny on the XCVU13P: single SLR, fast clock.
        estimate = mult.timing_estimate()
        assert estimate.slr_span == 1
        assert estimate.fmax_hz > 400e6
        # One reservoir step (the recurrent gemv) in tens of nanoseconds.
        assert hw.step_latency_s() < 100e-9


class TestGateLevelReservoirStep:
    def test_tiny_reservoir_single_step_on_gates(self):
        """One full reservoir update with the recurrent product computed by
        the gate-level simulator, cross-checked against software."""
        rng = np.random.default_rng(21)
        w = random_reservoir(10, element_sparsity=0.7, rng=rng)
        w_in = random_input_weights(10, 1, rng=rng)
        esn = quantize_esn(w, w_in, weight_width=5, state_width=6)
        hw = HardwareESN(esn, scheme="pn", backend="gates")
        state = rng.integers(-31, 32, size=10)
        u = np.array([12])
        assert np.array_equal(hw.step(state, u), esn.step(state, u))
