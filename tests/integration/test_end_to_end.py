"""Full-stack integration: every view of one matrix must agree.

For a single compiled matrix this exercises, in one pass: the functional
multiplier, the cycle-accurate gate simulator, the emitted RTL (executed
with RTL semantics), the combinatorial census, the technology mapping, the
timing/power models, and the CSR reference — all of which must be
mutually consistent.
"""

import numpy as np
import pytest

from repro.baselines.reference import csr_gemv, to_csr
from repro.core.bits import from_twos_complement_bits, sign_extended_stream
from repro.core.multiplier import FixedMatrixMultiplier
from repro.fpga.mapping import map_census, map_netlist
from repro.rtl.interp import parse_module


@pytest.mark.parametrize("scheme", ["pn", "csd"])
class TestEverythingAgrees:
    def test_one_matrix_all_views(self, rng, scheme):
        matrix = rng.integers(-128, 128, size=(12, 9))
        matrix[rng.random((12, 9)) < 0.6] = 0
        mult = FixedMatrixMultiplier(matrix, input_width=8, scheme=scheme, rng=rng)
        vector = rng.integers(-128, 128, size=12)
        golden = vector @ matrix

        # 1. Functional path.
        assert np.array_equal(mult.multiply(vector), golden)

        # 2. CSR reference.
        assert np.array_equal(csr_gemv(to_csr(matrix), vector), golden)

        # 3. Cycle-accurate gate simulation.
        circuit = mult.build_circuit()
        assert np.array_equal(circuit.multiply(vector), golden)

        # 4. Census == netlist mapping.
        assert map_census(mult.census, mult.mapping) == map_netlist(
            circuit, mult.mapping
        )
        assert mult.resources.luts > 0

        # 5. Emitted RTL executed with RTL semantics.
        module = parse_module(mult.to_verilog())
        run = circuit.run_cycles
        streams = [sign_extended_stream(int(v), 8, run) for v in vector]
        outs = []
        for cycle in range(run):
            module.clock([streams[r][cycle] for r in range(12)])
            outs.append(module.out_bits())
        delta = circuit.decode_delta - 1
        width = mult.plan.result_width
        rtl_result = np.array(
            [
                from_twos_complement_bits([outs[delta + k][j] for k in range(width)])
                for j in range(9)
            ]
        )
        assert np.array_equal(rtl_result, golden)

        # 6. Models produce plausible physics.
        assert 0 < mult.fmax_hz() <= 600e6
        assert mult.latency_ns() > 0
        assert mult.power_w() >= 12.0


class TestLatencyModelVsSimulator:
    def test_simulated_latency_close_to_eq5(self, rng):
        """The measured first-in to last-out cycle count tracks Eq. 5.

        The compact tree can finish *earlier* than Eq. 5 predicts (its
        depth is log2 of the live taps, not of all rows), and serial
        decode waits for the exact result width rather than the model's
        nominal accounting, so we check the model brackets reality within
        the result-width slack.
        """
        matrix = rng.integers(-128, 128, size=(32, 8))
        mult = FixedMatrixMultiplier(matrix, input_width=8)
        circuit = mult.build_circuit()
        measured = circuit.run_cycles
        model = mult.latency_cycles()
        assert abs(measured - model) <= mult.plan.result_width

    def test_padded_tree_matches_eq5_structure(self, rng):
        """With the paper-literal padded tree, decode depth is exactly
        log2(rows) + 2, matching Eq. 5's structural terms."""
        matrix = rng.integers(-8, 8, size=(64, 4))
        mult = FixedMatrixMultiplier(matrix, input_width=4, tree_style="padded")
        circuit = mult.build_circuit()
        assert circuit.decode_delta == 6 + 2


class TestScaleSweep:
    @pytest.mark.parametrize("dim", [4, 16, 64])
    def test_increasing_scale_consistency(self, rng, dim):
        matrix = rng.integers(-16, 16, size=(dim, dim))
        matrix[rng.random((dim, dim)) < 0.8] = 0
        mult = FixedMatrixMultiplier(matrix, input_width=6, scheme="csd", rng=rng)
        vector = rng.integers(-32, 32, size=dim)
        assert np.array_equal(mult.multiply(vector), vector @ matrix)
        if dim <= 16:
            assert np.array_equal(mult.simulate(vector), vector @ matrix)
