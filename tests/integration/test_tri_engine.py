"""Tri-engine equivalence: object sim, vectorized sim, and emitted RTL.

One matrix, three independent executions of the same circuit.  Any
disagreement anywhere means a real bug in one of the engines, the
emitter, or the decode schedule — this is the strongest single check in
the repository.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bits import from_twos_complement_bits, sign_extended_stream
from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit
from repro.rtl.emitter import emit_verilog_from_circuit
from repro.rtl.interp import parse_module


def run_all_engines(matrix, vector, input_width, scheme, tree_style, seed=0):
    plan = plan_matrix(
        np.asarray(matrix),
        input_width=input_width,
        scheme=scheme,
        rng=np.random.default_rng(seed),
        tree_style=tree_style,
    )
    circuit = build_circuit(plan)
    object_result = circuit.multiply(vector)
    fast_result = FastCircuit.from_compiled(circuit).multiply(vector)
    module = parse_module(emit_verilog_from_circuit(circuit))
    run = circuit.run_cycles
    streams = [sign_extended_stream(int(v), input_width, run) for v in vector]
    outs = []
    for cycle in range(run):
        module.clock([streams[r][cycle] for r in range(plan.rows)])
        outs.append(module.out_bits())
    delta = circuit.decode_delta - 1
    width = plan.result_width
    rtl_result = np.array(
        [
            from_twos_complement_bits([outs[delta + k][j] for k in range(width)])
            for j in range(plan.cols)
        ]
    )
    return object_result, fast_result, rtl_result


class TestTriEngine:
    @pytest.mark.parametrize("scheme", ["pn", "csd", "naf"])
    def test_three_engines_agree(self, rng, scheme):
        matrix = rng.integers(-32, 32, size=(8, 6))
        matrix[rng.random((8, 6)) < 0.5] = 0
        vector = rng.integers(-32, 32, size=8)
        golden = vector @ matrix
        obj, fast, rtl = run_all_engines(matrix, vector, 6, scheme, "compact")
        assert np.array_equal(obj, golden)
        assert np.array_equal(fast, golden)
        assert np.array_equal(rtl, golden)

    def test_padded_style_too(self, rng):
        matrix = rng.integers(-8, 8, size=(6, 4))
        vector = rng.integers(-8, 8, size=6)
        golden = vector @ matrix
        for result in run_all_engines(matrix, vector, 4, "pn", "padded"):
            assert np.array_equal(result, golden)


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(1, 7),
    cols=st.integers(1, 7),
    input_width=st.integers(1, 6),
)
@settings(max_examples=15, deadline=None)
def test_tri_engine_property(seed, rows, cols, input_width):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-16, 16, size=(rows, cols))
    ilo = -(1 << (input_width - 1))
    vector = rng.integers(ilo, -ilo, size=rows)
    golden = vector @ matrix
    scheme = ("pn", "csd", "naf")[seed % 3]
    style = ("compact", "padded")[seed % 2]
    for result in run_all_engines(matrix, vector, input_width, scheme, style, seed):
        assert np.array_equal(result, golden)
