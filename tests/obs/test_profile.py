"""StageProfiler: binning semantics, merging, Prometheus rendering."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs.metrics import to_prometheus
from repro.obs.profile import DEFAULT_EDGES, STAGE_SPECIFICITY, StageProfiler


class TestRecording:
    def test_le_bucket_semantics(self):
        # An exact edge hit belongs to that bucket (Prometheus `le`).
        prof = StageProfiler(edges=[0.001, 0.01, 0.1])
        prof.record("wire", 0.001)
        prof.record("wire", 0.0011)
        prof.record("wire", 5.0)  # overflow -> +Inf bucket
        (entry,) = prof.snapshot()["stages"]
        assert entry["counts"] == [1, 1, 0, 1]
        assert entry["count"] == 3

    def test_record_many_matches_repeated_record(self):
        durations = [1e-6, 3e-4, 0.002, 0.002, 0.7, 20.0]
        one = StageProfiler()
        many = StageProfiler()
        for d in durations:
            one.record("coalesce", d, variant="fused:dense")
        many.record_many("coalesce", durations, variant="fused:dense")
        assert one.snapshot() == many.snapshot()

    def test_record_many_of_nothing_is_a_noop(self):
        prof = StageProfiler()
        prof.record_many("queue_wait", [])
        assert prof.snapshot()["stages"] == []
        assert prof.stats()["samples"] == 0

    def test_variants_are_separate_series(self):
        prof = StageProfiler()
        prof.record("server_execute", 0.01, variant="fused:dense")
        prof.record("server_execute", 0.01, variant="bitplane")
        stages = prof.snapshot()["stages"]
        assert [(e["stage"], e["variant"]) for e in stages] == [
            ("server_execute", "bitplane"),
            ("server_execute", "fused:dense"),
        ]
        assert prof.stats() == {
            "series": 2, "samples": 2, "buckets": DEFAULT_EDGES.size + 1,
        }

    def test_edges_must_be_increasing(self):
        with pytest.raises(ValueError, match="increasing"):
            StageProfiler(edges=[0.1, 0.1, 0.2])
        with pytest.raises(ValueError, match="non-empty"):
            StageProfiler(edges=[])

    def test_concurrent_recording_loses_nothing(self):
        prof = StageProfiler()

        def pound():
            for _ in range(500):
                prof.record("queue_wait", 0.001)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (entry,) = prof.snapshot()["stages"]
        assert entry["count"] == 2000
        assert sum(entry["counts"]) == 2000


class TestMerge:
    def test_merge_adds_compatible_snapshots(self):
        a, b = StageProfiler(), StageProfiler()
        a.record("wire", 0.003, variant="fused:dense")
        b.record("wire", 0.003, variant="fused:dense")
        b.record("server_execute", 0.001)
        merged = StageProfiler.merge([a.snapshot(), b.snapshot()])
        totals = StageProfiler.stage_totals(merged)
        assert totals["wire"]["count"] == 2
        assert totals["wire"]["sum"] == pytest.approx(0.006)
        assert totals["server_execute"]["count"] == 1
        assert "skipped" not in merged

    def test_merge_skips_mismatched_edges(self):
        a = StageProfiler()
        a.record("wire", 0.003)
        alien = StageProfiler(edges=[0.5, 1.0])
        alien.record("wire", 0.7)
        merged = StageProfiler.merge([a.snapshot(), alien.snapshot()])
        assert merged["skipped"] == 1
        assert StageProfiler.stage_totals(merged)["wire"]["count"] == 1

    def test_merge_of_nothing_is_none(self):
        assert StageProfiler.merge([]) is None
        assert StageProfiler.merge([{"not": "a snapshot"}, None]) is None

    def test_stage_totals_sums_across_variants(self):
        prof = StageProfiler()
        prof.record("shard_dispatch", 0.01, variant="fused:dense")
        prof.record("shard_dispatch", 0.03, variant="bitplane")
        totals = StageProfiler.stage_totals(prof.snapshot())
        assert totals["shard_dispatch"]["count"] == 2
        assert totals["shard_dispatch"]["sum"] == pytest.approx(0.04)
        assert StageProfiler.stage_totals(None) == {}

    def test_specificity_orders_the_pipeline(self):
        order = ["request", "queue_wait", "shard_dispatch", "wire",
                 "server_execute"]
        ranks = [STAGE_SPECIFICITY[s] for s in order]
        assert ranks == sorted(ranks)
        assert STAGE_SPECIFICITY["server_execute"] > STAGE_SPECIFICITY["wire"]


class TestPrometheusHistogram:
    def test_renders_cumulative_buckets(self):
        prof = StageProfiler(edges=[0.001, 0.01])
        prof.record("wire", 0.0005, variant="fused:dense")
        prof.record("wire", 0.005, variant="fused:dense")
        prof.record("wire", 3.0, variant="fused:dense")
        text = to_prometheus({"profile": prof.snapshot()})
        assert "# TYPE repro_stage_duration_seconds histogram" in text
        assert (
            'repro_stage_duration_seconds_bucket{le="0.001",stage="wire",'
            'variant="fused:dense"} 1' in text
        )
        assert (
            'repro_stage_duration_seconds_bucket{le="0.01",stage="wire",'
            'variant="fused:dense"} 2' in text
        )
        assert (
            'repro_stage_duration_seconds_bucket{le="+Inf",stage="wire",'
            'variant="fused:dense"} 3' in text
        )
        assert (
            'repro_stage_duration_seconds_count{stage="wire",'
            'variant="fused:dense"} 3' in text
        )
        # One TYPE header for the whole family, buckets included.
        assert text.count("# TYPE repro_stage_duration_seconds") == 1

    def test_default_edges_cover_microseconds_to_seconds(self):
        assert DEFAULT_EDGES[0] == pytest.approx(1e-5)
        assert DEFAULT_EDGES[-1] == pytest.approx(10.0)
        assert np.all(np.diff(DEFAULT_EDGES) > 0)
