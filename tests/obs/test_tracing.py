"""Tracing unit tests: span records, collector bounds, tree assembly."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    span_tree,
    trace_meta,
    tree_stages,
)


def _span(trace="t1", sid="s1", parent=None, stage="request", start=1.0):
    return Span(
        trace_id=trace,
        span_id=sid,
        parent_id=parent,
        stage=stage,
        start_s=start,
        duration_s=0.5,
    )


class TestSpanRecords:
    def test_dict_round_trip(self):
        span = _span()
        span.attrs["engine"] = "fused"
        again = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert again == span

    def test_context_to_meta_is_the_wire_form(self):
        ctx = _span().context
        assert ctx == SpanContext("t1", "s1")
        assert ctx.to_meta() == {"trace_id": "t1", "span_id": "s1"}
        assert trace_meta(ctx) == {"trace_id": "t1", "span_id": "s1"}
        assert trace_meta(None) is None

    @pytest.mark.parametrize(
        "garbage",
        [
            {},
            {"trace_id": "t"},
            {"trace_id": "t", "span_id": "s", "parent_id": None,
             "stage": "x", "start_s": "soon", "duration_s": 0.0},
            {"trace_id": "t", "span_id": "s", "parent_id": None,
             "stage": "x", "start_s": 0.0, "duration_s": 0.0,
             "attrs": "not-a-dict"},
        ],
    )
    def test_malformed_wire_records_rejected(self, garbage):
        with pytest.raises(ValueError, match="malformed span"):
            Span.from_dict(garbage)

    def test_id_shapes(self):
        trace_id, span_id = Tracer.new_trace_id(), Tracer.new_span_id()
        assert len(trace_id) == 16 and int(trace_id, 16) >= 0
        assert len(span_id) == 8 and int(span_id, 16) >= 0
        assert Tracer.new_trace_id() != trace_id


class TestTracer:
    def test_start_span_without_parent_opens_a_fresh_trace(self):
        tracer = Tracer()
        with tracer.start_span("request", deployment="m0") as root:
            with tracer.start_span("queue_wait", parent=root.context) as child:
                pass
        spans = tracer.spans()
        assert [s.stage for s in spans] == ["queue_wait", "request"]
        child_span, root_span = spans
        assert root_span.parent_id is None
        assert child_span.parent_id == root_span.span_id
        assert child_span.trace_id == root_span.trace_id
        assert root_span.attrs["deployment"] == "m0"
        assert root_span.duration_s > 0.0

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        active = tracer.start_span("request")
        first = active.finish()
        duration = first.duration_s
        assert active.finish() is first
        assert first.duration_s == duration
        assert len(tracer.spans()) == 1

    def test_exception_annotates_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.start_span("request"):
                raise RuntimeError("shard died")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError: shard died"

    def test_record_timed_for_externally_measured_intervals(self):
        tracer = Tracer()
        parent = SpanContext("abc", "def")
        span = tracer.record_timed(
            "queue_wait", 123.0, 0.004, parent=parent, reason="deadline"
        )
        assert span.trace_id == "abc" and span.parent_id == "def"
        assert span.start_s == 123.0 and span.duration_s == 0.004
        assert tracer.spans("abc") == [span]
        # Clock skew between enqueue and flush must never go negative.
        assert tracer.record_timed("queue_wait", 0.0, -0.1).duration_s == 0.0

    def test_adopt_wire_records(self):
        tracer = Tracer()
        records = [_span(sid=f"s{i}").to_dict() for i in range(3)]
        adopted = tracer.adopt(records)
        assert [s.span_id for s in adopted] == ["s0", "s1", "s2"]
        assert len(tracer.spans("t1")) == 3
        with pytest.raises(ValueError, match="malformed span"):
            tracer.adopt([{"nope": 1}])

    def test_bounded_collector_counts_evictions(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record(_span(sid=f"s{i}"))
        stats = tracer.stats()
        assert stats == {
            "recorded": 10, "buffered": 4, "evicted": 6, "capacity": 4
        }
        assert [s.span_id for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_trace_ids_and_clear(self):
        tracer = Tracer()
        tracer.record(_span(trace="t2", sid="a"))
        tracer.record(_span(trace="t1", sid="b"))
        tracer.record(_span(trace="t2", sid="c"))
        assert tracer.trace_ids() == ["t2", "t1"]
        tracer.clear()
        assert tracer.spans() == []

    def test_to_jsonl(self):
        tracer = Tracer()
        tracer.record(_span())
        (line,) = tracer.to_jsonl().splitlines()
        assert json.loads(line)["stage"] == "request"

    def test_concurrent_recording_is_exact(self):
        tracer = Tracer(capacity=10_000)
        threads_n, per_thread = 8, 500

        def work(k: int) -> None:
            for i in range(per_thread):
                tracer.record(_span(trace=f"t{k}", sid=f"{k}:{i}"))

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = tracer.stats()
        assert stats["recorded"] == threads_n * per_thread
        assert stats["buffered"] == threads_n * per_thread
        assert stats["evicted"] == 0


class TestSpanTree:
    def test_assembles_parent_child_links(self):
        spans = [
            _span(sid="root", stage="request", start=1.0),
            _span(sid="q", parent="root", stage="queue_wait", start=1.1),
            _span(sid="c", parent="root", stage="coalesce", start=1.2),
            _span(sid="d", parent="c", stage="shard_dispatch", start=1.3),
        ]
        (tree,) = span_tree(spans)
        assert tree["span"].span_id == "root"
        assert [n["span"].span_id for n in tree["children"]] == ["q", "c"]
        assert tree["children"][1]["children"][0]["span"].span_id == "d"
        assert tree_stages(tree) == {
            "request", "queue_wait", "coalesce", "shard_dispatch"
        }

    def test_children_ordered_by_start_time(self):
        spans = [
            _span(sid="b", parent="root", start=2.0),
            _span(sid="root", start=0.0),
            _span(sid="a", parent="root", start=1.0),
        ]
        (tree,) = span_tree(spans)
        assert [n["span"].span_id for n in tree["children"]] == ["a", "b"]

    def test_orphans_become_roots(self):
        # A truncated collector window (parent evicted) must still
        # assemble instead of dropping the surviving subtree.
        spans = [
            _span(sid="d", parent="evicted", stage="shard_dispatch"),
            _span(sid="w", parent="d", stage="wire", start=2.0),
        ]
        (tree,) = span_tree(spans)
        assert tree["span"].span_id == "d"
        assert tree_stages(tree) == {"shard_dispatch", "wire"}

    def test_self_parent_cannot_loop(self):
        (tree,) = span_tree([_span(sid="x", parent="x")])
        assert tree["span"].span_id == "x" and tree["children"] == []
