"""Fleet metrics: rollup math, Prometheus rendering, top helpers."""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.obs.metrics import FleetMetrics, to_prometheus
from repro.obs.profile import StageProfiler
from repro.obs.top import parse_endpoints, render_table
from repro.serve import CompileCache, MatMulService


def _doc():
    """A synthetic collected document with every section populated."""
    return {
        "collected_at": 1.0,
        "service": {
            "deployments": {
                "m0": {
                    "uptime_s": 10.0,
                    "requests": 100,
                    "products": 120,
                    "batches": 30,
                    "swaps": 2,
                    "throughput_rps": 12.0,
                    "throughput_rps_windowed": 4.0,
                    "arrival_rate_rps": 3.5,
                    "lane_occupancy": 0.75,
                    "latency_s": {"p50": 0.001, "p99": 0.004, "p99_9": 0.009},
                    "engine": {"batches": {"fused": 25, "bitplane": 5}},
                    "shards": {
                        "per_shard": [
                            {"shard": 0, "busy_s": 0.5, "calls": 30,
                             "healthy": True, "endpoint": "h:1",
                             "local_fallbacks": 0},
                            {"shard": 1, "busy_s": 0.4, "calls": 30,
                             "healthy": False, "endpoint": "h:2",
                             "local_fallbacks": 7},
                        ]
                    },
                },
                "m1": {
                    "requests": 10, "products": 10, "batches": 10,
                    "arrival_rate_rps": 0.5,
                    "throughput_rps_windowed": 0.5,
                    "engine": {"batches": {"fused": 10}},
                    "shards": {"per_shard": [{"shard": 0, "busy_s": 0.1,
                                              "calls": 10}]},
                },
            },
            "cache": {"hits": 5, "kernel_hits": 2, "disk_hits": 1, "misses": 3},
            "observability": {
                "tracer": {"recorded": 77},
                "flight_recorder": {"recorded": 9},
            },
        },
        "servers": [
            {"endpoint": "h:1", "name": "srv-a", "uptime_s": 9.0,
             "executes": 30, "loads": 2, "errors": 0,
             "engine_batches": {"fused": 30}},
            {"endpoint": "h:2", "error": "connection refused"},
        ],
    }


class TestRollup:
    def test_rollup_sums_deployments_and_servers(self):
        doc = _doc()
        fleet = FleetMetrics._rollup(doc["service"], doc["servers"])
        assert fleet["deployments"] == 2
        assert fleet["requests"] == 110
        assert fleet["products"] == 130
        assert fleet["batches"] == 40
        assert fleet["arrival_rate_rps"] == 4.0
        assert fleet["throughput_rps_windowed"] == 4.5
        assert fleet["engine_batches"] == {"fused": 35, "bitplane": 5}
        # Only shards with a remote link carry "healthy"; the local m1
        # shard must not count as a link.
        assert fleet["remote_links"] == {
            "total": 2, "healthy": 1, "local_fallbacks": 7, "revivals": 0,
        }
        assert fleet["servers"] == {
            "configured": 2, "reachable": 1, "executes": 30, "loads": 2,
            "errors": 0, "expired_skips": 0, "auth_failures": 0,
            "engine_batches": {"fused": 30},
        }
        assert fleet["arrivals"] == 0

    def test_rollup_of_nothing(self):
        fleet = FleetMetrics._rollup(None, [])
        assert fleet["deployments"] == 0
        assert fleet["remote_links"]["total"] == 0
        assert fleet["servers"]["configured"] == 0

    def test_needs_a_service_or_endpoints(self):
        with pytest.raises(ValueError, match="service"):
            FleetMetrics()

    def test_collect_against_a_live_local_service(self):
        with MatMulService(cache=CompileCache()) as service:
            matrix = np.arange(12).reshape(4, 3) - 5
            handle = service.deploy(matrix, name="m0", shards=2)
            service.multiply(handle, np.ones((3, 4), dtype=np.int64))
            doc = FleetMetrics(service=service).collect()
        assert "collected_at" in doc
        assert "servers" not in doc  # no endpoints configured
        snap = doc["service"]["deployments"]["m0"]
        assert snap["products"] == 3
        assert doc["fleet"]["products"] == 3
        assert doc["fleet"]["servers"]["configured"] == 0
        # The document renders without needing a fleet.
        assert "repro_products_total" in to_prometheus(doc)


class TestPrometheusRendering:
    def test_families_have_help_and_type_once(self):
        text = to_prometheus(_doc())
        assert text.count("# HELP repro_requests_total ") == 1
        assert text.count("# TYPE repro_requests_total counter") == 1
        # Two deployments → two samples in the family.
        assert text.count('repro_requests_total{deployment=') == 2
        assert 'repro_requests_total{deployment="m0"} 100' in text
        assert text.endswith("\n")

    def test_latency_quantile_labels(self):
        text = to_prometheus(_doc())
        assert (
            'repro_request_latency_seconds{deployment="m0",quantile="0.5"} 0.001'
            in text
        )
        assert (
            'repro_request_latency_seconds{deployment="m0",quantile="0.999"} 0.009'
            in text
        )

    def test_shard_and_server_samples(self):
        text = to_prometheus(_doc())
        assert (
            'repro_shard_healthy{deployment="m0",endpoint="h:2",shard="1"} 0'
            in text
        )
        assert (
            'repro_shard_local_fallbacks_total{deployment="m0",shard="1"} 7'
            in text
        )
        assert 'repro_server_up{endpoint="h:1"} 1' in text
        assert 'repro_server_up{endpoint="h:2"} 0' in text
        assert (
            'repro_server_executes_total{endpoint="h:1",server="srv-a"} 30'
            in text
        )

    def test_observability_and_cache_counters(self):
        text = to_prometheus(_doc())
        assert "repro_tracer_spans_total 77" in text
        assert "repro_flight_recorder_events_total 9" in text
        assert 'repro_compile_cache_lookups_total{outcome="misses"} 3' in text

    def test_fleet_gauges(self):
        doc = _doc()
        doc["fleet"] = FleetMetrics._rollup(doc["service"], doc["servers"])
        text = to_prometheus(doc)
        assert "repro_fleet_remote_links 2" in text
        assert "repro_fleet_remote_links_healthy 1" in text
        assert "repro_fleet_servers_reachable 1" in text

    def test_label_values_escaped(self):
        doc = {
            "servers": [
                {"endpoint": 'h"1\n', "error": "x"},
            ]
        }
        text = to_prometheus(doc)
        assert 'repro_server_up{endpoint="h\\"1\\n"} 0' in text

    def test_integer_valued_samples_render_without_decimal_point(self):
        text = to_prometheus(_doc())
        assert "repro_requests_total{deployment=\"m1\"} 10\n" in text
        assert 'repro_lane_occupancy{deployment="m0"} 0.75' in text


class TestTopHelpers:
    def test_parse_endpoints(self):
        assert parse_endpoints("hostA:9401, hostB:9402,") == [
            ("hostA", 9401), ("hostB", 9402),
        ]

    @pytest.mark.parametrize("bad", ["", "host", "host:", ":9401", "h:port"])
    def test_parse_endpoints_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_endpoints(bad)

    def test_render_table_shows_up_and_down_rows(self):
        doc = _doc()
        doc["fleet"] = FleetMetrics._rollup(doc["service"], doc["servers"])
        table = render_table(doc)
        lines = table.splitlines()
        assert lines[0].startswith("FLEET  1/2 up")
        assert "executes 30" in lines[0]
        assert any("srv-a" in line and "up" in line for line in lines)
        assert any("h:2" in line and "DOWN" in line for line in lines)

    def test_render_table_with_rates_and_slo_lines(self):
        doc = _doc()
        doc["fleet"] = FleetMetrics._rollup(doc["service"], doc["servers"])
        doc["slo"] = [
            {"slo": "avail", "firing": True, "offending_stage": "wire",
             "burn_fast": 4.0, "burn_slow": 2.5,
             "error_budget_remaining": 0.25},
            {"slo": "lat", "firing": False, "burn_fast": 0.0,
             "burn_slow": None, "error_budget_remaining": 1.0},
        ]
        table = render_table(doc, rates={"h:1": 12.5})
        lines = table.splitlines()
        assert "exec/s 12.5" in lines[0]
        assert "EXEC/s" in lines[1]
        assert any("h:1" in line and "12.5" in line for line in lines)
        assert any(
            line.startswith("SLO avail  FIRING stage=wire") for line in lines
        )
        assert any(
            line.startswith("SLO lat  OK") and "slow=-" in line
            for line in lines
        )


class TestParallelScrape:
    def test_hung_endpoints_cost_one_timeout_not_one_each(self):
        # Listening sockets that never answer: each scrape connects
        # (the backlog accepts it) and then times out waiting for the
        # HELLO reply.  Three of them must cost ~one timeout wall-clock,
        # not three — the scrapes run on one thread per endpoint.
        socks = []
        try:
            for _ in range(3):
                sock = socket.socket()
                sock.bind(("127.0.0.1", 0))
                sock.listen(1)
                socks.append(sock)
            endpoints = [s.getsockname() for s in socks]
            metrics = FleetMetrics(endpoints=endpoints, timeout_s=0.5)
            start = time.perf_counter()
            reports = metrics.scrape_servers()
            elapsed = time.perf_counter() - start
        finally:
            for sock in socks:
                sock.close()
        assert [r["endpoint"] for r in reports] == [
            f"{h}:{p}" for h, p in endpoints
        ]
        assert all("error" in r for r in reports)
        # Serial scraping would take >= 1.5s here; leave generous slack
        # for slow CI while still distinguishing the two shapes.
        assert elapsed < 1.2


class TestHostileLabels:
    def test_engine_label_round_trips_escaped(self):
        hostile = 'fused:"evil"\\variant\nnewline'
        doc = {
            "servers": [
                {"endpoint": "h:1", "name": hostile, "executes": 1,
                 "engine_batches": {hostile: 1}},
            ]
        }
        text = to_prometheus(doc)
        escaped = 'fused:\\"evil\\"\\\\variant\\nnewline'
        assert f'engine="{escaped}"' in text
        assert f'server="{escaped}"' in text
        # The raw newline must never split an exposition line: every
        # line is either a comment or starts with a metric name.
        assert all(
            line.startswith(("#", "repro_"))
            for line in text.splitlines()
            if line
        )


class TestProfileCollection:
    def test_collect_merges_service_profiler(self):
        import asyncio

        profiler = StageProfiler()
        with MatMulService(cache=CompileCache(), profiler=profiler) as service:
            matrix = np.arange(12).reshape(4, 3) - 5
            handle = service.deploy(matrix, name="m0", shards=2)
            asyncio.run(
                service.submit(handle, np.arange(4, dtype=np.int64))
            )
            doc = FleetMetrics(service=service).collect()
        stages = {e["stage"] for e in doc["profile"]["stages"]}
        assert {"queue_wait", "coalesce", "shard_dispatch"} <= stages
        obs = doc["service"]["observability"]["profiler"]
        assert obs["samples"] >= 3
        text = to_prometheus(doc)
        assert "# TYPE repro_stage_duration_seconds histogram" in text
        assert 'repro_stage_duration_seconds_bucket{le="+Inf"' in text

    def test_collect_without_profiler_has_no_profile_section(self):
        with MatMulService(cache=CompileCache()) as service:
            service.deploy(np.eye(3, dtype=np.int64), name="m0")
            doc = FleetMetrics(service=service).collect()
        assert "profile" not in doc
