"""MetricsHistory: ring, windowed queries, persistence, sampler loop."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.history import MetricsHistory


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class SequenceMetrics:
    """collect() replays a scripted list of documents (last one sticks)."""

    def __init__(self, docs):
        self.docs = list(docs)
        self.calls = 0

    def collect(self):
        doc = self.docs[min(self.calls, len(self.docs) - 1)]
        self.calls += 1
        return doc


def _doc(executes=0, sheds=0, p99=0.001, arrivals=0):
    return {
        "service": {
            "deployments": {
                "m0": {"latency_s": {"p50": p99 / 2, "p99": p99}},
            },
        },
        "fleet": {
            "arrivals": arrivals,
            "shed": {"queue_full": sheds},
            "servers": {"executes": executes, "errors": 0},
        },
    }


class TestRing:
    def test_capacity_must_allow_deltas(self):
        with pytest.raises(ValueError, match="capacity"):
            MetricsHistory(SequenceMetrics([{}]), capacity=1)

    def test_ring_drops_oldest(self):
        clock = FakeClock()
        history = MetricsHistory(
            SequenceMetrics([_doc(executes=k) for k in range(5)]),
            capacity=3,
            clock=clock,
        )
        for _ in range(5):
            history.sample()
            clock.advance(1.0)
        assert len(history) == 3
        values = [
            MetricsHistory.value(e["doc"], "fleet.servers.executes")
            for e in history.samples()
        ]
        assert values == [2, 3, 4]

    def test_windowed_samples_use_the_clock(self):
        clock = FakeClock()
        history = MetricsHistory(SequenceMetrics([_doc()]), clock=clock)
        for _ in range(4):
            history.sample()
            clock.advance(10.0)
        assert len(history.samples()) == 4
        # clock is now 40; a 15s window keeps ts=30 only.
        assert len(history.samples(15.0)) == 1
        assert history.latest()["ts"] == 30.0


class TestQueries:
    def _history(self, docs, step=1.0):
        clock = FakeClock()
        history = MetricsHistory(SequenceMetrics(docs), clock=clock)
        for _ in docs:
            history.sample()
            clock.advance(step)
        return history

    def test_delta_and_rate(self):
        history = self._history(
            [_doc(executes=0), _doc(executes=10), _doc(executes=30)]
        )
        assert history.delta("fleet.servers.executes") == 30
        # Span is 2s of samples (ts 0 and 2), not the nominal window.
        assert history.rate("fleet.servers.executes") == pytest.approx(15.0)

    def test_counter_reset_clamps_to_zero(self):
        history = self._history([_doc(executes=100), _doc(executes=3)])
        assert history.delta("fleet.servers.executes") == 0.0

    def test_single_sample_has_no_delta(self):
        history = self._history([_doc(executes=5)])
        assert history.delta("fleet.servers.executes") is None
        assert history.rate("fleet.servers.executes") is None

    def test_missing_path_is_skipped(self):
        history = self._history([_doc(), _doc()])
        assert history.series("fleet.no.such.counter") == []
        assert history.delta("fleet.no.such.counter") is None

    def test_counter_rates_cover_every_fleet_leaf(self):
        history = self._history(
            [_doc(executes=0, sheds=0), _doc(executes=20, sheds=4)],
            step=2.0,
        )
        rates = history.counter_rates()
        assert rates["fleet.servers.executes"] == pytest.approx(10.0)
        assert rates["fleet.shed.queue_full"] == pytest.approx(2.0)
        assert rates["fleet.servers.errors"] == 0.0

    def test_percentile_series_takes_worst_deployment(self):
        doc = _doc(p99=0.002)
        doc["service"]["deployments"]["m1"] = {
            "latency_s": {"p99": 0.009}
        }
        history = self._history([doc, doc])
        series = history.percentile_series()
        assert [v for _, v in series] == [0.009, 0.009]
        only_m0 = history.percentile_series(deployment="m0")
        assert [v for _, v in only_m0] == [0.002, 0.002]
        assert history.percentile_series(deployment="absent") == []


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        history = MetricsHistory(
            SequenceMetrics([_doc(executes=k) for k in range(3)]),
            clock=FakeClock(100.0),
        )
        for _ in range(3):
            history.sample()
        path = tmp_path / "history.jsonl"
        assert history.dump_jsonl(path) == 3
        reloaded = MetricsHistory(SequenceMetrics([{}]))
        assert reloaded.load_jsonl(path) == 3
        assert [
            MetricsHistory.value(e["doc"], "fleet.servers.executes")
            for e in reloaded.samples()
        ] == [0, 1, 2]

    def test_malformed_lines_raise(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            MetricsHistory(SequenceMetrics([{}])).load_jsonl(path)
        path.write_text(json.dumps({"ts": 1.0}) + "\n")
        with pytest.raises(ValueError, match="'ts' and 'doc'"):
            MetricsHistory(SequenceMetrics([{}])).load_jsonl(path)


class TestSampler:
    def test_listeners_fire_per_sample(self):
        seen = []
        history = MetricsHistory(
            SequenceMetrics([_doc()]), on_sample=[seen.append]
        )
        history.add_listener(seen.append)
        entry = history.sample()
        assert seen == [entry, entry]

    def test_background_loop_survives_collect_errors(self):
        class Flaky:
            calls = 0

            def collect(self):
                self.calls += 1
                if self.calls % 2:
                    raise ConnectionError("fleet mid-restart")
                return _doc()

        with MetricsHistory(Flaky()) as history:
            history.start(interval_s=0.005)
            deadline = time.time() + 5.0
            while len(history) < 2 and time.time() < deadline:
                time.sleep(0.005)
            assert len(history) >= 2
        stats = history.stats()
        assert stats["running"] is False
        assert stats["sample_errors"] >= 1
        assert "ConnectionError" in stats["last_error"]
        history.close()  # idempotent

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_s"):
            MetricsHistory(SequenceMetrics([{}])).start(0.0)
