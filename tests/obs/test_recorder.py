"""Flight-recorder unit tests: ring bounds, dumps, thread safety."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.recorder import FlightRecorder


class TestRing:
    def test_events_carry_ts_seq_kind_and_fields(self):
        recorder = FlightRecorder(clock=lambda: 42.0)
        event = recorder.record("deploy", deployment="m0", shards=3)
        assert event == {
            "ts": 42.0, "seq": 0, "kind": "deploy",
            "deployment": "m0", "shards": 3,
        }
        assert recorder.events() == [event]
        assert recorder.events(kind="deploy") == [event]
        assert recorder.events(kind="swap") == []

    def test_ring_is_bounded_and_counts_evictions(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("tick", i=i)
        assert len(recorder) == 4
        assert [e["i"] for e in recorder.events()] == [6, 7, 8, 9]
        # seq keeps counting across evictions — gaps reveal how much
        # history the ring lost.
        assert [e["seq"] for e in recorder.events()] == [6, 7, 8, 9]
        assert recorder.stats() == {
            "recorded": 10, "buffered": 4, "evicted": 6,
            "capacity": 4, "auto_dumps": 0,
        }
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.record("deploy")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.stats()["recorded"] == 1  # lifetime counter stays


class TestDumps:
    def test_to_jsonl_oldest_first(self):
        recorder = FlightRecorder(clock=lambda: 1.0)
        recorder.record("deploy", deployment="m0")
        recorder.record("swap", deployment="m0")
        lines = [json.loads(l) for l in recorder.to_jsonl().splitlines()]
        assert [e["kind"] for e in lines] == ["deploy", "swap"]

    def test_unserializable_fields_degrade_to_str(self):
        recorder = FlightRecorder()
        recorder.record("fault_sync", campaign=object())
        (line,) = recorder.to_jsonl().splitlines()
        assert "object object" in json.loads(line)["campaign"]

    def test_dump_jsonl_writes_atomically(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("deploy")
        target = recorder.dump_jsonl(tmp_path / "box.jsonl")
        assert json.loads(target.read_text())["kind"] == "deploy"
        # No staging temp file survives the rename.
        assert [p.name for p in tmp_path.iterdir()] == ["box.jsonl"]

    def test_empty_ring_dumps_an_empty_file(self, tmp_path):
        target = FlightRecorder().dump_jsonl(tmp_path / "box.jsonl")
        assert target.read_text() == ""

    def test_auto_dump_on_configured_kind(self, tmp_path):
        path = tmp_path / "blackbox.jsonl"
        recorder = FlightRecorder(auto_dump_path=path)
        recorder.record("deploy", deployment="m0")
        assert not path.exists()  # deploy is not a trigger kind
        recorder.record("shard_unhealthy", endpoint="h:1", error="boom")
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["kind"] for e in events] == ["deploy", "shard_unhealthy"]
        assert recorder.stats()["auto_dumps"] == 1
        # The next trigger overwrites with the fuller window.
        recorder.record("shard_unhealthy", endpoint="h:2", error="boom")
        assert len(path.read_text().splitlines()) == 3
        assert recorder.stats()["auto_dumps"] == 2

    def test_auto_dump_kinds_are_configurable(self, tmp_path):
        path = tmp_path / "blackbox.jsonl"
        recorder = FlightRecorder(
            auto_dump_path=path, auto_dump_kinds=("swap",)
        )
        recorder.record("shard_unhealthy")
        assert not path.exists()
        recorder.record("swap")
        assert path.exists()

    def test_auto_dump_failure_never_raises(self, tmp_path):
        # A full disk / missing directory must not take the service down.
        recorder = FlightRecorder(auto_dump_path=tmp_path / "no" / "dir.jsonl")
        recorder.record("shard_unhealthy")
        assert len(recorder) == 1
        assert recorder.stats()["auto_dumps"] == 0


class TestThreaded:
    def test_concurrent_recorders_and_snapshotters(self, tmp_path):
        recorder = FlightRecorder(
            capacity=256, auto_dump_path=tmp_path / "box.jsonl"
        )
        threads_n, per_thread = 8, 300
        stop = threading.Event()
        errors: list[Exception] = []

        def snapshotter() -> None:
            try:
                while not stop.is_set():
                    for event in recorder.events():
                        assert "ts" in event and "seq" in event
                    recorder.to_jsonl()
                    recorder.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=snapshotter) for _ in range(2)]
        for t in readers:
            t.start()

        def work(k: int) -> None:
            for i in range(per_thread):
                kind = "shard_unhealthy" if i % 100 == 0 else "tick"
                recorder.record(kind, worker=k, i=i)

        writers = [
            threading.Thread(target=work, args=(k,)) for k in range(threads_n)
        ]
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        stats = recorder.stats()
        assert stats["recorded"] == threads_n * per_thread
        assert stats["buffered"] == 256
        # seq numbers are unique even across concurrent recorders.
        seqs = [e["seq"] for e in recorder.events()]
        assert len(set(seqs)) == len(seqs)
        # Every auto-dump produced a complete, parseable file.
        dumped = (tmp_path / "box.jsonl").read_text().splitlines()
        assert dumped and all(json.loads(line)["kind"] for line in dumped)
