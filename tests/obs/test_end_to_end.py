"""End-to-end observability: span trees and flight-recorder events
through the real serve path — local thread shards and a loopback fleet.

The acceptance claims of the obs release:

* one ``submit`` against a 3-server fleet yields a **single-trace span
  tree** covering queue-wait, coalescing, shard dispatch, the wire
  round-trip, and the server-side execute — with the server spans
  linked by *propagated* context (parented on the client's wire span
  ids), not reconstructed by timestamp;
* a trace **survives the reconnect-retry path**: a request whose first
  connection attempt dies on a stale socket completes its tree on the
  retry connection;
* shard death leaves a ``shard_unhealthy`` event and an automatic
  JSONL dump of the flight-recorder window.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.cluster import BackoffPolicy, ClusterController
from repro.obs import FlightRecorder, Tracer, span_tree, tree_stages
from repro.serve import CompileCache, MatMulService


def _matrix(seed=0, shape=(20, 18), sparsity=0.6):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-100, 101, size=shape)
    matrix[rng.random(shape) < sparsity] = 0
    return matrix


def _find(spans, stage):
    return [s for s in spans if s.stage == stage]


class TestLocalServiceTracing:
    def test_one_submit_yields_one_span_tree(self):
        tracer = Tracer()
        matrix = _matrix(1, shape=(10, 8))
        with MatMulService(cache=CompileCache(), tracer=tracer) as service:
            handle = service.deploy(matrix, name="m0", shards=2)
            vector = np.arange(10, dtype=np.int64) - 4
            row = asyncio.run(service.submit(handle, vector))
        assert np.array_equal(row, vector @ matrix)
        (trace_id,) = tracer.trace_ids()
        spans = tracer.spans(trace_id)
        (tree,) = span_tree(spans)
        root = tree["span"]
        assert root.stage == "request"
        assert root.attrs["deployment"] == "m0"
        assert root.attrs["latency_s"] > 0.0
        assert tree_stages(tree) == {
            "request", "queue_wait", "coalesce", "shard_dispatch"
        }
        (coalesce,) = _find(spans, "coalesce")
        assert coalesce.parent_id == root.span_id
        assert coalesce.attrs["lanes"] == 1
        dispatches = _find(spans, "shard_dispatch")
        assert len(dispatches) == 2  # one per shard
        assert {d.parent_id for d in dispatches} == {coalesce.span_id}
        assert {d.attrs["shard"] for d in dispatches} == {0, 1}

    def test_coalesced_requests_keep_their_own_traces(self):
        tracer = Tracer()
        matrix = _matrix(2, shape=(6, 5))
        with MatMulService(
            cache=CompileCache(), tracer=tracer, max_batch=2, max_delay_s=0.2
        ) as service:
            handle = service.deploy(matrix, name="m0", shards=1)
            vectors = np.ones((2, 6), dtype=np.int64)
            rows = asyncio.run(service.submit_many(handle, vectors))
        assert np.array_equal(rows, vectors @ matrix)
        traces = tracer.trace_ids()
        assert len(traces) == 2  # one trace per request, even coalesced
        # Exactly one coalesce span: it lives in the carrier's trace
        # and names the other trace instead of re-parenting it.
        (coalesce,) = _find(tracer.spans(), "coalesce")
        assert coalesce.attrs["lanes"] == 2
        other = [t for t in traces if t != coalesce.trace_id]
        assert coalesce.attrs["linked_traces"] == other
        # Each request still recorded its own queue_wait.
        for trace_id in traces:
            assert len(_find(tracer.spans(trace_id), "queue_wait")) == 1

    def test_untraced_service_records_nothing(self):
        matrix = _matrix(3, shape=(6, 5))
        with MatMulService(cache=CompileCache()) as service:
            handle = service.deploy(matrix, shards=1)
            asyncio.run(service.submit(handle, np.ones(6, dtype=np.int64)))
            telem = service.telemetry()
        assert "observability" not in telem

    def test_slow_request_exemplar_carries_its_trace_id(self):
        tracer = Tracer()
        recorder = FlightRecorder()
        matrix = _matrix(4, shape=(6, 5))
        with MatMulService(
            cache=CompileCache(), tracer=tracer, recorder=recorder,
            slow_request_s=0.0,  # every request is an exemplar
        ) as service:
            handle = service.deploy(matrix, name="m0", shards=1)
            asyncio.run(service.submit(handle, np.ones(6, dtype=np.int64)))
        (exemplar,) = recorder.events(kind="slow_request")
        assert exemplar["deployment"] == "m0"
        assert exemplar["latency_s"] >= exemplar["threshold_s"]
        # The exemplar's trace id pulls exactly that request's tree.
        spans = tracer.spans(exemplar["trace_id"])
        (tree,) = span_tree(spans)
        assert tree["span"].stage == "request"

    def test_lifecycle_events_reach_the_recorder(self):
        recorder = FlightRecorder()
        matrix = _matrix(5, shape=(6, 5))
        with MatMulService(cache=CompileCache(), recorder=recorder) as service:
            handle = service.deploy(matrix, name="m0", shards=1)
            service.swap(handle, matrix * 2)
            service.undeploy(handle)
        kinds = [e["kind"] for e in recorder.events()]
        assert kinds == ["deploy", "swap", "undeploy", "service_close"]
        deploy, swap, undeploy, close = recorder.events()
        assert deploy["deployment"] == "m0" and deploy["shards"] == 1
        assert swap["old_digest"] != swap["new_digest"]
        assert close["deployments"] == []  # m0 already undeployed

    def test_telemetry_reports_observability_occupancy(self):
        tracer = Tracer()
        recorder = FlightRecorder()
        matrix = _matrix(6, shape=(6, 5))
        with MatMulService(
            cache=CompileCache(), tracer=tracer, recorder=recorder
        ) as service:
            handle = service.deploy(matrix, shards=1)
            asyncio.run(service.submit(handle, np.ones(6, dtype=np.int64)))
            obs = service.telemetry()["observability"]
        assert obs["tracer"]["recorded"] == tracer.stats()["recorded"] > 0
        assert obs["flight_recorder"]["recorded"] >= 1


@pytest.fixture()
def fleet(tmp_path):
    """A 3-server loopback fleet over a fresh artifact store."""
    with ClusterController(tmp_path / "store") as controller:
        controller.start_local_fleet(3)
        yield controller


class TestFleetTracing:
    def test_one_submit_yields_a_six_stage_tree_with_server_spans(self, fleet):
        tracer = Tracer()
        matrix = _matrix()
        with fleet.remote_service(tracer=tracer) as service:
            handle = fleet.deploy_fleet(service, matrix)
            assert handle.shard_count == 3
            vector = np.arange(20, dtype=np.int64) - 9
            row = asyncio.run(service.submit(handle, vector))
        assert np.array_equal(row, vector @ matrix)
        (trace_id,) = tracer.trace_ids()
        spans = tracer.spans(trace_id)
        (tree,) = span_tree(spans)  # single root: one connected tree
        assert tree["span"].stage == "request"
        assert tree_stages(tree) == {
            "request", "queue_wait", "coalesce", "shard_dispatch",
            "wire", "server_execute",
        }
        wires = _find(spans, "wire")
        servers = _find(spans, "server_execute")
        assert len(wires) == 3 and len(servers) == 3
        # The load-bearing linkage: every server-side span is parented
        # on a *client* wire span id — context propagated through the
        # EXECUTE frame, not guessed from clocks.
        wire_ids = {w.span_id for w in wires}
        assert {s.parent_id for s in servers} <= wire_ids
        assert {s.attrs["server"] for s in servers} == {
            "local-0", "local-1", "local-2"
        }
        for span in servers:
            assert span.trace_id == trace_id
            assert span.duration_s > 0.0
            assert span.attrs["lanes"] == 1
        for wire in wires:
            assert wire.attrs["server_spans"] == 1
            assert wire.attrs["endpoint"].startswith("127.0.0.1:")

    def test_trace_survives_reconnect_retry(self, tmp_path):
        tracer = Tracer()
        recorder = FlightRecorder()
        matrix = _matrix(7, shape=(10, 8))
        vector = np.arange(10, dtype=np.int64)
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            with controller.remote_service(
                tracer=tracer, recorder=recorder
            ) as service:
                handle = controller.deploy_fleet(service, matrix, shards=1)
                asyncio.run(service.submit(handle, vector))
                # Kill and immediately restart on the same endpoint: the
                # client's pooled connection is now a dead socket, so the
                # next request must fail once and retry on a fresh one.
                controller.kill_server(0)
                controller.restart_server(0)
                row = asyncio.run(service.submit(handle, vector))
                remote = handle.sharded._remotes[0]
                assert np.array_equal(row, vector @ matrix)
                assert remote.healthy is True
        # The retried request's tree is complete — including the
        # server-side span from the *second* connection.
        trace_id = tracer.trace_ids()[-1]
        (tree,) = span_tree(tracer.spans(trace_id))
        assert "server_execute" in tree_stages(tree)
        (server_span,) = _find(tracer.spans(trace_id), "server_execute")
        (wire_span,) = _find(tracer.spans(trace_id), "wire")
        assert server_span.parent_id == wire_span.span_id
        # The retry never went unhealthy: no fallback, no death event.
        assert recorder.events(kind="local_fallback") == []
        assert recorder.events(kind="shard_unhealthy") == []

    def test_shard_death_leaves_events_and_an_auto_dump(self, tmp_path):
        recorder = FlightRecorder(auto_dump_path=tmp_path / "blackbox.jsonl")
        matrix = _matrix(8, shape=(10, 8))
        vector = np.arange(10, dtype=np.int64)
        with ClusterController(tmp_path / "store") as controller:
            controller.start_local_fleet(1)
            with controller.remote_service(
                recorder=recorder,
                probe_backoff=BackoffPolicy(
                    initial_s=0.01, multiplier=1.5, max_s=0.05, jitter=0.0
                ),
            ) as service:
                handle = controller.deploy_fleet(service, matrix, shards=1)
                asyncio.run(service.submit(handle, vector))
                controller.kill_server(0)
                # Served anyway — locally — and recorded as such.
                row = asyncio.run(service.submit(handle, vector))
                assert np.array_equal(row, vector @ matrix)
                (death,) = recorder.events(kind="shard_unhealthy")
                assert death["endpoint"].startswith("127.0.0.1:")
                assert death["error"]
                (fallback,) = recorder.events(kind="local_fallback")
                assert fallback["shard"] == 0
                # The black box dumped itself the moment the link died.
                dumped = [
                    json.loads(line)
                    for line in (tmp_path / "blackbox.jsonl")
                    .read_text()
                    .splitlines()
                ]
                assert any(e["kind"] == "shard_unhealthy" for e in dumped)
                assert recorder.stats()["auto_dumps"] >= 1
                # Manual revival after restart is recorded too.  probe()
                # respects the backoff schedule, so poll until it is due.
                controller.restart_server(0)
                remote = handle.sharded._remotes[0]
                deadline = time.monotonic() + 10.0
                while not remote.probe() and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert remote.healthy is True
                (revival,) = recorder.events(kind="shard_revived")
                assert revival["via"] == "probe"


class TestFleetProfiling:
    def test_server_profiles_merge_into_one_fleet_histogram(self, tmp_path):
        from repro.obs import FleetMetrics, StageProfiler, to_prometheus

        matrix = _matrix()
        profiler = StageProfiler()
        with ClusterController(
            tmp_path / "store", profile_servers=True
        ) as controller:
            controller.start_local_fleet(3)
            with controller.remote_service(profiler=profiler) as service:
                handle = controller.deploy_fleet(service, matrix)
                vector = np.arange(20, dtype=np.int64) - 9
                row = asyncio.run(service.submit(handle, vector))
                assert np.array_equal(row, vector @ matrix)
                doc = FleetMetrics(service=service).collect()
        # Every server's STATS carried its own server_execute histogram.
        profiled = [s for s in doc["servers"] if "profile" in s]
        assert len(profiled) == 3
        for stats in profiled:
            (entry,) = stats["profile"]["stages"]
            assert entry["stage"] == "server_execute"
            assert entry["variant"].startswith("fused:")
            assert entry["count"] >= 1
        # The merged fleet profile holds client stages AND the summed
        # server-side execute histogram.
        totals = StageProfiler.stage_totals(doc["profile"])
        assert {"queue_wait", "coalesce", "shard_dispatch", "wire",
                "server_execute"} <= set(totals)
        assert totals["server_execute"]["count"] == sum(
            e["profile"]["stages"][0]["count"] for e in profiled
        )
        # Containment sanity: the wire round-trip includes the server
        # execute, the dispatch includes the wire.
        assert totals["shard_dispatch"]["sum"] >= totals["wire"]["sum"]
        assert totals["wire"]["sum"] >= totals["server_execute"]["sum"]
        text = to_prometheus(doc)
        assert 'stage="server_execute"' in text
        assert "# TYPE repro_stage_duration_seconds histogram" in text

    def test_unprofiled_fleet_stats_carry_no_profile(self, fleet):
        from repro.obs import FleetMetrics

        with fleet.remote_service() as service:
            handle = fleet.deploy_fleet(service, _matrix())
            asyncio.run(
                service.submit(handle, np.arange(20, dtype=np.int64))
            )
            doc = FleetMetrics(service=service).collect()
        assert all("profile" not in s for s in doc["servers"])
        assert "profile" not in doc
