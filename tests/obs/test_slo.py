"""SLO engine: burn-rate math, multi-window firing, stage attribution."""

from __future__ import annotations

import pytest

from repro.obs import FlightRecorder
from repro.obs.history import MetricsHistory
from repro.obs.metrics import to_prometheus
from repro.obs.slo import (
    AvailabilitySLO,
    BurnRatePolicy,
    LatencySLO,
    SLOEngine,
)

from tests.obs.test_history import FakeClock, SequenceMetrics


def _doc(p99=0.001, arrivals=0, sheds=0, profile=None):
    doc = {
        "service": {
            "deployments": {"m0": {"latency_s": {"p99": p99}}},
        },
        "fleet": {
            "arrivals": arrivals,
            "shed": {"queue_full": sheds, "quota": 0, "expired": 0},
        },
    }
    if profile is not None:
        doc["profile"] = profile
    return doc


def _profile(**sums):
    """A merged profiler snapshot with given cumulative per-stage sums."""
    return {
        "edges": [0.001, 1.0],
        "stages": [
            {"stage": stage, "variant": "", "counts": [0, 1, 0],
             "sum": total, "count": 1}
            for stage, total in sorted(sums.items())
        ],
    }


class TestValidation:
    def test_policy_windows_and_threshold(self):
        with pytest.raises(ValueError, match="windows"):
            BurnRatePolicy(fast_window_s=10.0, slow_window_s=5.0)
        with pytest.raises(ValueError, match="threshold"):
            BurnRatePolicy(threshold=0.0)

    def test_slo_target_range(self):
        with pytest.raises(ValueError, match="target"):
            LatencySLO("lat", threshold_s=0.01, target=1.0)
        with pytest.raises(ValueError, match="threshold_s"):
            LatencySLO("lat", threshold_s=0.0)
        with pytest.raises(ValueError, match="bad_paths"):
            AvailabilitySLO("avail", bad_paths=())

    def test_slo_names_must_be_unique(self):
        history = MetricsHistory(SequenceMetrics([{}]))
        with pytest.raises(ValueError, match="unique"):
            SLOEngine(
                history,
                [LatencySLO("x", 0.01), AvailabilitySLO("x")],
            )


class TestErrorFractions:
    def _history(self, docs, step=1.0):
        clock = FakeClock()
        history = MetricsHistory(SequenceMetrics(docs), clock=clock)
        for _ in docs:
            history.sample()
            clock.advance(step)
        return history

    def test_latency_bad_sample_fraction(self):
        history = self._history(
            [_doc(p99=0.001), _doc(p99=0.1), _doc(p99=0.1), _doc(p99=0.001)]
        )
        slo = LatencySLO("lat", threshold_s=0.025, target=0.9)
        assert slo.error_fraction(history, 1e9) == pytest.approx(0.5)
        assert slo.budget == pytest.approx(0.1)

    def test_latency_without_samples_is_none(self):
        history = MetricsHistory(SequenceMetrics([{}]))
        assert LatencySLO("lat", 0.01).error_fraction(history, 10.0) is None

    def test_availability_counter_deltas(self):
        history = self._history(
            [_doc(arrivals=0, sheds=0), _doc(arrivals=100, sheds=5)]
        )
        slo = AvailabilitySLO("avail", target=0.9)
        assert slo.error_fraction(history, 1e9) == pytest.approx(0.05)

    def test_idle_fleet_is_not_failing(self):
        history = self._history([_doc(arrivals=7), _doc(arrivals=7)])
        slo = AvailabilitySLO("avail")
        assert slo.error_fraction(history, 1e9) == 0.0


class TestMultiWindowFiring:
    def _run(self):
        """Healthy traffic, then a latency fault, then recovery."""
        clock = FakeClock()
        docs = [_doc(p99=0.001)] * 9 + [_doc(p99=0.1)] * 6 + [_doc(p99=0.001)] * 8
        history = MetricsHistory(SequenceMetrics(docs), clock=clock)
        recorder = FlightRecorder()
        engine = SLOEngine(
            history,
            [LatencySLO("p99-under-25ms", threshold_s=0.025, target=0.9)],
            policy=BurnRatePolicy(
                fast_window_s=1.0, slow_window_s=2.0, threshold=2.0
            ),
            recorder=recorder,
        )
        history.add_listener(engine.listener())
        timeline = []
        for _ in docs:
            history.sample()
            (status,) = engine.statuses
            timeline.append(status)
            clock.advance(0.25)
        return timeline, recorder

    def test_fires_within_two_bad_samples_and_clears(self):
        timeline, recorder = self._run()
        # Healthy phase: nine samples, never firing, budget intact.
        for status in timeline[:9]:
            assert status["firing"] is False
            assert status["error_budget_remaining"] == 1.0
        # First bad sample: fast burn hits exactly the threshold — the
        # rule needs strictly-greater, so still quiet.
        assert timeline[9]["firing"] is False
        # Second bad sample: both windows exceed the threshold.
        assert timeline[10]["firing"] is True
        assert timeline[10]["burn_fast"] > 2.0
        assert timeline[10]["burn_slow"] > 2.0
        # Recovery: bad samples age out of the fast window, alert clears
        # even while the slow window still carries the stale burn.
        assert timeline[-1]["firing"] is False
        burns = recorder.events("slo_burn")
        oks = recorder.events("slo_ok")
        assert len(burns) == 1 and len(oks) == 1
        assert burns[0]["slo"] == "p99-under-25ms"
        assert burns[0]["threshold"] == 2.0
        # One transition pair: sustained burn is one event, not a storm.
        assert timeline[10]["error_budget_remaining"] < 1.0

    def test_statuses_render_as_prometheus_families(self):
        timeline, _ = self._run()
        text = to_prometheus({"slo": [timeline[10]]})
        assert (
            'repro_slo_error_budget_remaining{slo="p99-under-25ms"}' in text
        )
        assert 'repro_slo_burn_rate{slo="p99-under-25ms",window="fast"}' in text
        assert 'repro_slo_firing{slo="p99-under-25ms"} 1' in text

    def test_attach_merges_statuses_into_a_document(self):
        timeline, _ = self._run()
        history = MetricsHistory(SequenceMetrics([{}]))
        engine = SLOEngine(history, [LatencySLO("lat", 0.01)])
        engine.evaluate()
        doc = engine.attach({"collected_at": 0.0})
        (status,) = doc["slo"]
        assert status["slo"] == "lat"
        assert status["burn_fast"] is None  # no samples yet
        assert status["firing"] is False


class TestStageAttribution:
    def _engine(self, profiles, step=10.0):
        clock = FakeClock()
        docs = [_doc(profile=p) for p in profiles]
        history = MetricsHistory(SequenceMetrics(docs), clock=clock)
        for k in range(len(docs)):
            history.sample()
            if k < len(docs) - 1:
                clock.advance(step)
        return SLOEngine(history, [LatencySLO("lat", 0.01)])

    def test_nested_stages_resolve_to_the_specific_one(self):
        # A wire delay drags shard_dispatch along (it contains the wire
        # round-trip): both regress by ~the same seconds, and the tie
        # must resolve to the more specific stage.
        engine = self._engine([
            _profile(wire=1.0, shard_dispatch=2.0, coalesce=0.5),
            _profile(wire=2.0, shard_dispatch=4.0, coalesce=1.0),
            _profile(wire=10.0, shard_dispatch=12.0, coalesce=1.5),
        ])
        assert engine.offending_stage(10.0) == "wire"

    def test_clean_single_stage_regression(self):
        engine = self._engine([
            _profile(coalesce=1.0, wire=1.0),
            _profile(coalesce=2.0, wire=2.0),
            _profile(coalesce=9.0, wire=3.0),
        ])
        assert engine.offending_stage(10.0) == "coalesce"

    def test_steady_state_blames_nothing(self):
        engine = self._engine([
            _profile(wire=1.0), _profile(wire=2.0), _profile(wire=3.0),
        ])
        assert engine.offending_stage(10.0) is None

    def test_no_profile_data_is_none(self):
        engine = self._engine([None, None, None])
        assert engine.offending_stage(10.0) is None
        short = self._engine([_profile(wire=1.0)])
        assert short.offending_stage(10.0) is None
