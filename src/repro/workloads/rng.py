"""Deterministic RNG helpers.

Every stochastic step in the library takes an explicit
:class:`numpy.random.Generator`; these helpers standardize seeding so
experiments are reproducible run to run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from_seed", "spawn"]


def rng_from_seed(seed: int | None = 0) -> np.random.Generator:
    """A fresh, independent generator for a given seed."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split one generator into ``count`` independent child generators."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
