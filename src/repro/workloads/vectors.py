"""Random input-vector generators for the evaluation harness."""

from __future__ import annotations

import numpy as np

from repro.core.bits import signed_range, unsigned_range

__all__ = ["random_input_vector", "random_input_batch"]


def random_input_vector(
    length: int,
    width: int,
    rng: np.random.Generator,
    signed: bool = True,
) -> np.ndarray:
    """A dense random activation vector fitting the given bit width."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    lo, hi = signed_range(width) if signed else unsigned_range(width)
    return rng.integers(lo, hi + 1, size=length, dtype=np.int64)


def random_input_batch(
    batch: int,
    length: int,
    width: int,
    rng: np.random.Generator,
    signed: bool = True,
) -> np.ndarray:
    """A ``batch x length`` dense activation matrix."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    lo, hi = signed_range(width) if signed else unsigned_range(width)
    return rng.integers(lo, hi + 1, size=(batch, length), dtype=np.int64)
