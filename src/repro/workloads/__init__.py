"""Workload generation: the paper's random matrices and input vectors."""

from repro.workloads.matrices import (
    bit_sparse_matrix,
    element_sparse_matrix,
    expected_ones_bit_sparse,
)
from repro.workloads.rng import rng_from_seed, spawn
from repro.workloads.vectors import random_input_batch, random_input_vector

__all__ = [
    "bit_sparse_matrix",
    "element_sparse_matrix",
    "expected_ones_bit_sparse",
    "random_input_vector",
    "random_input_batch",
    "rng_from_seed",
    "spawn",
]
