"""Random weight-matrix generators used throughout the paper's evaluation.

Sec. IV defines two generation schemes:

* **Bit-sparse** (Fig. 5): "For each bit in the weight matrix, we sample
  from a Bernoulli distribution, where the p parameter is equal to
  (1 - bit_sparsity)."  This spreads set bits uniformly across bit
  positions.
* **Element-sparse** (Figs. 6-23): "the weights are sampled from a uniform
  distribution of all possible values for the given bit-width [...] We
  then randomly replace matrix elements with 0 until we reach a desired
  level of element-sparsity."  This concentrates set bits inside surviving
  elements.

The large-scale and evaluation sections use the element-sparse generator
with *signed* 8-bit weights.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bit_sparse_matrix",
    "element_sparse_matrix",
    "expected_ones_bit_sparse",
]


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def bit_sparse_matrix(
    rows: int,
    cols: int,
    width: int,
    bit_sparsity: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Unsigned matrix with i.i.d. Bernoulli(1 - bit_sparsity) weight bits."""
    if rows < 1 or cols < 1:
        raise ValueError(f"matrix dimensions must be >= 1, got {rows}x{cols}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    _check_fraction("bit_sparsity", bit_sparsity)
    p = 1.0 - bit_sparsity
    matrix = np.zeros((rows, cols), dtype=np.int64)
    for bit in range(width):
        plane = rng.random((rows, cols)) < p
        matrix |= plane.astype(np.int64) << bit
    return matrix


def expected_ones_bit_sparse(rows: int, cols: int, width: int, bit_sparsity: float) -> float:
    """Expected total set bits under the Bernoulli scheme."""
    _check_fraction("bit_sparsity", bit_sparsity)
    return rows * cols * width * (1.0 - bit_sparsity)


def element_sparse_matrix(
    rows: int,
    cols: int,
    width: int,
    element_sparsity: float,
    rng: np.random.Generator,
    signed: bool = True,
) -> np.ndarray:
    """Uniform random weights with an exact fraction of entries zeroed.

    ``signed=True`` draws from the full two's-complement range
    ``[-2^(w-1), 2^(w-1) - 1]`` (the paper's "8-bit signed weights");
    ``signed=False`` draws from ``[0, 2^w - 1]``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"matrix dimensions must be >= 1, got {rows}x{cols}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    _check_fraction("element_sparsity", element_sparsity)
    if signed:
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    else:
        lo, hi = 0, (1 << width) - 1
    matrix = rng.integers(lo, hi + 1, size=(rows, cols), dtype=np.int64)
    size = rows * cols
    zeros = int(round(size * element_sparsity))
    if zeros:
        flat = matrix.ravel()
        flat[rng.choice(size, size=zeros, replace=False)] = 0
    return matrix
