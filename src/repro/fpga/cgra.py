"""CGRA cost model — Sec. VIII's proposed custom device, quantified.

"A CGRA implementation of our design would see a grid of full-adders and
flip-flops, with a flexible tree-like interconnect to perform partial sums
and broadcast interconnect for the input.  This approach would allow for
higher compute density at higher frequencies."

This module turns that paragraph into numbers: a device description for a
hypothetical CGRA built from hard serial-adder cells (full adder + two
flops ≈ 32 transistors of logic vs the 512-transistor LUT), with a
registered broadcast network (no fanout-limited nets) and pipelined
chiplet crossings — i.e. both Sec. VIII optimizations baked in.  The
``compare`` helper reports density and frequency gains over the FPGA
mapping for any compiled census, and the pipeline-reconfiguration model
from :mod:`repro.core.latency` provides the matrix-swap story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.latency import pipelined_reconfig_overhead_cycles
from repro.core.stats import CircuitCensus
from repro.fpga.area import FULL_ADDER_TRANSISTORS, LUT_TRANSISTORS

__all__ = ["CgraDevice", "CgraComparison", "DEFAULT_CGRA", "compare_fpga_cgra"]

_FF_TRANSISTORS = 8


@dataclass(frozen=True)
class CgraDevice:
    """A grid of hard bit-serial adder cells with tree interconnect."""

    name: str = "serial-cgra"
    cells: int = 4_000_000
    clock_hz: float = 1.2e9
    transistors_per_cell: int = FULL_ADDER_TRANSISTORS + 2 * _FF_TRANSISTORS
    supports_pipeline_reconfiguration: bool = True

    def fits(self, serial_adders: int, dffs: int) -> bool:
        """DFFs ride along in adder cells (carry input tied off)."""
        return serial_adders + dffs <= self.cells


DEFAULT_CGRA = CgraDevice()


@dataclass(frozen=True)
class CgraComparison:
    """FPGA-vs-CGRA accounting for one compiled design."""

    serial_adders: int
    dffs: int
    fpga_transistors: int
    cgra_transistors: int
    density_gain: float
    fpga_fmax_hz: float
    cgra_fmax_hz: float
    frequency_gain: float
    matrix_swap_cycles: int

    @property
    def speedup(self) -> float:
        """Frequency gain alone (latency cycles are identical by design)."""
        return self.frequency_gain


def compare_fpga_cgra(
    census: CircuitCensus,
    fpga_fmax_hz: float,
    cgra: CgraDevice = DEFAULT_CGRA,
) -> CgraComparison:
    """Quantify Sec. VIII for one design: density and frequency gains.

    FPGA transistors: every adder-class primitive occupies a 512-transistor
    LUT plus two flops; lone DFFs cost a flop (their LUT site is wasted in
    the worst case but we charge only the flop, favoring the FPGA).
    CGRA transistors: hard cells at 32 transistors of logic + flops.
    """
    adders = census.serial_adders
    dffs = census.dffs
    fpga_transistors = adders * (LUT_TRANSISTORS + 2 * _FF_TRANSISTORS) + dffs * _FF_TRANSISTORS
    cgra_transistors = (adders + dffs) * cgra.transistors_per_cell
    if fpga_fmax_hz <= 0:
        raise ValueError(f"fpga_fmax_hz must be positive, got {fpga_fmax_hz}")
    return CgraComparison(
        serial_adders=adders,
        dffs=dffs,
        fpga_transistors=fpga_transistors,
        cgra_transistors=cgra_transistors,
        density_gain=fpga_transistors / max(1, cgra_transistors),
        fpga_fmax_hz=fpga_fmax_hz,
        cgra_fmax_hz=cgra.clock_hz,
        frequency_gain=cgra.clock_hz / fpga_fmax_hz,
        matrix_swap_cycles=pipelined_reconfig_overhead_cycles(
            census.rows, census.plane_width
        ),
    )
