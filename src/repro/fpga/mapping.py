"""Technology mapping: circuit primitives -> FPGA resources.

The mapping facts come straight from the paper:

* "In the FPGA, the bit serial adder or subtractor can be mapped to a
  single 6-input LUT and two registers" — one LUT, two FFs (sum and carry).
* a culled adder "is acting as a D-flip-flop" — one FF.
* "The particular FPGA we are using has the capability to re-purpose some
  of the LUTs into small RAMs or shift registers which are called
  LUTRAMs" — the input and output shift registers, and (optionally)
  inferred runs of alignment DFFs, map to SRL-style LUTRAMs.
* "We 'wrap' the matrix multiplier with a small design that feeds inputs
  from an SRAM [...] This design wrapper only adds a few extra LUTs and
  registers."

Two entry points produce identical numbers by construction and are
cross-checked by tests:

* :func:`map_census` — from the O(ones) combinatorial census;
* :func:`map_netlist` — by walking instantiated gates.

:func:`map_netlist` additionally supports Vivado-style SRL inference
(``infer_srl=True``), collapsing runs of ``srl_min_length``+ chained DFFs
into one LUTRAM plus an output FF — a refinement only available on the
explicit gate graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.stats import CircuitCensus
from repro.fpga.report import ResourceReport
from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.components import (
    DFF,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)

__all__ = ["MappingRules", "map_census", "map_netlist", "infer_srl_runs"]

SRL_BITS = 32
"""Depth of one SRL32 shift-register LUT on UltraScale+."""


@dataclass(frozen=True)
class MappingRules:
    """Per-primitive resource costs and fixed wrapper overhead."""

    adder_luts: int = 1
    adder_ffs: int = 2
    dff_ffs: int = 1
    # Input shift register: one SRL LUTRAM, its output FF, and one LUT for
    # the sign-extension hold mux per matrix row.
    input_sr_lutrams: int = 1
    input_sr_ffs: int = 1
    input_sr_luts: int = 1
    # Output shift register: SRLs sized by the serial result width.
    output_sr_ffs: int = 1
    # SRAM-fed design wrapper ("a few extra LUTs and registers").
    wrapper_luts: int = 150
    wrapper_ffs: int = 220
    srl_min_length: int = 3

    def output_sr_lutrams(self, result_width: int) -> int:
        return max(1, math.ceil(result_width / SRL_BITS))


def map_census(census: CircuitCensus, rules: MappingRules | None = None) -> ResourceReport:
    """Map the combinatorial census to LUT/FF/LUTRAM totals."""
    rules = rules or MappingRules()
    adders = census.serial_adders
    dffs = census.dffs
    luts = (
        adders * rules.adder_luts
        + census.rows * rules.input_sr_luts
        + rules.wrapper_luts
    )
    ffs = (
        adders * rules.adder_ffs
        + dffs * rules.dff_ffs
        + census.rows * rules.input_sr_ffs
        + census.cols * rules.output_sr_ffs
        + rules.wrapper_ffs
    )
    lutrams = (
        census.rows * rules.input_sr_lutrams
        + census.cols * rules.output_sr_lutrams(census.result_width)
    )
    return ResourceReport(luts=luts, ffs=ffs, lutrams=lutrams)


def infer_srl_runs(circuit: CompiledCircuit, min_length: int = 3) -> list[int]:
    """Find maximal chains of single-load DFFs (Vivado SRL inference).

    A run is a sequence of DFFs where each feeds only the next.  Returns
    the lengths of all maximal runs of at least ``min_length``.
    """
    netlist = circuit.netlist
    dffs = [c for c in netlist.components if type(c) is DFF]
    loads: dict[int, int] = {}
    for component in netlist.components:
        for attr in ("d", "a", "b", "src"):
            upstream = getattr(component, attr, None)
            if upstream is not None:
                loads[id(upstream)] = loads.get(id(upstream), 0) + 1
    for probe in circuit.column_probes:
        loads[id(probe.src)] = loads.get(id(probe.src), 0) + 1
    chained_up = {
        id(d): d.d
        for d in dffs
        if type(d.d) is DFF and loads.get(id(d.d), 0) == 1
    }
    heads = [d for d in dffs if id(d) not in set(map(id, chained_up.values()))]
    runs = []
    for head in heads:
        length = 1
        node = head
        while id(node) in chained_up:
            node = chained_up[id(node)]
            length += 1
        if length >= min_length:
            runs.append(length)
    return runs


def map_netlist(
    circuit: CompiledCircuit,
    rules: MappingRules | None = None,
    infer_srl: bool = False,
) -> ResourceReport:
    """Map an instantiated netlist to LUT/FF/LUTRAM totals.

    With ``infer_srl=False`` this returns numbers identical to
    :func:`map_census` on the same plan (asserted by tests).
    """
    rules = rules or MappingRules()
    netlist = circuit.netlist
    adders = (
        netlist.count(SerialAdder)
        + netlist.count(SerialSubtractor)
        + netlist.count(SerialNegator)
    )
    dffs = netlist.count(DFF)
    rows = len(netlist.inputs)
    cols = len(circuit.column_probes)
    srl_lutrams = 0
    if infer_srl:
        runs = infer_srl_runs(circuit, rules.srl_min_length)
        for length in runs:
            srls = math.ceil(length / SRL_BITS)
            srl_lutrams += srls
            # The run's FFs collapse into the SRL plus one output FF.
            dffs -= length - 1
    luts = adders * rules.adder_luts + rows * rules.input_sr_luts + rules.wrapper_luts
    ffs = (
        adders * rules.adder_ffs
        + dffs * rules.dff_ffs
        + rows * rules.input_sr_ffs
        + cols * rules.output_sr_ffs
        + rules.wrapper_ffs
    )
    lutrams = (
        rows * rules.input_sr_lutrams
        + cols * rules.output_sr_lutrams(circuit.plan.result_width)
        + srl_lutrams
    )
    return ResourceReport(luts=luts, ffs=ffs, lutrams=lutrams)
