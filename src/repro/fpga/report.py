"""Resource utilization report types."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceReport"]


@dataclass(frozen=True)
class ResourceReport:
    """LUT / flip-flop / LUTRAM demand of a compiled design.

    These are the three resources the paper reports in its utilization
    figures (LUTs, FFs, LUTRAMs); embedded multipliers and block RAM are
    deliberately unused by the architecture.
    """

    luts: int
    ffs: int
    lutrams: int

    def __add__(self, other: "ResourceReport") -> "ResourceReport":
        return ResourceReport(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            lutrams=self.lutrams + other.lutrams,
        )

    def scaled(self, factor: int) -> "ResourceReport":
        return ResourceReport(
            luts=self.luts * factor,
            ffs=self.ffs * factor,
            lutrams=self.lutrams * factor,
        )

    def as_dict(self) -> dict[str, int]:
        return {"luts": self.luts, "ffs": self.ffs, "lutrams": self.lutrams}
