"""Vivado-style utilization report rendering.

The paper's design flow "produces an achievable frequency, area, and power
estimation"; this module renders the reproduction's equivalents in the
familiar synthesis-report shape, so a compiled design can be reviewed the
way an FPGA engineer would review a Vivado run.
"""

from __future__ import annotations

from repro.core.stats import CircuitCensus
from repro.fpga.device import FpgaDevice, XCVU13P
from repro.fpga.report import ResourceReport

__all__ = ["utilization_report"]


def _row(name: str, used: float, available: float) -> str:
    pct = 100.0 * used / available if available else 0.0
    return f"| {name:<18} | {used:>12,.0f} | {available:>12,.0f} | {pct:>6.2f} |"


def utilization_report(
    census: CircuitCensus,
    resources: ResourceReport,
    device: FpgaDevice = XCVU13P,
    fmax_hz: float | None = None,
    power_w: float | None = None,
) -> str:
    """Render a synthesis-style utilization report for one design."""
    divider = "+" + "-" * 20 + "+" + "-" * 14 + "+" + "-" * 14 + "+" + "-" * 8 + "+"
    lines = [
        f"Utilization report — {census.rows}x{census.cols} fixed matrix "
        f"({census.tree_style} trees, {census.ones:,} ones) on {device.name}",
        divider,
        f"| {'Resource':<18} | {'Used':>12} | {'Available':>12} | {'Util%':>6} |",
        divider,
        _row("LUT", resources.luts, device.total_luts),
        _row("FF", resources.ffs, device.total_ffs),
        _row("LUTRAM", resources.lutrams, device.slrs * device.lutram_capable_per_slr),
        divider,
    ]
    span = device.slr_span(resources.luts)
    lines.append(
        f"SLR span: {span} of {device.slrs} "
        f"(comfortable per-SLR budget {device.comfortable_slr_luts:,.0f} LUTs)"
    )
    lines.append(
        "Primitive census: "
        f"{census.serial_adders:,} serial adders, {census.dffs:,} alignment FFs, "
        f"{census.subtractors:,} subtractors, {census.negators:,} negators"
    )
    if fmax_hz is not None:
        lines.append(f"Achievable Fmax: {fmax_hz / 1e6:.0f} MHz")
    if power_w is not None:
        lines.append(f"Estimated power at Fmax: {power_w:.1f} W")
    fits = device.fits(resources.luts, resources.ffs, resources.lutrams)
    lines.append(f"Design fits device: {'yes' if fits else 'NO'}")
    return "\n".join(lines)
