"""Power model (Fig. 12 of the paper).

Fig. 12 "plots the estimated total power consumption of this device scaled
to run at the maximum achievable frequency.  These results were obtained
from the Vivado tool based on the default assumptions about switching
activity.  Under medium settings for airflow and heatsink, the thermal
power limit of this FPGA is approximately 150W, which we approach at high
dimension and low sparsity."

Vivado's estimate is ``static + sum(toggle_rate * C * V^2 * f)`` over the
design; for this architecture every mapped LUT/FF pair corresponds to one
matrix one, so dynamic power collapses to ``coefficient * ones * f``.  The
coefficient is calibrated to the paper's anchor: the largest design
(1024x1024 at 60% element sparsity, ~1.5M ones, ~227 MHz) draws ~150 W.
The sublinear shape of Fig. 12 ("Note the sublinear increase due to the
decreasing achievable frequency") emerges from the Fmax model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel", "DEFAULT_POWER"]


@dataclass(frozen=True)
class PowerModel:
    """Static + activity-proportional dynamic power."""

    static_w: float = 12.0
    dynamic_w_per_one_hz: float = 3.8e-13
    thermal_limit_w: float = 150.0

    def total_w(self, ones: int, frequency_hz: float) -> float:
        """Total power at a given clock for a design with ``ones`` set bits."""
        if ones < 0:
            raise ValueError(f"ones must be >= 0, got {ones}")
        if frequency_hz < 0:
            raise ValueError(f"frequency must be >= 0, got {frequency_hz}")
        return self.static_w + self.dynamic_w_per_one_hz * ones * frequency_hz

    def dynamic_w(self, ones: int, frequency_hz: float) -> float:
        return self.total_w(ones, frequency_hz) - self.static_w

    def within_thermal_limit(self, ones: int, frequency_hz: float) -> bool:
        return self.total_w(ones, frequency_hz) <= self.thermal_limit_w

    def thermally_limited_frequency_hz(self, ones: int) -> float:
        """Highest clock the cooling budget allows for ``ones`` set bits."""
        if ones == 0:
            return float("inf")
        headroom = self.thermal_limit_w - self.static_w
        if headroom <= 0:
            return 0.0
        return headroom / (self.dynamic_w_per_one_hz * ones)


DEFAULT_POWER = PowerModel()
