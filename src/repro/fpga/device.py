"""Target FPGA description — Xilinx Virtex UltraScale+ XCVU13P.

Numbers come from Sec. VI of the paper: "Our target FPGA is the Xilinx
XCVU13P, which is a 16nm device containing four chiplets in the package
(called Super Logic Regions or SLRs).  This device has a capacity of 1.7M
6-input LUTs and 3.4M logic flip-flops. [...] Each of the four SLRs within
the FPGA have a maximum capacity of 425k LUTs.  After about 80% of LUTs
are used the tools can struggle" (the paper marks 82% thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FpgaDevice", "XCVU13P", "DesignDoesNotFitError"]


class DesignDoesNotFitError(Exception):
    """Raised when a compiled matrix exceeds the device's resources."""


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity and floorplan facts for one FPGA package."""

    name: str
    slrs: int
    luts_per_slr: int
    ffs_per_slr: int
    lutram_capable_per_slr: int
    routable_fraction: float

    @property
    def total_luts(self) -> int:
        return self.slrs * self.luts_per_slr

    @property
    def total_ffs(self) -> int:
        return self.slrs * self.ffs_per_slr

    @property
    def comfortable_slr_luts(self) -> float:
        """LUTs per SLR before "the tools struggle" (the 82% threshold)."""
        return self.routable_fraction * self.luts_per_slr

    def fits(self, luts: int, ffs: int = 0, lutrams: int = 0) -> bool:
        """Whether a design's resource demand fits the package at all."""
        return (
            luts <= self.total_luts
            and ffs <= self.total_ffs
            and lutrams <= self.slrs * self.lutram_capable_per_slr
        )

    def slr_span(self, luts: int) -> int:
        """How many chiplets the design spreads across.

        Spanning is driven by the comfortable per-SLR occupancy: designs are
        spread once they exceed ~82% of one SLR, clamped to the package.
        Raises :class:`DesignDoesNotFitError` beyond total capacity.
        """
        if luts < 0:
            raise ValueError(f"luts must be >= 0, got {luts}")
        if luts > self.total_luts:
            raise DesignDoesNotFitError(
                f"{luts} LUTs exceed {self.name}'s capacity of {self.total_luts}"
            )
        if luts == 0:
            return 1
        return min(self.slrs, max(1, math.ceil(luts / self.comfortable_slr_luts)))


XCVU13P = FpgaDevice(
    name="xcvu13p",
    slrs=4,
    luts_per_slr=425_000,
    ffs_per_slr=850_000,
    lutram_capable_per_slr=192_000,
    routable_fraction=0.82,
)
