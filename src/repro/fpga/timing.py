"""Achievable-frequency model (Fig. 11 of the paper).

"All the paths within these designs have at most one LUT between flops,
which means that the frequency is primarily a result of the interconnect
delays between LUTs and flops."  Two mechanisms degrade the clock as
matrices grow:

* "The initial layer has a large fanout, approximately corresponding to
  the dimension times the sparsity.  Nets that have a fanout of 100s can
  have delays of several nanoseconds."  Each input row drives roughly
  ``ones / rows`` serial adders.
* "Nets cross the chiplet boundaries, and those routes have significantly
  slower propagation delays."

The model is ``1 / (t_logic + t_fanout * ln(1 + fanout) +
t_crossing * min(slr_span - 1, 2))``, calibrated so the bands of Fig. 11
hold: 597-445 MHz within one SLR, 296-400 MHz across two, and a consistent
225-250 MHz beyond ("Matrices bigger than 2 SLRs seem relatively
consistent between 225MHz and 250MHz" — the critical path crosses at most
two chiplet boundaries regardless of span, hence the saturation).

The paper notes "Both the fanout and chiplet crossing problems could be
addressed by adding registers to perform the fanout and chiplet crossings
in multiple cycles.  These optimizations are not represented here." —
``pipelined=True`` models exactly that proposed optimization and reports
the extra pipeline cycles it would cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fpga.device import FpgaDevice, XCVU13P

__all__ = ["TimingModel", "TimingEstimate", "DEFAULT_TIMING"]

_PIPELINED_FANOUT_LIMIT = 32
"""Fanout served by one stage of a registered broadcast tree."""


@dataclass(frozen=True)
class TimingEstimate:
    """Result of a timing query."""

    fmax_hz: float
    slr_span: int
    fanout: float
    extra_pipeline_cycles: int

    @property
    def period_ns(self) -> float:
        return 1e9 / self.fmax_hz


@dataclass(frozen=True)
class TimingModel:
    """Interconnect-dominated Fmax model for the spatial multiplier."""

    logic_ns: float = 1.45
    fanout_ns_per_log: float = 0.10
    slr_crossing_ns: float = 0.95
    max_crossings: int = 2
    fmax_cap_hz: float = 600e6

    def estimate(
        self,
        luts: int,
        rows: int,
        device: FpgaDevice = XCVU13P,
        pipelined: bool = False,
        fanout: float | None = None,
    ) -> TimingEstimate:
        """Achievable frequency for a design of ``luts`` with ``rows`` inputs.

        ``luts`` should be the mapped LUT demand; the broadcast fanout per
        input row defaults to ``luts / rows`` (callers that know the exact
        ones count should pass ``fanout = ones / rows``).
        """
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if luts < 0:
            raise ValueError(f"luts must be >= 0, got {luts}")
        if fanout is None:
            fanout = luts / rows
        fanout = max(1.0, float(fanout))
        span = device.slr_span(luts)
        extra_cycles = 0
        if pipelined:
            # Registered broadcast tree: each stage serves a bounded fanout,
            # and chiplet crossings get their own register stage.
            stages = max(1, math.ceil(math.log(fanout, _PIPELINED_FANOUT_LIMIT)))
            extra_cycles = (stages - 1) + (span - 1)
            effective_fanout = min(fanout, float(_PIPELINED_FANOUT_LIMIT))
            crossing_delay = 0.0
        else:
            effective_fanout = fanout
            crossing_delay = self.slr_crossing_ns * min(span - 1, self.max_crossings)
        delay_ns = (
            self.logic_ns
            + self.fanout_ns_per_log * math.log(1.0 + effective_fanout)
            + crossing_delay
        )
        fmax = min(self.fmax_cap_hz, 1e9 / delay_ns)
        return TimingEstimate(
            fmax_hz=fmax,
            slr_span=span,
            fanout=fanout,
            extra_pipeline_cycles=extra_cycles,
        )

    def fmax_hz(
        self,
        luts: int,
        rows: int,
        device: FpgaDevice = XCVU13P,
        pipelined: bool = False,
    ) -> float:
        return self.estimate(luts, rows, device, pipelined).fmax_hz


DEFAULT_TIMING = TimingModel()
