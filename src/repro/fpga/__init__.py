"""FPGA substrate: device facts, technology mapping, area/timing/power models."""

from repro.fpga.area import AreaModel, CgraEstimate, LinearFit, cgra_transistor_estimate
from repro.fpga.cgra import DEFAULT_CGRA, CgraComparison, CgraDevice, compare_fpga_cgra
from repro.fpga.device import XCVU13P, DesignDoesNotFitError, FpgaDevice
from repro.fpga.mapping import MappingRules, infer_srl_runs, map_census, map_netlist
from repro.fpga.power import DEFAULT_POWER, PowerModel
from repro.fpga.report import ResourceReport
from repro.fpga.report_text import utilization_report
from repro.fpga.timing import DEFAULT_TIMING, TimingEstimate, TimingModel

__all__ = [
    "FpgaDevice",
    "XCVU13P",
    "DesignDoesNotFitError",
    "MappingRules",
    "map_census",
    "map_netlist",
    "infer_srl_runs",
    "ResourceReport",
    "utilization_report",
    "AreaModel",
    "LinearFit",
    "CgraEstimate",
    "cgra_transistor_estimate",
    "CgraDevice",
    "CgraComparison",
    "DEFAULT_CGRA",
    "compare_fpga_cgra",
    "TimingModel",
    "TimingEstimate",
    "DEFAULT_TIMING",
    "PowerModel",
    "DEFAULT_POWER",
]
