"""Simple area models (Sec. IV and Sec. VIII of the paper).

Sec. IV establishes empirically that mapped resources are linear in the
number of matrix ones ("LUTs are essentially equivalent to the number of
ones, and there are two registers per LUT").  :class:`AreaModel` is the
paper's "simple and extensible" cost model: closed-form prediction from
ones alone, plus a least-squares fit utility used by the benches to verify
the linear relationship on generated data.

Sec. VIII quantifies a CGRA alternative: "a 6-input LUT is made using 64
SRAM bits of 6 transistors each, with 64 MUX T-gates of 2 transistors
each, which yields a total of 512 transistors for every LUT.  A full-adder
uses 16 or fewer transistors, which is 1/32 the cost."
:func:`cgra_transistor_estimate` reproduces that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.report import ResourceReport

__all__ = ["AreaModel", "LinearFit", "cgra_transistor_estimate", "CgraEstimate"]

LUT_TRANSISTORS = 64 * 6 + 64 * 2
"""512 transistors per 6-input LUT (64 SRAM bits x6T + 64 mux T-gates x2T)."""

FULL_ADDER_TRANSISTORS = 16
"""Transistors per full adder [Dubey et al. 2013]."""


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line with goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


@dataclass(frozen=True)
class AreaModel:
    """The paper's closed-form cost model: resources from ones alone."""

    luts_per_one: float = 1.0
    ffs_per_lut: float = 2.0
    io_luts_per_row: float = 1.0
    wrapper_luts: float = 150.0

    def predict(self, ones: int, rows: int = 0, cols: int = 0) -> ResourceReport:
        """Estimate the resource demand of a matrix with ``ones`` set bits."""
        if ones < 0:
            raise ValueError(f"ones must be >= 0, got {ones}")
        luts = self.luts_per_one * ones + self.io_luts_per_row * rows + self.wrapper_luts
        return ResourceReport(
            luts=int(round(luts)),
            ffs=int(round(self.ffs_per_lut * luts)),
            lutrams=int(rows + cols),
        )

    @staticmethod
    def fit(ones: np.ndarray, resources: np.ndarray) -> LinearFit:
        """Least-squares fit of a resource count against matrix ones."""
        x = np.asarray(ones, dtype=float)
        y = np.asarray(resources, dtype=float)
        if x.size != y.size or x.size < 2:
            raise ValueError("need at least two matching samples to fit")
        slope, intercept = np.polyfit(x, y, 1)
        predicted = slope * x + intercept
        ss_res = float(np.sum((y - predicted) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
        return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


@dataclass(frozen=True)
class CgraEstimate:
    """Transistor budget comparison between FPGA LUTs and CGRA adders."""

    lut_transistors: int
    adder_transistors: int
    ratio: float
    design_lut_transistors: int
    design_cgra_transistors: int

    @property
    def savings_factor(self) -> float:
        return self.design_lut_transistors / max(1, self.design_cgra_transistors)


def cgra_transistor_estimate(serial_adders: int, dffs: int = 0) -> CgraEstimate:
    """Sec. VIII: transistor cost of the design on FPGA vs a custom CGRA.

    On the FPGA every serial adder occupies one 512-transistor LUT (plus
    flops); a CGRA would provide a hard full adder at ~16 transistors.
    Flip-flops cost the same on both (about 8 transistors each, which
    cancels) so the dominant term is the LUT-vs-adder ratio of 32.
    """
    if serial_adders < 0 or dffs < 0:
        raise ValueError("component counts must be >= 0")
    ff_transistors = 8 * (2 * serial_adders + dffs)
    return CgraEstimate(
        lut_transistors=LUT_TRANSISTORS,
        adder_transistors=FULL_ADDER_TRANSISTORS,
        ratio=LUT_TRANSISTORS / FULL_ADDER_TRANSISTORS,
        design_lut_transistors=serial_adders * LUT_TRANSISTORS + ff_transistors,
        design_cgra_transistors=serial_adders * FULL_ADDER_TRANSISTORS + ff_transistors,
    )
