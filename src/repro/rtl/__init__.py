"""SystemVerilog generation (the paper's design flow artifact)."""

from repro.rtl.emitter import emit_verilog, emit_verilog_from_circuit, sanitize_identifier
from repro.rtl.testbench import emit_testbench

__all__ = [
    "emit_verilog",
    "emit_verilog_from_circuit",
    "emit_testbench",
    "sanitize_identifier",
]
