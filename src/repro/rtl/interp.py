"""Functional simulator for the emitted SystemVerilog subset.

The emitter produces a deliberately tiny SystemVerilog dialect: single-bit
``logic`` declarations, four ``always_ff`` shapes (adder, subtractor,
negator, DFF), and continuous assigns.  This module interprets exactly
that subset with RTL semantics (all flops sample simultaneously at the
clock edge), which lets the test suite execute the *emitted text* — not
the netlist it came from — and check it against golden integer results.

This is the "functional sim" counterpart of the paper's RTL-generation
flow: it proves the generated RTL is what we think it is, without needing
a commercial simulator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["RtlModule", "parse_module"]

_ADDER_RE = re.compile(
    r"\{(?P<c>\w+), (?P<s>\w+)\} <= (?P<a>[\w\[\]]+) \+ (?P<b>[\w\[\]]+) \+ (?P=c);"
)
_SUB_RE = re.compile(
    r"\{(?P<c>\w+), (?P<s>\w+)\} <= (?P<a>[\w\[\]]+) \+ ~(?P<b>[\w\[\]]+) \+ (?P=c);"
)
_NEG_RE = re.compile(
    r"\{(?P<c>\w+), (?P<s>\w+)\} <= 1'b0 \+ ~(?P<b>[\w\[\]]+) \+ (?P=c);"
)
_DFF_RE = re.compile(r"(?P<q>\w+) <= (?P<d>[\w\[\]']+);")
_ASSIGN_RE = re.compile(r"assign (?P<dst>[\w\[\]]+) = (?P<src>[\w\[\]']+);")
_RESET_RE = re.compile(r"if \(rst\) (?:\{(?P<c>\w+), (?P<s>\w+)\} <= 2'b(?P<cv>\d)(?P<sv>\d)|(?P<q>\w+) <= 1'b(?P<qv>\d));")
_PORT_RE = re.compile(r"(?:input|output)\s+logic\s*(?:\[(\w+)-1:0\])?\s*(\w+)")
_PARAM_RE = re.compile(r"localparam int unsigned (\w+) = (\d+)")


@dataclass
class _Reg:
    kind: str  # "add", "sub", "neg", "dff"
    sum_name: str
    carry_name: str | None
    a: str | None
    b: str | None
    reset_sum: int = 0
    reset_carry: int = 0


@dataclass
class RtlModule:
    """A parsed emitted module, executable with RTL edge semantics."""

    name: str
    params: dict[str, int]
    rows: int
    cols: int
    regs: list[_Reg]
    assigns: list[tuple[str, str]]
    state: dict[str, int] = field(default_factory=dict)
    in_bits: list[int] = field(default_factory=list)

    def reset(self) -> None:
        """Apply the synchronous reset values."""
        self.state = {}
        for reg in self.regs:
            self.state[reg.sum_name] = reg.reset_sum
            if reg.carry_name:
                self.state[reg.carry_name] = reg.reset_carry
        self.in_bits = [0] * self.rows
        self._propagate_assigns()

    def _read(self, ref: str) -> int:
        if ref.startswith("in_bits["):
            return self.in_bits[int(ref[8:-1])]
        if ref.startswith("1'b"):
            return int(ref[3:])
        return self.state[ref]

    def _propagate_assigns(self) -> None:
        for dst, src in self.assigns:
            self.state[dst] = self._read(src)

    def clock(self, in_bits: list[int]) -> None:
        """One posedge: sample inputs, update all flops simultaneously."""
        if len(in_bits) != self.rows:
            raise ValueError(f"need {self.rows} input bits, got {len(in_bits)}")
        self.in_bits = [int(b) & 1 for b in in_bits]
        updates: dict[str, int] = {}
        for reg in self.regs:
            if reg.kind == "dff":
                updates[reg.sum_name] = self._read(reg.a)
            else:
                if reg.kind == "add":
                    a = self._read(reg.a)
                    b = self._read(reg.b)
                elif reg.kind == "sub":
                    a = self._read(reg.a)
                    b = 1 - self._read(reg.b)
                else:  # neg
                    a = 0
                    b = 1 - self._read(reg.b)
                total = a + b + self.state[reg.carry_name]
                updates[reg.sum_name] = total & 1
                updates[reg.carry_name] = total >> 1
        self.state.update(updates)
        self._propagate_assigns()

    def out_bits(self) -> list[int]:
        return [self.state[f"__out{j}"] for j in range(self.cols)]


def parse_module(text: str) -> RtlModule:
    """Parse emitted SystemVerilog text into an executable module."""
    params = {m.group(1): int(m.group(2)) for m in _PARAM_RE.finditer(text)}
    name_match = re.search(r"module (\w+)", text)
    if not name_match:
        raise ValueError("no module declaration found")
    rows = params.get("ROWS")
    cols = params.get("COLS")
    if rows is None or cols is None:
        raise ValueError("module missing ROWS/COLS localparams")
    regs: list[_Reg] = []
    assigns: list[tuple[str, str]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if line.startswith("always_ff"):
            reset_line = lines[i + 1].strip()
            update_line = lines[i + 2].strip().removeprefix("else").strip()
            reset = _RESET_RE.search(reset_line)
            if reset is None:
                raise ValueError(f"unparsable reset: {reset_line}")
            for pattern, kind in ((_SUB_RE, "sub"), (_NEG_RE, "neg"), (_ADDER_RE, "add")):
                m = pattern.search(update_line)
                if m and kind == "add" and "~" in update_line:
                    m = None
                if m:
                    regs.append(
                        _Reg(
                            kind=kind,
                            sum_name=m.group("s"),
                            carry_name=m.group("c"),
                            a=m.group("a") if kind != "neg" else None,
                            b=m.group("b"),
                            reset_sum=int(reset.group("sv")),
                            reset_carry=int(reset.group("cv")),
                        )
                    )
                    break
            else:
                m = _DFF_RE.search(update_line)
                if not m:
                    raise ValueError(f"unparsable always_ff body: {update_line}")
                regs.append(
                    _Reg(
                        kind="dff",
                        sum_name=m.group("q"),
                        carry_name=None,
                        a=m.group("d"),
                        b=None,
                        reset_sum=int(reset.group("qv")),
                    )
                )
            i += 4
            continue
        assign = _ASSIGN_RE.search(line)
        if assign:
            dst = assign.group("dst")
            if dst.startswith("out_bits["):
                dst = f"__out{int(dst[9:-1])}"
            assigns.append((dst, assign.group("src")))
        i += 1
    module = RtlModule(
        name=name_match.group(1),
        params=params,
        rows=rows,
        cols=cols,
        regs=regs,
        assigns=assigns,
    )
    module.reset()
    return module
