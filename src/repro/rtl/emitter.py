"""SystemVerilog emission for compiled fixed-matrix multipliers.

This is the reproduction of the paper's actual artifact: "We coded our
design in SystemVerilog and ran synthesis in Xilinx Vivado 2020.2".  The
emitter walks the *same* netlist the cycle simulator executes, so the RTL
and the simulation are two views of one circuit:

* every serial adder becomes ``{carry, sum} <= a + b + carry`` — exactly
  the single-LUT-plus-two-FF primitive of Fig. 1;
* every culled adder becomes a plain ``q <= d`` flip-flop;
* the final subtractor becomes ``{carry, sum} <= a + ~b + carry`` with the
  carry reset to 1 (two's-complement subtraction).

The module's interface is serial: one input bit per matrix row per cycle
(LSb first, then sign extension), one output bit per matrix column.
Result bit ``k`` is valid ``DECODE_DELTA + k`` cycles after ``rst``
deasserts, mirroring :class:`repro.hwsim.builder.CompiledCircuit`.
"""

from __future__ import annotations

from repro.core.plan import MatrixPlan
from repro.hwsim.builder import CompiledCircuit, build_circuit
from repro.hwsim.components import (
    Component,
    ConstantZero,
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)

__all__ = ["emit_verilog", "emit_verilog_from_circuit", "sanitize_identifier"]


def sanitize_identifier(name: str) -> str:
    """Turn a hierarchical component name into a legal Verilog identifier."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    ident = "".join(out)
    if not ident or ident[0].isdigit():
        ident = "n_" + ident
    return ident


class _NameTable:
    """Maps netlist components to unique Verilog identifiers."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._used: set[str] = set()

    def assign(self, component: Component) -> str:
        base = sanitize_identifier(component.name or f"w{len(self._names)}")
        candidate = base
        suffix = 0
        while candidate in self._used:
            suffix += 1
            candidate = f"{base}_{suffix}"
        self._used.add(candidate)
        self._names[id(component)] = candidate
        return candidate

    def ref(self, component: Component) -> str:
        if isinstance(component, InputStream):
            row = int(component.name[2:]) if component.name.startswith("in") else 0
            return f"in_bits[{row}]"
        return self._names[id(component)]


def emit_verilog_from_circuit(
    circuit: CompiledCircuit, module_name: str = "fixed_matrix_mult"
) -> str:
    """Emit a synthesizable SystemVerilog module for a compiled circuit."""
    plan = circuit.plan
    names = _NameTable()
    decls: list[str] = []
    bodies: list[str] = []
    for component in circuit.netlist.components:
        if isinstance(component, InputStream):
            continue
        ident = names.assign(component)
        if isinstance(component, SerialAdder):
            decls.append(f"  logic {ident}, {ident}_c;")
        elif isinstance(component, (SerialSubtractor, SerialNegator)):
            decls.append(f"  logic {ident}, {ident}_c;")
        else:
            decls.append(f"  logic {ident};")
    for component in circuit.netlist.components:
        if isinstance(component, InputStream):
            continue
        ident = names.ref(component)
        if isinstance(component, SerialAdder):
            a = names.ref(component.a)
            b = names.ref(component.b)
            bodies.append(
                f"  always_ff @(posedge clk) begin\n"
                f"    if (rst) {{{ident}_c, {ident}}} <= 2'b00;\n"
                f"    else     {{{ident}_c, {ident}}} <= {a} + {b} + {ident}_c;\n"
                f"  end"
            )
        elif isinstance(component, SerialSubtractor):
            a = names.ref(component.a)
            b = names.ref(component.b)
            bodies.append(
                f"  always_ff @(posedge clk) begin\n"
                f"    if (rst) {{{ident}_c, {ident}}} <= 2'b10;\n"
                f"    else     {{{ident}_c, {ident}}} <= {a} + ~{b} + {ident}_c;\n"
                f"  end"
            )
        elif isinstance(component, SerialNegator):
            b = names.ref(component.b)
            bodies.append(
                f"  always_ff @(posedge clk) begin\n"
                f"    if (rst) {{{ident}_c, {ident}}} <= 2'b10;\n"
                f"    else     {{{ident}_c, {ident}}} <= 1'b0 + ~{b} + {ident}_c;\n"
                f"  end"
            )
        elif isinstance(component, DFF):
            d = names.ref(component.d)
            bodies.append(
                f"  always_ff @(posedge clk) begin\n"
                f"    if (rst) {ident} <= 1'b0;\n"
                f"    else     {ident} <= {d};\n"
                f"  end"
            )
        elif isinstance(component, ConstantZero):
            bodies.append(f"  assign {ident} = 1'b0;")
        else:  # pragma: no cover - future primitive types
            raise TypeError(f"cannot emit {type(component).__name__}")
    outputs = [
        f"  assign out_bits[{j}] = {names.ref(probe.src)};"
        for j, probe in enumerate(circuit.column_probes)
    ]
    # ConstantZero is declared as logic but driven by an assign; switch those
    # declarations to wires by re-declaring nothing (SystemVerilog allows
    # assigning to logic), so no fix-up is required.
    header = f"""// Auto-generated by repro.rtl.emitter — do not edit.
// Fixed {plan.rows}x{plan.cols} matrix, scheme={plan.split.scheme},
// input width {plan.input_width}, plane width {plan.plane_width}.
// Serial protocol: present input bit k of every row on in_bits ahead of
// clock edge k (LSb first, then sign extension). Result bit k of column j
// is valid on out_bits[j] after clock edge DECODE_DELTA + k.
// DECODE_DELTA here is one less than the Python simulator's decode delta
// because the input shift registers (a registered stage in simulation)
// sit outside this module's serial interface.
module {module_name} #(
    localparam int unsigned ROWS = {plan.rows},
    localparam int unsigned COLS = {plan.cols},
    localparam int unsigned INPUT_WIDTH = {plan.input_width},
    localparam int unsigned RESULT_WIDTH = {plan.result_width},
    localparam int unsigned DECODE_DELTA = {circuit.decode_delta - 1}
) (
    input  logic clk,
    input  logic rst,
    input  logic [ROWS-1:0] in_bits,
    output logic [COLS-1:0] out_bits
);
"""
    parts = [header]
    parts.extend(decls)
    parts.append("")
    parts.extend(bodies)
    parts.append("")
    parts.extend(outputs)
    parts.append("endmodule")
    return "\n".join(parts) + "\n"


def emit_verilog(plan: MatrixPlan, module_name: str = "fixed_matrix_mult") -> str:
    """Compile a plan to a netlist and emit its SystemVerilog."""
    return emit_verilog_from_circuit(build_circuit(plan), module_name)
