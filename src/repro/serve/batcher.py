"""Asyncio micro-batching: filling the bit-plane lanes from live traffic.

The bit-plane engine (:mod:`repro.hwsim.fast`) advances up to 64 batch
lanes per ``uint64`` word in one cycle loop, so a 64-lane call costs
barely more than a 1-lane call — but reservoir serving traffic arrives
as *single vectors*.  :class:`MicroBatcher` closes that gap: concurrent
``submit`` calls are coalesced into one lane-packed execution, flushed
either when the batch fills (``max_batch`` lanes) or when the oldest
queued request has waited ``max_delay_s`` — the classic
throughput-versus-tail-latency deadline found in inference servers.

The batcher is engine-agnostic: it owns no circuit, only an ``execute``
callable mapping a ``(B, rows)`` array to a ``(B, cols)`` array, which
the service binds to a :class:`~repro.serve.shards.ShardedMultiplier`.
Execution runs in the event loop's default thread-pool executor so the
loop keeps accepting (and coalescing) requests while a batch simulates.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.serve.admission import DeadlineExceeded

__all__ = ["BatcherStats", "MicroBatcher"]


@dataclass
class BatcherStats:
    """Counters describing how well traffic is filling the lanes."""

    requests: int = 0
    batches: int = 0
    lanes_dispatched: int = 0
    full_flushes: int = 0
    deadline_flushes: int = 0
    forced_flushes: int = 0
    # Requests dropped at flush time because their deadline had already
    # passed — work the client abandoned while it sat in the queue.
    expired: int = 0

    def mean_occupancy(self, max_batch: int) -> float:
        """Mean fraction of available lanes filled per dispatched batch."""
        if not self.batches:
            return 0.0
        return self.lanes_dispatched / (self.batches * max_batch)


class MicroBatcher:
    """Coalesce single-vector requests into lane-packed batch executions.

    Must be used from within a running asyncio event loop; one batcher
    serves one deployment.  ``submit`` preserves per-request results —
    request *k* of a coalesced batch receives row *k* of the batch
    result, so callers are oblivious to the batching.
    """

    def __init__(
        self,
        execute: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        validate: Callable[[np.ndarray], None] | None = None,
        tracer=None,
        profiler=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self._execute = execute
        self._validate = validate
        # Optional repro.obs.tracing.Tracer.  When set and a submit
        # passes its request span, the batcher records each request's
        # queue_wait and one coalesce span per dispatched batch — and
        # calls ``execute`` with a ``trace=`` keyword (the coalesce
        # span's context) so the executor can hang shard spans under
        # it.  Untraced submits call ``execute(vectors)`` exactly as
        # before.
        self._tracer = tracer
        # Optional repro.obs.profile.StageProfiler: every request's
        # queue_wait (enqueue -> flush) is histogrammed per batch —
        # unlike the tracer this needs no per-request span, so it
        # covers *all* traffic at the cost of one perf_counter read per
        # submit and one vectorized binning per flush.
        self._profiler = profiler
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.stats = BatcherStats()
        # Pending entries: (vector, future, trace_info, deadline,
        # enq_pc) where trace_info is None or (parent SpanContext,
        # enqueue perf_counter) for the queue_wait span; the wall-clock
        # start is reconstructed once per flush rather than sampled per
        # submit.  ``deadline`` is an absolute ``time.monotonic()``
        # instant (or None); expired entries are dropped at flush.
        # ``enq_pc`` is the enqueue perf_counter for the profiler's
        # queue_wait histogram (None when unprofiled).
        self._pending: list[
            tuple[np.ndarray, asyncio.Future, tuple | None, float | None,
                  float | None]
        ] = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: set[asyncio.Task] = set()
        # The loop (and its thread) this batcher coalesces on, captured
        # at first submit; lets teardown paths hop onto the loop thread.
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: int | None = None

    # -- public API ----------------------------------------------------------

    async def submit(
        self, vector: np.ndarray, span=None, deadline: float | None = None
    ) -> np.ndarray:
        """Queue one vector; resolves to its product row when its batch runs.

        With a ``validate`` callable installed, a malformed vector raises
        here — to its own caller only — instead of poisoning the batch it
        would have been coalesced into.

        ``span`` is the request's root :class:`SpanContext` (the
        service's ``request`` span); with a tracer configured it
        parents this request's ``queue_wait`` span and — for the batch
        carrier — the ``coalesce`` span.  Context is passed explicitly
        because the batch executes on a loop-pool thread where ambient
        context would not propagate.

        ``deadline`` is an absolute ``time.monotonic()`` instant.  A
        request still queued when its deadline passes is dropped at the
        next flush with :class:`DeadlineExceeded` instead of being
        executed; the surviving batch's remaining budget is forwarded to
        ``execute`` as a ``deadline_s=`` keyword so downstream shard
        servers can skip abandoned work too.
        """
        arr = np.asarray(vector)
        if self._validate is not None:
            self._validate(arr)
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._loop_thread = threading.get_ident()
        future: asyncio.Future = loop.create_future()
        trace_info = None
        if self._tracer is not None and span is not None:
            trace_info = (span, time.perf_counter())
        enq_pc = time.perf_counter() if self._profiler is not None else None
        self._pending.append((arr, future, trace_info, deadline, enq_pc))
        self.stats.requests += 1
        if len(self._pending) >= self.max_batch:
            self._flush("full")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_delay_s, self._flush, "deadline"
            )
        return await future

    async def drain(self) -> None:
        """Force-flush the queue and wait for every in-flight batch."""
        self._flush("forced")
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)

    def reject_pending(self, exc: Exception) -> None:
        """Fail every queued-but-unflushed request with ``exc``, now.

        The synchronous teardown hook: when a deployment is retired its
        executor is about to close, so requests still waiting for a
        flush deadline must be rejected cleanly rather than dispatched
        into a dead executor.  In-flight batches are unaffected (their
        futures resolve or fail on their own).

        Asyncio futures and timer handles are not thread-safe, so a call
        from outside the coalescing loop's thread (an operator thread
        retiring a deployment) is marshalled onto the loop via
        ``call_soon_threadsafe`` and *waited for*, so that when this
        method returns the queue really is empty and the caller may shut
        executors down.  (A batch the deadline timer flushed before the
        rejection landed runs to completion — or fails — into its own
        futures, exactly as any in-flight batch would.)  On the loop
        thread — or with no loop ever seen — it rejects inline.
        """
        loop = self._loop
        if (
            loop is not None
            and loop.is_running()
            and threading.get_ident() != self._loop_thread
        ):
            done = threading.Event()

            def _reject_and_signal() -> None:
                try:
                    self._reject_pending_now(exc)
                finally:
                    done.set()

            loop.call_soon_threadsafe(_reject_and_signal)
            # Bounded wait: if the loop stops before running the
            # callback, nothing can flush the queue into a dead executor
            # either, so proceeding is safe.
            done.wait(timeout=5.0)
        else:
            self._reject_pending_now(exc)

    def _reject_pending_now(self, exc: Exception) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        for entry in pending:
            future = entry[1]
            if not future.done():
                future.set_exception(exc)

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- internals -----------------------------------------------------------

    def _flush(self, reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch = self._pending
        self._pending = []
        # Drop already-expired requests before the batch is stacked:
        # their clients have abandoned them, so executing them only
        # steals lanes from live traffic.  Expired entries fail here —
        # immediately, on the loop thread — and never count as
        # dispatched lanes.
        budget: float | None = None
        if any(entry[3] is not None for entry in batch):
            now = time.monotonic()
            live = []
            for entry in batch:
                deadline = entry[3]
                if deadline is not None and now >= deadline:
                    self.stats.expired += 1
                    future = entry[1]
                    if not future.done():
                        future.set_exception(
                            DeadlineExceeded(
                                "request deadline expired before its batch "
                                "was dispatched"
                            )
                        )
                else:
                    live.append(entry)
            batch = live
            if not batch:
                return
            # The *loosest* surviving deadline becomes the batch's wire
            # budget: a downstream skip is only safe once every request
            # in the batch has expired.
            deadlines = [e[3] for e in batch if e[3] is not None]
            if deadlines:
                budget = max(deadlines) - now
        self.stats.batches += 1
        self.stats.lanes_dispatched += len(batch)
        if reason == "full":
            self.stats.full_flushes += 1
        elif reason == "deadline":
            self.stats.deadline_flushes += 1
        else:
            self.stats.forced_flushes += 1
        task = asyncio.get_running_loop().create_task(
            self._run(batch, reason, budget)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _start_batch_spans(self, batch: list[tuple], reason: str):
        """Record each traced request's queue_wait; open the coalesce span.

        A coalesced batch can carry requests from *different* traces,
        and a span has one parent: the batch's ``coalesce`` span is
        parented on the first traced request (the carrier) with every
        other trace id listed in a ``linked_traces`` attribute — see
        ``docs/observability.md``.  Returns ``None`` when nothing in
        the batch is traced.
        """
        now_pc = time.perf_counter()
        traced = [entry[2] for entry in batch if entry[2] is not None]
        if not traced:
            return None
        # Built inline and recorded under one lock: this runs on the
        # event-loop thread for up to ``max_batch`` requests per flush,
        # where per-span helper-call and locking overhead is measurable.
        # Each queue_wait's wall-clock start is back-derived from one
        # ``time.time()`` sample here minus its monotonic wait, keeping
        # the per-submit cost to a single ``perf_counter`` read.
        from repro.obs.tracing import Span, Tracer

        now_wall = time.time()
        self._tracer.record_many(
            [
                Span(
                    trace_id=ctx.trace_id,
                    span_id=Tracer.new_span_id(),
                    parent_id=ctx.span_id,
                    stage="queue_wait",
                    start_s=now_wall - (now_pc - enq_pc),
                    duration_s=max(0.0, now_pc - enq_pc),
                    attrs={"reason": reason},
                )
                for ctx, enq_pc in traced
            ]
        )
        carrier = traced[0][0]
        span = self._tracer.start_span(
            "coalesce", parent=carrier, lanes=len(batch), reason=reason
        )
        linked = sorted(
            {
                ctx.trace_id
                for ctx, _ in traced[1:]
                if ctx.trace_id != carrier.trace_id
            }
        )
        if linked:
            span.annotate(linked_traces=linked)
        return span

    async def _run(
        self,
        batch: list[
            tuple[np.ndarray, asyncio.Future, tuple | None, float | None,
                  float | None]
        ],
        reason: str,
        budget: float | None = None,
    ) -> None:
        loop = asyncio.get_running_loop()
        if self._profiler is not None:
            # One vectorized binning per dispatched batch covers every
            # request's enqueue -> dispatch wait, traced or not.
            now_pc = time.perf_counter()
            self._profiler.record_many(
                "queue_wait",
                [now_pc - entry[4] for entry in batch if entry[4] is not None],
            )
        coalesce = (
            self._start_batch_spans(batch, reason)
            if self._tracer is not None
            else None
        )
        try:
            # Inside the try so even a shape mismatch at stack time fails
            # every waiting future instead of leaving them pending forever.
            vectors = np.stack([entry[0] for entry in batch])
            kwargs: dict = {}
            if coalesce is not None:
                kwargs["trace"] = coalesce.context
            if budget is not None:
                # Only passed when a deadline exists so deadline-free
                # deployments keep calling plain ``execute(vectors)``
                # (and ``execute(vectors, trace=...)``) callables.
                kwargs["deadline_s"] = budget
            run = functools.partial(self._execute, vectors, **kwargs)
            results = await loop.run_in_executor(None, run)
        except Exception as exc:  # propagate to every caller in the batch
            if coalesce is not None:
                coalesce.annotate(error=f"{type(exc).__name__}: {exc}")
            for entry in batch:
                future = entry[1]
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            if coalesce is not None:
                coalesce.finish()
        for entry, row in zip(batch, results):
            future = entry[1]
            if not future.done():
                future.set_result(row)
