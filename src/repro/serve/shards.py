"""Column-sharded execution of matrices too wide for one device.

Columns are independent in this architecture — each column owns its own
reduction trees, combination chain, and subtractor, and every column
reads the same broadcast input vector — so a wide matrix splits cleanly
into column-range shards with *no partial-sum plumbing*: shard ``k``
computes output columns ``[start_k, stop_k)`` and the full result is the
concatenation.  This is exactly the Sec. VIII tiling discussion
(:mod:`repro.core.tiling`), lifted from a latency model into an executor.

:class:`ShardedMultiplier` partitions a matrix either into a requested
number of near-equal shards or under a LUT budget via
:func:`repro.core.tiling.plan_column_tiles` (the paper's greedy device
packing), compiles each shard once (optionally through a
:class:`repro.serve.cache.CompileCache`), and executes all shards
concurrently.  Results are bit-exact with the monolithic circuit —
asserted by the serve test suite across sparsities, widths, recoding
schemes, backends, and injected faults.

Three execution backends:

* ``backend="thread"`` (default) — one thread per shard over the shared
  bit-plane engine.  Zero setup cost, but numpy releases the GIL only
  partially, so parallelism saturates early.
* ``backend="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers receive each shard's :class:`~repro.hwsim.fast.LoweredKernel`
  (and, when available, its pre-fused shift-add schedule) **once at pool
  creation** (kernels are plain arrays, hence picklable — the payoff of
  the staged compile pipeline) and rebuild a bare ``FastCircuit`` from
  them.  Per call, the input batch is published through one
  :class:`multiprocessing.shared_memory.SharedMemory` block (no
  per-shard copies of the batch cross the pipe), each shard's *current*
  fault overrides — tiny index/value lists — ride along (so live fault
  injection on a shard's netlist is replayed deterministically in the
  worker and stays bit-exact with the thread backend), and results come
  back through a *second* shared-memory block: each worker writes its
  column slice in place, so no result rows cross the pipe either
  (shards with >62-bit results return the self-describing ``"bigint"``
  payload of :func:`repro.core.serialize.array_to_payload` — exact
  Python integers cannot live in shared memory, and object arrays do
  not cross process boundaries here).
* ``backend="remote"`` — the process-backend pattern over sockets
  (:mod:`repro.cluster`): each shard is bound to a
  :class:`~repro.cluster.client.RemoteShard` endpoint, which LOADs the
  shard's kernel **by content digest** from the shared artifact store
  (``endpoints=`` names the fleet; the store comes from the cache's
  directory or ``store=``) and then streams batches as binary frames.
  Live faults ride along as FAULT-frame override schedules exactly as
  the process backend ships them, so campaigns stay bit-exact over the
  network.  A shard whose host times out is retried once on a fresh
  connection and then served *locally* (the compiled engine is still in
  this process) — degraded latency, never a failed batch.  Recovery is
  automatic: once the link's jittered-backoff deadline
  (:mod:`repro.cluster.health`) passes, the next batch doubles as a
  revival probe and a host that answers is promoted straight back to
  remote serving; ``RemoteShard.revive()`` remains as the manual
  fast path.

Engine selection: every execution method takes ``engine``, defaulting
to ``"auto"`` — the fused cycle-loop-free engine when no shard has live
faults, the bit-plane gate engine otherwise (faults break the static
schedule).  :meth:`ShardedMultiplier.resolve_engine` exposes the choice
so the serve layer can record the *effective* engine in telemetry.
"""

from __future__ import annotations

import pathlib
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.bits import signed_range
from repro.core.plan import plan_matrix
from repro.core.serialize import array_from_payload, array_to_payload
from repro.core.tiling import plan_column_tiles
from repro.hwsim.builder import CompiledCircuit, build_circuit
from repro.hwsim.codegen import generate_source
from repro.hwsim.fast import FastCircuit, LoweredKernel
from repro.hwsim.fused import select_variant
from repro.serve.cache import CompileCache, compile_key, persist_artifacts

__all__ = [
    "Shard",
    "ShardedMultiplier",
    "even_column_shards",
    "SHARD_BACKENDS",
    "SERVE_ENGINES",
]

SHARD_BACKENDS = ("thread", "process", "remote")

#: Engines a deployment may be pinned to: ``"auto"`` (fused when
#: fault-free, bitplane otherwise) plus every FastCircuit engine.
SERVE_ENGINES = ("auto",) + FastCircuit.ENGINES


def even_column_shards(cols: int, shards: int) -> list[tuple[int, int]]:
    """Near-equal ``[start, stop)`` column ranges covering ``cols``."""
    if cols < 1:
        raise ValueError(f"cols must be >= 1, got {cols}")
    if not 1 <= shards <= cols:
        raise ValueError(f"shards must be in [1, {cols}], got {shards}")
    base, extra = divmod(cols, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for k in range(shards):
        stop = start + base + (1 if k < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclass
class Shard:
    """One compiled column range plus its execution accounting.

    ``circuit`` is ``None`` when the shard came out of a kernel-cache
    hit — there is no netlist in the process, only the kernel.  Fault
    injection needs the netlist, so campaigns deploy with fresh compiles.
    """

    index: int
    start: int
    stop: int
    circuit: CompiledCircuit | None
    fast: FastCircuit
    calls: int = 0
    busy_s: float = 0.0

    @property
    def cols(self) -> int:
        return self.stop - self.start

    @property
    def kernel(self) -> LoweredKernel:
        return self.fast.kernel

    @property
    def digest(self) -> str:
        return self.fast.kernel.fingerprint


# -- process-backend worker side ---------------------------------------------
#
# Each shard owns a single-worker pool whose process holds exactly that
# shard's bare FastCircuit, built from the kernel shipped through the
# pool initializer — total resident kernel/engine state is O(shards),
# not O(shards^2) as an all-kernels-to-all-workers pool would be.
# Workers never see a netlist, a plan, or a matrix: kernels are the
# deployment unit.

_WORKER_FAST: FastCircuit | None = None


def _process_worker_init(kernel: LoweredKernel, fused, codegen_source=None) -> None:
    """Bind this worker to its shard's kernel (and fused schedule).

    ``fused`` is the shard's pre-fused :class:`FusedKernel` when the
    parent had one (compile-cache deployments always do), shipped once
    here so ``engine="fused"`` calls never re-fuse in the worker; a
    worker given ``None`` fuses lazily on first fused execution.
    ``codegen_source`` likewise ships the parent's generated executor
    source (a plain string) so sparse shards never re-run the
    ``codegen`` stage in the worker.
    """
    global _WORKER_FAST
    _WORKER_FAST = FastCircuit(kernel, fused=fused, codegen_source=codegen_source)


def _process_worker_run(
    shm_name: str,
    shape: tuple[int, int],
    engine: str,
    overrides: tuple[list, dict],
    out_name: str,
    out_cols: int,
    col_range: tuple[int, int],
) -> tuple[tuple[dict, bytes] | None, float]:
    """Execute this worker's shard against the shared-memory input batch.

    The result's column slice is written straight into the parent's
    shared-memory output block (``out_name``, shape ``(batch,
    out_cols)`` int64) — nothing crosses the pipe but accounting.
    Shards whose results exceed int64 (``result_width > 62``) return
    their columns as the self-describing ``(meta, blob)`` payload of
    :func:`array_to_payload` instead — fixed-width ``"bigint"`` limbs,
    the same form the cluster wire uses, never a pickled object array.
    Returns ``(payload or None, busy_seconds)`` so the parent keeps the
    same per-shard utilization accounting as the thread backend.
    """
    start = time.perf_counter()
    shm = shared_memory.SharedMemory(name=shm_name)
    out_shm = shared_memory.SharedMemory(name=out_name)
    payload = None
    try:
        batch = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
        out = _WORKER_FAST.multiply_batch(
            batch, engine=engine, overrides=overrides
        )
        if out.dtype == np.int64:
            dest = np.ndarray((shape[0], out_cols), dtype=np.int64, buffer=out_shm.buf)
            dest[:, col_range[0] : col_range[1]] = out
        else:
            payload = array_to_payload(out)
    finally:
        shm.close()
        out_shm.close()
    return payload, time.perf_counter() - start


class ShardedMultiplier:
    """A fixed matrix executed as concurrently-simulated column shards.

    Args:
        matrix: 2-D signed integer matrix (the full, unsharded ``V``).
        shards: partition into this many near-equal column ranges.
        lut_budget: alternatively, partition greedily so each shard fits
            the budget (Sec. VIII; see ``plan_column_tiles``).  Exactly
            one of ``shards`` / ``lut_budget`` may be given; the default
            is a single shard.
        input_width / scheme / tree_style: compile options, as for
            :func:`repro.core.plan.plan_matrix`.
        cache: optional :class:`CompileCache`; shard compiles go through
            it so identical shards across deployments are compiled once
            (and, with a warm kernel store, never built at all).
        backend: ``"thread"`` (default), ``"process"``, or ``"remote"``;
            see the module docstring for the trade-offs.
        max_workers: thread-pool width (default: one thread per shard).
            The process backend always runs one worker per shard — each
            worker holds exactly its own shard's kernel.
        endpoints: remote backend only — ``[(host, port), ...]`` shard
            servers; shard ``k`` binds to endpoint ``k % len(endpoints)``.
        store: remote backend only — the shared artifact directory the
            fleet loads kernels from.  Defaults to ``cache.directory``;
            required explicitly when compiling outside a persistent
            cache (the fresh-compile path then persists each shard's
            fault-free artifacts itself so servers can resolve them).
        request_timeout_s: remote backend only — per-request socket
            timeout (connect, send, and the full response).
        probe_backoff: remote backend only — revival backoff policy
            shared by every shard link
            (:class:`repro.cluster.health.BackoffPolicy`; ``None`` for
            the default).  Benchmarks and tests pass an aggressive one.
        probe_clock: remote backend only — monotonic-seconds callable
            driving the probe schedules (tests inject a fake clock so
            revival scenarios run with zero real sleeps).
        tracer: optional :class:`repro.obs.tracing.Tracer`.  When set
            *and* a call passes ``trace=``, each shard's execution is
            recorded as a ``shard_dispatch`` span (remote shards adding
            a ``wire`` child for the socket round-trip, with the
            server's ``server_execute`` span adopted from the RESULT
            frame).  ``None`` (default) instruments nothing.
        recorder: optional :class:`repro.obs.recorder.FlightRecorder`
            receiving shard-link health events (``shard_unhealthy``,
            ``shard_revived``, ``probe_failed``, ``local_fallback``).
        profiler: optional :class:`repro.obs.profile.StageProfiler`
            histogramming every shard execution (``shard_dispatch``,
            and ``wire`` for the remote round-trip) keyed by the
            variant-qualified engine label.  Unlike the tracer it needs
            no per-call ``trace=`` context — with a profiler set, *all*
            traffic is histogrammed.  ``None`` (default) records
            nothing.
        auth_secret: remote backend only — shared secret for fleets
            whose servers demand the HELLO challenge/response handshake
            (``--auth-secret``); ``None`` against open fleets.
        trip_threshold: remote backend only — consecutive failed
            requests before a shard link's circuit breaker opens (see
            :class:`repro.cluster.client.RemoteShard`); the default of
            1 trips on the first exhausted request.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        shards: int | None = None,
        lut_budget: int | None = None,
        input_width: int = 8,
        scheme: str = "csd",
        tree_style: str = "compact",
        cache: CompileCache | None = None,
        backend: str = "thread",
        max_workers: int | None = None,
        endpoints: list[tuple[str, int]] | None = None,
        store: str | None = None,
        request_timeout_s: float = 5.0,
        probe_backoff=None,
        probe_clock=time.monotonic,
        tracer=None,
        recorder=None,
        profiler=None,
        auth_secret: str | None = None,
        trip_threshold: int = 1,
    ) -> None:
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.ndim != 2 or arr.size == 0:
            raise ValueError(f"expected a non-empty 2-D matrix, got shape {arr.shape}")
        if shards is not None and lut_budget is not None:
            raise ValueError("pass either shards or lut_budget, not both")
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"backend must be one of {SHARD_BACKENDS}, got {backend!r}"
            )
        store_dir = None
        if backend == "remote":
            if not endpoints:
                raise ValueError(
                    "backend='remote' needs endpoints=[(host, port), ...]"
                )
            store_dir = store if store is not None else (
                cache.directory if cache is not None else None
            )
            if store_dir is None:
                raise ValueError(
                    "backend='remote' needs a shared artifact store: pass a "
                    "CompileCache with directory=... or store=..."
                )
        self.matrix = arr
        self.input_width = int(input_width)
        self.scheme = scheme
        self.tree_style = tree_style
        self.backend = backend
        self.tracer = tracer
        self.recorder = recorder
        self.profiler = profiler
        if lut_budget is not None:
            ranges = plan_column_tiles(arr, lut_budget, scheme=scheme)
        else:
            ranges = even_column_shards(arr.shape[1], shards if shards else 1)
        # The fleet resolves kernels from store_dir, so a remote deploy
        # must guarantee its shards' artifacts land *there* — which the
        # cache only does when it persists to that same directory.
        store_separately = backend == "remote" and (
            cache is None
            or cache.directory is None
            or pathlib.Path(store_dir) != cache.directory
        )
        self.shards: list[Shard] = []
        for k, (start, stop) in enumerate(ranges):
            piece = arr[:, start:stop]
            if cache is not None:
                entry = cache.get(
                    piece,
                    input_width=input_width,
                    scheme=scheme,
                    tree_style=tree_style,
                )
                circuit, fast, plan = entry.circuit, entry.fast, entry.plan
            else:
                # Compiled outside the shared cache (fault campaigns do
                # this for netlist privacy).
                plan = plan_matrix(
                    piece,
                    input_width=input_width,
                    scheme=scheme,
                    tree_style=tree_style,
                )
                circuit = build_circuit(plan)
                fast = FastCircuit.from_compiled(circuit)
            if store_separately:
                if plan is None:
                    # A kernel-only memory hit (load_key) carries no
                    # plan; the memo/disk path recovers it cheaply.
                    plan = cache.get_plan(
                        piece,
                        input_width=input_width,
                        scheme=scheme,
                        tree_style=tree_style,
                    )
                fused = fast.fuse()
                if fast.codegen_source is None and (
                    select_variant(
                        fused.terms, fused.rows, fused.cols, fused.result_width
                    )
                    == "generated"
                ):
                    # The fleet resolves *all* of a shard's artifacts
                    # from the store, so a sparse shard's generated
                    # source must land there too — otherwise every
                    # server pays one codegen per deploy.
                    fast.codegen_source = generate_source(fused)
                persist_artifacts(
                    store_dir,
                    compile_key(piece, input_width, scheme, tree_style),
                    plan,
                    fast.kernel,
                    fused,
                    codegen_source=fast.codegen_source,
                )
            self.shards.append(
                Shard(index=k, start=start, stop=stop, circuit=circuit, fast=fast)
            )
        workers = max_workers if max_workers is not None else len(self.shards)
        self._pool: Executor | None = None
        self._shard_pools: list[ProcessPoolExecutor] = []
        self._remotes: list = []
        if backend == "process":
            # One single-worker pool per shard: each shard's kernel
            # crosses the process boundary exactly once, into exactly one
            # worker.  (``max_workers`` applies to the thread backend;
            # process parallelism is one worker per shard by design.)
            self._shard_pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_process_worker_init,
                    initargs=(shard.kernel, shard.fast.fused, shard.fast.codegen_source),
                )
                for shard in self.shards
            ]
        else:
            if backend == "remote":
                # Imported lazily: the serve layer stays importable (and
                # thread/process deploys stay zero-cost) without the
                # cluster subsystem.
                from repro.cluster.client import ClusterClient

                client = ClusterClient(
                    endpoints,
                    timeout_s=request_timeout_s,
                    probe_backoff=probe_backoff,
                    clock=probe_clock,
                    recorder=recorder,
                    auth_secret=auth_secret,
                    trip_threshold=trip_threshold,
                )
                for k, shard in enumerate(self.shards):
                    self._remotes.append(
                        client.shard_handle(
                            k,
                            {
                                "matrix_digest": compile_key(
                                    arr[:, shard.start : shard.stop],
                                    input_width,
                                    scheme,
                                    tree_style,
                                ).matrix_digest,
                                "input_width": self.input_width,
                                "scheme": scheme,
                                "tree_style": tree_style,
                                "start": shard.start,
                                "stop": shard.stop,
                                "fingerprint": shard.fast.kernel.fingerprint,
                            },
                        )
                    )
                # Deploy-time warmup: bind and LOAD each link now, so a
                # misconfigured store fails the deploy loudly while a
                # merely-unreachable host stays a soft (fallback) state.
                # Concurrent, so a deploy over dead hosts costs one
                # connect timeout, not one per shard; on a refusal every
                # already-opened socket is closed before the raise.
                with ThreadPoolExecutor(
                    max_workers=max(1, len(self._remotes)),
                    thread_name_prefix="repro-shard-warm",
                ) as warmers:
                    outcomes = []
                    for remote, future in [
                        (r, warmers.submit(r.warm)) for r in self._remotes
                    ]:
                        try:
                            future.result()
                        except Exception as exc:  # noqa: BLE001 - re-raised
                            outcomes.append((remote, exc))
                if outcomes:
                    for remote in self._remotes:
                        remote.close()
                    raise outcomes[0][1]
            if len(self.shards) > 1:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, workers), thread_name_prefix="repro-shard"
                )
        self._stats_lock = threading.Lock()
        # In-flight batch accounting for drain(): the swap protocol
        # needs "no batch is executing against the old matrix" as a
        # waitable condition.
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._created = time.monotonic()

    # -- structure -----------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def cols(self) -> int:
        return self.matrix.shape[1]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def shard_ranges(self) -> list[tuple[int, int]]:
        return [(s.start, s.stop) for s in self.shards]

    # -- execution -----------------------------------------------------------

    def _validate(self, vectors: np.ndarray) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        if arr.ndim != 2 or arr.shape[1] != self.rows:
            raise ValueError(
                f"expected vectors of shape (batch, {self.rows}), "
                f"got {np.asarray(vectors).shape}"
            )
        lo, hi = signed_range(self.input_width)
        if arr.size and (arr.min() < lo or arr.max() > hi):
            bad = arr[(arr < lo) | (arr > hi)][0]
            raise ValueError(f"input {bad} does not fit in s{self.input_width}")
        return arr

    def validate_vector(self, vector: np.ndarray) -> None:
        """Raise ValueError unless ``vector`` is one servable request.

        Used by the micro-batcher to reject a malformed request at submit
        time, before it can be coalesced with (and fail alongside) valid
        traffic.
        """
        arr = np.asarray(vector)
        if arr.ndim != 1 or arr.shape[0] != self.rows:
            raise ValueError(
                f"expected a vector of length {self.rows}, got shape {arr.shape}"
            )
        self._validate(arr[None, :])

    def _record(self, shard: Shard, elapsed: float) -> None:
        with self._stats_lock:
            shard.calls += 1
            shard.busy_s += elapsed

    def has_faults(self) -> bool:
        """True when any shard has live or snapshotted faults pending."""
        return any(s.fast.has_faults for s in self.shards)

    def resolve_engine(self, engine: str = "auto") -> str:
        """The engine an execution with ``engine`` would actually run.

        ``"auto"`` resolves to the cycle-loop-free ``"fused"`` schedule
        when every shard is fault-free, and to the bit-plane gate engine
        whenever faults are active (the fused engine refuses faults).
        Explicit engines pass through unchanged; the serve layer records
        the resolved value in telemetry per hardware call.
        """
        if engine == "auto":
            return "bitplane" if self.has_faults() else "fused"
        if engine not in FastCircuit.ENGINES:
            raise ValueError(
                f"engine must be one of {SERVE_ENGINES}, got {engine!r}"
            )
        return engine

    def fused_variant(self) -> str:
        """The fused executor variant this deployment runs.

        One of :attr:`~repro.hwsim.fused.FusedCircuit.VARIANTS`, or
        ``"mixed"`` when column shards resolve differently (shard term
        densities straddle the selector threshold).  Forces each
        shard's fused executor to build — call only when fused
        execution is (about to be) live.
        """
        variants = {s.fast.fused_variant for s in self.shards}
        return variants.pop() if len(variants) == 1 else "mixed"

    def executor_label(self, engine: str) -> str:
        """The variant-qualified reporting label for a resolved engine.

        Gate engines pass through unchanged; ``"fused"`` gains its
        executor variant (``fused:dense`` / ``fused:segmented`` /
        ``fused:generated`` / ``fused:mixed``) so telemetry, spans, and
        cluster STATS say which code actually ran.  The *execution*
        engine strings (:attr:`FastCircuit.ENGINES`) are unchanged —
        this is a reporting label, never an engine name.
        """
        if engine != "fused":
            return engine
        return f"fused:{self.fused_variant()}"

    def resolve_executor(self, engine: str = "auto") -> str:
        """:meth:`resolve_engine` plus variant qualification.

        The label the serve layer records per hardware call; the
        cluster server derives the same label from the same selector on
        the same artifacts, so client- and server-side reporting agree.
        """
        return self.executor_label(self.resolve_engine(engine))

    def _shard_label(self, shard: Shard, engine: str) -> str:
        """Per-shard variant-qualified label (shards of one deployment
        can resolve to different fused variants)."""
        return f"fused:{shard.fast.fused_variant}" if engine == "fused" else engine

    def _profile(self, stage: str, elapsed: float, label: str) -> None:
        if self.profiler is not None:
            self.profiler.record(stage, elapsed, variant=label)

    def _dispatch_span(self, shard: Shard, engine: str, trace):
        """Open a ``shard_dispatch`` span, or ``None`` when untraced."""
        if self.tracer is None or trace is None:
            return None
        label = self._shard_label(shard, engine)
        return self.tracer.start_span(
            "shard_dispatch",
            parent=trace,
            shard=shard.index,
            columns=[shard.start, shard.stop],
            backend=self.backend,
            engine=label,
        )

    def _run_shard(
        self,
        shard: Shard,
        batch: np.ndarray,
        engine: str,
        trace=None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        start = time.perf_counter()
        dispatch = self._dispatch_span(shard, engine, trace)
        try:
            out = shard.fast.multiply_batch(batch, engine=engine)
        finally:
            if dispatch is not None:
                dispatch.finish()
        elapsed = time.perf_counter() - start
        self._record(shard, elapsed)
        if self.profiler is not None:
            self._profile(
                "shard_dispatch", elapsed, self._shard_label(shard, engine)
            )
        return out

    def _run_remote_shard(
        self,
        shard: Shard,
        batch: np.ndarray,
        engine: str,
        trace=None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """One shard's batch over its endpoint, falling back locally.

        The shard's *current* live-fault schedule is snapshotted here
        and synchronized to the server (a FAULT frame only when it
        changed), mirroring the process backend's per-call override
        shipping.  A :class:`~repro.cluster.client.RemoteShardError`
        (connect/timeout twice, or an already-unhealthy link) degrades
        to local execution on the shard's in-process engine — same
        kernel, same overrides, bit-identical result.

        When tracing, the dispatch span gains a ``wire`` child covering
        the socket round-trip; the wire span's context rides the
        EXECUTE frame, and the server's ``server_execute`` span comes
        back in the RESULT for the tracer to adopt — so the client
        holds a single tree linked by propagated ids, not clock math.
        """
        from repro.cluster.client import RemoteShardError

        remote = self._remotes[shard.index]
        overrides = shard.fast.fault_overrides()
        dispatch = self._dispatch_span(shard, engine, trace)
        label = (
            self._shard_label(shard, engine)
            if self.profiler is not None
            else ""
        )
        start = time.perf_counter()
        try:
            try:
                wire_start = time.perf_counter()
                if dispatch is not None:
                    with self.tracer.start_span(
                        "wire",
                        parent=dispatch.context,
                        endpoint=remote.endpoint,
                        shard=shard.index,
                    ) as wire:
                        out, _, _, spans = remote.execute(
                            batch,
                            engine,
                            overrides,
                            trace=wire.context.to_meta(),
                            deadline_s=deadline_s,
                        )
                        wire.annotate(server_spans=len(spans))
                    if spans:
                        self.tracer.adopt(spans)
                else:
                    out, _, _, _ = remote.execute(
                        batch, engine, overrides, deadline_s=deadline_s
                    )
                if self.profiler is not None:
                    # The successful round-trip only: a fallback's time
                    # belongs to its local shard_dispatch, not to a wire
                    # that was never completed.
                    self._profile(
                        "wire", time.perf_counter() - wire_start, label
                    )
            except RemoteShardError as exc:
                remote.local_fallbacks += 1
                if self.recorder is not None:
                    self.recorder.record(
                        "local_fallback",
                        endpoint=remote.endpoint,
                        shard=shard.index,
                        error=str(exc),
                    )
                if dispatch is not None:
                    dispatch.annotate(local_fallback=True)
                out = shard.fast.multiply_batch(
                    batch, engine=engine, overrides=overrides
                )
        finally:
            if dispatch is not None:
                dispatch.finish()
        elapsed = time.perf_counter() - start
        self._record(shard, elapsed)
        if self.profiler is not None:
            self._profile("shard_dispatch", elapsed, label)
        return out

    def _run_process_backend(self, batch: np.ndarray, engine: str) -> np.ndarray:
        """All shards against one shared-memory copy of the batch.

        Results travel back through a second shared-memory block that
        every worker fills in place (its own column slice), so the
        return pipe carries only timing accounting — except for >62-bit
        shards, whose exact-integer columns are merged from their
        pickled returns into an object-dtype result.
        """
        rows = batch.shape[0]
        shm = shared_memory.SharedMemory(create=True, size=batch.nbytes)
        out_shm = shared_memory.SharedMemory(
            create=True, size=max(1, rows * self.cols * 8)
        )
        try:
            staged = np.ndarray(batch.shape, dtype=np.int64, buffer=shm.buf)
            staged[:] = batch
            futures = [
                pool.submit(
                    _process_worker_run,
                    shm.name,
                    batch.shape,
                    engine,
                    # Snapshot each shard's live faults; workers hold only
                    # kernels, so the overrides are the fault channel.
                    shard.fast.fault_overrides(),
                    out_shm.name,
                    self.cols,
                    (shard.start, shard.stop),
                )
                for shard, pool in zip(self.shards, self._shard_pools)
            ]
            results = [f.result() for f in futures]
            staged_out = np.ndarray(
                (rows, self.cols), dtype=np.int64, buffer=out_shm.buf
            )
            merged = staged_out.copy()
        finally:
            shm.close()
            shm.unlink()
            out_shm.close()
            out_shm.unlink()
        wide_pieces = []
        for shard, (payload, elapsed) in zip(self.shards, results):
            self._record(shard, elapsed)
            if self.profiler is not None:
                self._profile(
                    "shard_dispatch", elapsed, self._shard_label(shard, engine)
                )
            if payload is not None:
                meta, blob = payload
                wide_pieces.append((shard, array_from_payload(meta, blob)))
        if wide_pieces:
            merged = merged.astype(object)
            for shard, out in wide_pieces:
                merged[:, shard.start : shard.stop] = out
        return merged

    def multiply_batch(
        self,
        vectors: np.ndarray,
        engine: str = "auto",
        trace=None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """``(B, rows) -> (B, cols)``, every shard advancing concurrently.

        Each shard receives the *full* input vectors (the architecture
        broadcasts inputs to every column) and produces its own column
        slice; slices concatenate into the monolithic result bit-exactly.
        ``engine`` defaults to ``"auto"`` (see :meth:`resolve_engine`).

        ``trace`` is an optional :class:`repro.obs.tracing.SpanContext`
        naming the parent span (the batcher's ``coalesce`` span); with a
        tracer configured it hangs per-shard ``shard_dispatch`` spans —
        and, for remote shards, ``wire``/``server_execute`` children —
        under it.  Context crosses the executor's thread pool explicitly
        as this argument, never through ambient thread-local state.

        ``deadline_s`` is the batch's remaining deadline budget (set by
        the micro-batcher from its requests' propagated deadlines).  It
        rides the remote backend's EXECUTE meta so servers can skip
        abandoned work — a server ``"expired"`` refusal propagates as
        :class:`~repro.serve.admission.DeadlineExceeded` to every
        request in the batch.  Local backends execute regardless: the
        work is already here and bounded.
        """
        batch = self._validate(vectors)
        engine = self.resolve_engine(engine)
        with self._inflight_cv:
            self._inflight += 1
        try:
            if batch.shape[0] == 0:
                pieces = [
                    s.fast.multiply_batch(batch, engine=engine) for s in self.shards
                ]
                return np.concatenate(pieces, axis=1)
            if self.backend == "process":
                if self.tracer is not None and trace is not None:
                    # One span for the whole fan-out: worker processes
                    # hold no tracer, so per-shard timing stays in
                    # utilization() while the trace records the fan-out.
                    with self.tracer.start_span(
                        "shard_dispatch",
                        parent=trace,
                        backend="process",
                        shards=self.shard_count,
                        engine=self.executor_label(engine),
                    ):
                        return self._run_process_backend(batch, engine)
                return self._run_process_backend(batch, engine)
            run = self._run_remote_shard if self.backend == "remote" else self._run_shard
            if self._pool is None:
                pieces = [
                    run(s, batch, engine, trace, deadline_s) for s in self.shards
                ]
            else:
                futures = [
                    self._pool.submit(run, s, batch, engine, trace, deadline_s)
                    for s in self.shards
                ]
                pieces = [f.result() for f in futures]
            return np.concatenate(pieces, axis=1)
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """One vector through every shard; returns the ``(cols,)`` product."""
        arr = np.asarray(vector, dtype=np.int64).ravel()
        return self.multiply_batch(arr[None, :])[0]

    # -- telemetry / lifecycle ----------------------------------------------

    @property
    def inflight(self) -> int:
        """Batches currently executing (all backends)."""
        with self._inflight_cv:
            return self._inflight

    def drain(self, timeout_s: float | None = None) -> bool:
        """Block until no batch is executing; ``True`` on quiescence.

        The swap protocol's barrier: after routing flips away from this
        executor, ``drain()`` returning ``True`` means every batch that
        ever saw the old matrix has finished, so it is safe to close.
        ``False`` means the timeout elapsed with work still in flight.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._inflight_cv:
            while self._inflight:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    def poke_probes(self) -> dict:
        """Probe due unhealthy remote links now (idle-fleet revival).

        Execute traffic already revives lazily; this is the hook for
        housekeeping loops (telemetry scrapes, benchmarks) that want
        recovery before the next request pays for the probe.  Local
        backends trivially report nothing to do.
        """
        if self.backend != "remote" or not self._remotes:
            return {"probed": 0, "revived": 0, "waiting": 0}
        from repro.cluster.health import HealthProber

        return HealthProber(self._remotes).poke()

    def utilization(self) -> dict:
        """Per-shard busy time against wall-clock since construction.

        Remote deployments additionally report each shard's link health,
        endpoint, RTT percentiles, and how many batches fell back to
        local execution — the per-shard view an operator needs to tell a
        slow host from a dead one.
        """
        elapsed = max(time.monotonic() - self._created, 1e-9)
        with self._stats_lock:
            per_shard = []
            for s in self.shards:
                entry = {
                    "shard": s.index,
                    "columns": [s.start, s.stop],
                    "calls": s.calls,
                    "busy_s": round(s.busy_s, 6),
                    "utilization": round(s.busy_s / elapsed, 6),
                }
                # Which fused executor this shard would run — reported
                # only once built (never forces a build from a
                # telemetry scrape).
                variant = s.fast.resolved_fused_variant
                if variant is not None:
                    entry["fused_variant"] = variant
                if self.backend == "remote" and self._remotes:
                    entry.update(self._remotes[s.index].telemetry())
                per_shard.append(entry)
        return {
            "shards": self.shard_count,
            "backend": self.backend,
            "elapsed_s": round(elapsed, 6),
            "per_shard": per_shard,
        }

    def close(self, wait: bool = True) -> None:
        """Release executors and sockets.

        ``wait=False`` is the force-close path for a wedged executor
        (a drain that timed out): pools are shut down without joining
        their workers (queued work cancelled), and remote sockets are
        closed first — which is what actually unblocks a worker wedged
        in a socket read.  The abandoned batch's futures then fail with
        the transport error instead of hanging forever.
        """
        if not wait:
            # Closing sockets before the pool shutdown interrupts
            # blocked recv()s so wedged workers can exit.
            for remote in self._remotes:
                remote.close()
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None
        for pool in self._shard_pools:
            pool.shutdown(wait=wait, cancel_futures=not wait)
        self._shard_pools = []
        for remote in self._remotes:
            remote.close()
        self._remotes = []

    def __enter__(self) -> "ShardedMultiplier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
