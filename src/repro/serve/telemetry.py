"""Service telemetry: the numbers an operator watches on a dashboard.

Kept deliberately dependency-free (no prometheus client in this
container): a bounded reservoir of per-request latencies for percentile
estimation plus monotonic counters, snapshotted into a plain dict that
serializes straight to JSON for the throughput benchmark and any
external scraper.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

import numpy as np

__all__ = ["LatencyWindow", "RateWindow", "DeploymentTelemetry"]


def _point_label(point: float) -> str:
    """Percentile point → stable snapshot key: 50 → ``"p50"``, 99.9 →
    ``"p99_9"``.

    Fractional points keep their fraction (dot swapped for an
    underscore so the key stays a valid identifier/Prometheus label);
    the old ``f"p{int(p)}"`` collapsed 99.9 onto ``"p99"`` and silently
    overwrote the real p99 entry.
    """
    return "p" + f"{float(point):g}".replace(".", "_")


class LatencyWindow:
    """Rolling window of request latencies with percentile snapshots.

    Thread-safe on its own: recorders (shard-pool threads, the cluster
    client's RTT path) and snapshotters (telemetry readers) hold
    different outer locks, and iterating a ``deque`` while another
    thread appends raises ``RuntimeError`` — so reads and writes
    serialize on an internal lock here.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def record(self, latency_s: float) -> None:
        with self._lock:
            self._samples.append(latency_s)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentiles(self, *points: float) -> dict[str, float]:
        """``{"p50": ..., "p99_9": ...}`` over the current window
        (NaN-free: an empty window reports zeros so snapshots stay
        JSON-friendly).  Fractional points keep their fraction in the
        key — ``percentiles(99, 99.9)`` yields distinct ``"p99"`` and
        ``"p99_9"`` entries."""
        with self._lock:
            if not self._samples:
                return {_point_label(p): 0.0 for p in points}
            arr = np.array(self._samples, dtype=float)
        values = np.percentile(arr, points)
        return {_point_label(p): float(v) for p, v in zip(points, values)}

    def summary(self) -> dict:
        """The standard dashboard digest of one window: p50/p99/p99.9.

        Shared by deployment latency snapshots and the cluster client's
        per-shard RTT reporting, so every latency-shaped number in
        telemetry reads the same way.  p99.9 is in the standard digest
        because tail SLOs are where the paper's batching trade-off
        actually bites — and it must not collide with p99 (see
        :func:`_point_label`).
        """
        pct = self.percentiles(50, 99, 99.9)
        return {
            "p50": round(pct["p50"], 6),
            "p99": round(pct["p99"], 6),
            "p99_9": round(pct["p99_9"], 6),
            "samples": len(self),
        }


class RateWindow:
    """Sliding-window event rate: events per second over the recent past.

    The lifetime ``products / uptime`` quotient answers "how much work
    has this deployment ever done" but decays toward zero the moment
    traffic stops — a deployment idle for an hour reports ~0 rps
    forever, which is useless to an adaptive controller that needs the
    *current* arrival rate.  This window answers "how fast right now":
    events are counted into coarse time buckets (1 s by default) and
    the rate is the bucket sum over the window span, so memory is
    O(window/bucket) regardless of traffic volume.

    Thread-safe; the clock is injectable (tests drive a fake, so rate
    assertions never race real time).  Until a full window has elapsed
    since construction the divisor is the elapsed time instead, so a
    young window reports its true rate rather than an underestimate.
    """

    def __init__(
        self,
        window_s: float = 30.0,
        bucket_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if not 0 < bucket_s <= window_s:
            raise ValueError(
                f"bucket_s must be in (0, {window_s}], got {bucket_s}"
            )
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self._span = max(1, int(round(self.window_s / self.bucket_s)))
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: deque[list[float]] = deque()  # [bucket_index, count]
        self._started = clock()
        self.total = 0

    def _trim(self, index: int) -> None:
        cutoff = index - self._span
        while self._buckets and self._buckets[0][0] <= cutoff:
            self._buckets.popleft()

    def record(self, count: int = 1) -> None:
        now = self._clock()
        index = int(now / self.bucket_s)
        with self._lock:
            if self._buckets and self._buckets[-1][0] == index:
                self._buckets[-1][1] += count
            else:
                self._buckets.append([index, count])
                self._trim(index)
            self.total += int(count)

    def rate(self) -> float:
        """Events per second over the window (0.0 when quiet)."""
        now = self._clock()
        with self._lock:
            self._trim(int(now / self.bucket_s))
            counted = sum(c for _, c in self._buckets)
            horizon = min(
                self.window_s, max(now - self._started, self.bucket_s)
            )
        return counted / horizon


class DeploymentTelemetry:
    """Counters and latency stats for one deployed matrix.

    Thread-safe; shared by the asyncio submit path (loop thread), the
    shard executor threads, and synchronous ``run_stream`` rollouts.
    """

    def __init__(
        self,
        max_batch: int = 64,
        window: int = 4096,
        max_delay_s: float | None = None,
        rate_window_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_batch = max_batch
        # The micro-batcher flush deadline this deployment is actually
        # running with; surfaced in snapshots so an operator reading a
        # dashboard can see the configured latency/throughput trade-off
        # next to the measured percentiles.
        self.max_delay_s = max_delay_s
        self._lock = threading.Lock()
        self._latency = LatencyWindow(window)
        self._clock = clock
        self._started = clock()
        # Windowed rates alongside the lifetime quotient: the lifetime
        # ``products / uptime`` number never recovers from an idle
        # stretch, while the adaptive-batching controller needs the
        # *current* arrival rate to pick a flush deadline.
        self._arrivals = RateWindow(window_s=rate_window_s, clock=clock)
        self._completions = RateWindow(window_s=rate_window_s, clock=clock)
        self.requests = 0
        self.products = 0
        self.batches = 0
        self.lanes = 0
        # Hardware batches per *effective* engine: an "auto" deployment
        # serves fused traffic until a fault campaign flips it to the
        # gate-level engine, and an operator should be able to see both
        # the current choice and the history on the dashboard.  Fused
        # batches arrive variant-qualified ("fused:dense" /
        # "fused:segmented" / "fused:generated" / "fused:mixed") so the
        # dashboard also distinguishes which fused executor ran.
        self.engine_batches: dict[str, int] = {}
        self.effective_engine: str | None = None
        # Zero-downtime matrix swaps this deployment has been through —
        # a dashboard's tell that latency blips line up with rollouts.
        self.swaps = 0
        # Overload accounting: requests refused rather than served.
        # ``sheds`` is the bounded-queue rejections (QueueFull),
        # ``quota_rejections`` the per-tenant token-bucket refusals,
        # ``expired`` the admitted requests whose deadline ran out
        # before execution (dropped at flush or refused by a shard
        # server).  Together with ``requests`` these reconcile against
        # offered load exactly: arrivals == requests + sheds +
        # quota_rejections + expired (+ still in flight).
        self.sheds = 0
        self.quota_rejections = 0
        self.expired = 0
        self._shed_by_tenant: dict[str, dict[str, int]] = {}

    def record_arrival(self, count: int = 1) -> None:
        """Requests *offered* (called at submit time, before queueing).

        Feeds the windowed arrival rate — the load signal an adaptive
        batching controller reacts to, distinct from the completion
        rate when the service is falling behind.
        """
        self._arrivals.record(count)

    def record_request(self, latency_s: float) -> None:
        """One request completed end to end (submit to result)."""
        with self._lock:
            self.requests += 1
            self.products += 1
            self._latency.record(latency_s)
        self._completions.record(1)

    def record_products(self, count: int) -> None:
        """Products completed outside the request path (stream rollouts)."""
        with self._lock:
            self.products += int(count)
        self._completions.record(int(count))

    def record_batch(self, lanes: int, engine: str | None = None) -> None:
        """One hardware batch dispatched with ``lanes`` lanes filled.

        ``engine`` is the *effective* engine the batch executed on (the
        resolved value of an ``"auto"`` deployment), recorded per batch.
        Fused execution reports the variant-qualified label
        (``fused:<variant>`` from
        :meth:`~repro.serve.shards.ShardedMultiplier.executor_label`);
        this class treats all labels as opaque strings.
        """
        with self._lock:
            self.batches += 1
            self.lanes += int(lanes)
            if engine is not None:
                self.effective_engine = engine
                self.engine_batches[engine] = (
                    self.engine_batches.get(engine, 0) + 1
                )

    def record_swap(self) -> None:
        """One zero-downtime matrix swap flipped routing."""
        with self._lock:
            self.swaps += 1

    _SHED_REASONS = ("queue_full", "quota", "expired")

    def record_shed(self, reason: str, tenant: str = "default") -> None:
        """One request refused: ``"queue_full"``, ``"quota"``, or
        ``"expired"``.

        Counted per tenant so a dashboard can tell "the fleet is
        saturated" (sheds spread across tenants) from "one tenant is
        over quota" at a glance.
        """
        if reason not in self._SHED_REASONS:
            raise ValueError(
                f"unknown shed reason {reason!r}; expected one of "
                f"{self._SHED_REASONS}"
            )
        with self._lock:
            if reason == "queue_full":
                self.sheds += 1
            elif reason == "quota":
                self.quota_rejections += 1
            else:
                self.expired += 1
            per = self._shed_by_tenant.setdefault(
                tenant, {r: 0 for r in self._SHED_REASONS}
            )
            per[reason] += 1

    @property
    def uptime_s(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> dict:
        """Point-in-time metrics dict (JSON-serializable)."""
        with self._lock:
            elapsed = max(self.uptime_s, 1e-9)
            occupancy = (
                self.lanes / (self.batches * self.max_batch)
                if self.batches
                else 0.0
            )
            return {
                "uptime_s": round(elapsed, 6),
                "batching": {
                    "max_batch": self.max_batch,
                    "max_delay_s": self.max_delay_s,
                },
                "engine": {
                    "effective": self.effective_engine,
                    "batches": dict(self.engine_batches),
                },
                "requests": self.requests,
                "products": self.products,
                "batches": self.batches,
                "swaps": self.swaps,
                # Lifetime offered load; with the admission block below
                # this reconciles exactly: arrivals == requests + sheds
                # + quota_rejections + expired (+ in flight).
                "arrivals": self._arrivals.total,
                "admission": {
                    "sheds": self.sheds,
                    "quota_rejections": self.quota_rejections,
                    "expired": self.expired,
                    "per_tenant": {
                        tenant: dict(per)
                        for tenant, per in self._shed_by_tenant.items()
                    },
                },
                # Lifetime average — kept for continuity, but it decays
                # toward zero over any idle stretch and never recovers.
                "throughput_rps": round(self.products / elapsed, 3),
                # Windowed rates: what's happening *now*.  These are the
                # signals the adaptive controller and the fleet rollup
                # (repro.obs.metrics) actually consume.
                "throughput_rps_windowed": round(self._completions.rate(), 3),
                "arrival_rate_rps": round(self._arrivals.rate(), 3),
                "latency_s": self._latency.summary(),
                "lane_occupancy": round(occupancy, 4),
            }
