"""Service telemetry: the numbers an operator watches on a dashboard.

Kept deliberately dependency-free (no prometheus client in this
container): a bounded reservoir of per-request latencies for percentile
estimation plus monotonic counters, snapshotted into a plain dict that
serializes straight to JSON for the throughput benchmark and any
external scraper.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

__all__ = ["LatencyWindow", "DeploymentTelemetry"]


class LatencyWindow:
    """Rolling window of request latencies with percentile snapshots.

    Thread-safe on its own: recorders (shard-pool threads, the cluster
    client's RTT path) and snapshotters (telemetry readers) hold
    different outer locks, and iterating a ``deque`` while another
    thread appends raises ``RuntimeError`` — so reads and writes
    serialize on an internal lock here.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def record(self, latency_s: float) -> None:
        with self._lock:
            self._samples.append(latency_s)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentiles(self, *points: float) -> dict[str, float]:
        """``{"p50": ..., "p99": ...}`` over the current window (NaN-free:
        an empty window reports zeros so snapshots stay JSON-friendly)."""
        with self._lock:
            if not self._samples:
                return {f"p{int(p)}": 0.0 for p in points}
            arr = np.array(self._samples, dtype=float)
        values = np.percentile(arr, points)
        return {f"p{int(p)}": float(v) for p, v in zip(points, values)}

    def summary(self) -> dict:
        """The standard dashboard digest of one window: p50/p99/samples.

        Shared by deployment latency snapshots and the cluster client's
        per-shard RTT reporting, so every latency-shaped number in
        telemetry reads the same way.
        """
        pct = self.percentiles(50, 99)
        return {
            "p50": round(pct["p50"], 6),
            "p99": round(pct["p99"], 6),
            "samples": len(self),
        }


class DeploymentTelemetry:
    """Counters and latency stats for one deployed matrix.

    Thread-safe; shared by the asyncio submit path (loop thread), the
    shard executor threads, and synchronous ``run_stream`` rollouts.
    """

    def __init__(
        self,
        max_batch: int = 64,
        window: int = 4096,
        max_delay_s: float | None = None,
    ) -> None:
        self.max_batch = max_batch
        # The micro-batcher flush deadline this deployment is actually
        # running with; surfaced in snapshots so an operator reading a
        # dashboard can see the configured latency/throughput trade-off
        # next to the measured percentiles.
        self.max_delay_s = max_delay_s
        self._lock = threading.Lock()
        self._latency = LatencyWindow(window)
        self._started = time.monotonic()
        self.requests = 0
        self.products = 0
        self.batches = 0
        self.lanes = 0
        # Hardware batches per *effective* engine: an "auto" deployment
        # serves fused traffic until a fault campaign flips it to the
        # gate-level engine, and an operator should be able to see both
        # the current choice and the history on the dashboard.
        self.engine_batches: dict[str, int] = {}
        self.effective_engine: str | None = None
        # Zero-downtime matrix swaps this deployment has been through —
        # a dashboard's tell that latency blips line up with rollouts.
        self.swaps = 0

    def record_request(self, latency_s: float) -> None:
        """One request completed end to end (submit to result)."""
        with self._lock:
            self.requests += 1
            self.products += 1
            self._latency.record(latency_s)

    def record_products(self, count: int) -> None:
        """Products completed outside the request path (stream rollouts)."""
        with self._lock:
            self.products += int(count)

    def record_batch(self, lanes: int, engine: str | None = None) -> None:
        """One hardware batch dispatched with ``lanes`` lanes filled.

        ``engine`` is the *effective* engine the batch executed on (the
        resolved value of an ``"auto"`` deployment), recorded per batch.
        """
        with self._lock:
            self.batches += 1
            self.lanes += int(lanes)
            if engine is not None:
                self.effective_engine = engine
                self.engine_batches[engine] = (
                    self.engine_batches.get(engine, 0) + 1
                )

    def record_swap(self) -> None:
        """One zero-downtime matrix swap flipped routing."""
        with self._lock:
            self.swaps += 1

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def snapshot(self) -> dict:
        """Point-in-time metrics dict (JSON-serializable)."""
        with self._lock:
            elapsed = max(self.uptime_s, 1e-9)
            occupancy = (
                self.lanes / (self.batches * self.max_batch)
                if self.batches
                else 0.0
            )
            return {
                "uptime_s": round(elapsed, 6),
                "batching": {
                    "max_batch": self.max_batch,
                    "max_delay_s": self.max_delay_s,
                },
                "engine": {
                    "effective": self.effective_engine,
                    "batches": dict(self.engine_batches),
                },
                "requests": self.requests,
                "products": self.products,
                "batches": self.batches,
                "swaps": self.swaps,
                "throughput_rps": round(self.products / elapsed, 3),
                "latency_s": self._latency.summary(),
                "lane_occupancy": round(occupancy, 4),
            }
