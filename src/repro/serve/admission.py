"""Admission control: shed excess load *before* it queues.

The serving stack's throughput is fixed by the compiled hardware — a
spatial multiplier runs exactly as fast as its shards run, no faster —
so when offered load exceeds capacity the only question is *where the
excess goes*.  Without admission control it goes into the micro-batcher
queue, which grows without bound and drags every request's latency up
together until all of them are late (the classic overloaded-server
collapse).  With it, excess load is rejected **immediately, at submit
time, with a stable error**, and the admitted remainder keeps its
latency contract.

Two independent limits, checked in order:

* a **bounded service-wide queue** — at most ``max_queue_depth``
  admitted requests may be outstanding (queued or executing) at once.
  Past that, :class:`QueueFull`.  This is the knob that bounds the
  worst-case queue wait: ``depth / capacity`` seconds.
* **per-tenant token buckets** — each tenant refills at its quota rate
  up to a burst ceiling; a request that finds the bucket empty raises
  :class:`QuotaExceeded`.  One noisy tenant is bounded *before* it can
  fill the shared queue.

A third failure mode rides the same vocabulary: :class:`DeadlineExceeded`
is raised (by the micro-batcher at flush time, or mapped from a shard
server's ``expired`` refusal) for requests that were admitted but whose
deadline budget ran out before execution — work the client has already
abandoned and the service therefore refuses to perform.

Everything is clock-injectable and lock-protected; nothing here sleeps
or allocates per request beyond a dict lookup and a float update, so
the admission check is cheap enough to sit on the submit hot path.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = [
    "AdmissionError",
    "QuotaExceeded",
    "QueueFull",
    "DeadlineExceeded",
    "TokenBucket",
    "AdmissionController",
]


class AdmissionError(RuntimeError):
    """A request was refused at admission time (never queued).

    ``tenant`` and ``reason`` are machine-readable so callers (and the
    overload benchmark's reconciliation) can classify rejections
    without parsing messages.
    """

    reason = "admission"

    def __init__(self, message: str, tenant: str = "default") -> None:
        super().__init__(message)
        self.tenant = tenant


class QuotaExceeded(AdmissionError):
    """The tenant's token bucket is empty: over its quota rate."""

    reason = "quota"


class QueueFull(AdmissionError):
    """The service-wide bounded queue is at capacity."""

    reason = "queue_full"


class DeadlineExceeded(RuntimeError):
    """An admitted request's deadline budget ran out before execution.

    Raised by the micro-batcher when it drops an already-expired
    request at flush time, and by the remote shard client when a
    server refuses a batch whose propagated budget was exhausted
    (stable error token ``"expired"``).
    """


class TokenBucket:
    """A classic token bucket: ``rate_rps`` tokens/s up to ``burst``.

    Lazily refilled on each acquire from an injectable monotonic clock
    — no background thread, no sleeps.  Thread-safe via the owning
    controller's lock (this class itself is lock-free by design so the
    controller can check several limits under one lock acquisition).
    """

    def __init__(
        self,
        rate_rps: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate_rps)
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` (untaken) otherwise."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate_rps)
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        """Current token balance (refilled as of now)."""
        now = self._clock()
        return min(self.burst, self._tokens + (now - self._last) * self.rate_rps)


class AdmissionController:
    """Bounded queue + per-tenant quotas for a :class:`MatMulService`.

    Args:
        max_queue_depth: admitted requests allowed outstanding at once
            (queued in the micro-batcher or executing).  The worst-case
            queue wait an admitted request can see is roughly
            ``max_queue_depth / capacity_rps`` — size it from the
            latency SLO.
        tenant_rate_rps: default per-tenant quota rate; ``None`` (the
            default) disables quotas so the controller is purely a
            bounded queue.
        tenant_burst: default per-tenant burst ceiling (defaults to one
            second's worth of quota, minimum 1).
        clock: monotonic-seconds callable (tests inject a fake).

    Check order: the queue bound first — a full queue sheds *everyone*
    equally, and shields the token buckets so a rejected burst does not
    also drain the tenant's future quota — then the tenant's bucket.
    ``admit`` either raises or books one outstanding slot that
    ``release`` must return (the service wraps submit in try/finally).
    """

    def __init__(
        self,
        max_queue_depth: int = 256,
        tenant_rate_rps: float | None = None,
        tenant_burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_queue_depth = int(max_queue_depth)
        self.tenant_rate_rps = tenant_rate_rps
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._lock = threading.Lock()
        self._outstanding = 0
        self._buckets: dict[str, TokenBucket | None] = {}
        self._quotas: dict[str, tuple[float, float | None]] = {}
        self.admitted = 0
        self.quota_rejections = 0
        self.queue_rejections = 0

    def set_quota(
        self, tenant: str, rate_rps: float | None, burst: float | None = None
    ) -> None:
        """Pin ``tenant``'s quota (``rate_rps=None`` exempts it)."""
        with self._lock:
            if rate_rps is None:
                self._quotas[tenant] = (0.0, None)
                self._buckets[tenant] = None
            else:
                self._quotas[tenant] = (float(rate_rps), burst)
                self._buckets[tenant] = TokenBucket(
                    rate_rps, burst, clock=self._clock
                )

    def _bucket(self, tenant: str) -> TokenBucket | None:
        if tenant not in self._buckets:
            if tenant in self._quotas:
                rate, burst = self._quotas[tenant]
                self._buckets[tenant] = (
                    TokenBucket(rate, burst, clock=self._clock) if rate else None
                )
            elif self.tenant_rate_rps is None:
                self._buckets[tenant] = None
            else:
                self._buckets[tenant] = TokenBucket(
                    self.tenant_rate_rps, self.tenant_burst, clock=self._clock
                )
        return self._buckets[tenant]

    def admit(self, tenant: str = "default") -> None:
        """Admit one request for ``tenant`` or raise; booking one slot."""
        with self._lock:
            if self._outstanding >= self.max_queue_depth:
                self.queue_rejections += 1
                raise QueueFull(
                    f"service queue is full ({self._outstanding}/"
                    f"{self.max_queue_depth} outstanding)",
                    tenant=tenant,
                )
            bucket = self._bucket(tenant)
            if bucket is not None and not bucket.try_acquire():
                self.quota_rejections += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} is over its quota of "
                    f"{bucket.rate_rps:g} req/s (burst {bucket.burst:g})",
                    tenant=tenant,
                )
            self._outstanding += 1
            self.admitted += 1

    def release(self, tenant: str = "default") -> None:
        """Return the slot ``admit`` booked (request finished or failed)."""
        with self._lock:
            if self._outstanding > 0:
                self._outstanding -= 1

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state for telemetry documents."""
        with self._lock:
            return {
                "max_queue_depth": self.max_queue_depth,
                "outstanding": self._outstanding,
                "admitted": self.admitted,
                "quota_rejections": self.quota_rejections,
                "queue_rejections": self.queue_rejections,
                "tenant_rate_rps": self.tenant_rate_rps,
                "tenants": {
                    tenant: (
                        None
                        if bucket is None
                        else {
                            "rate_rps": bucket.rate_rps,
                            "burst": bucket.burst,
                            "tokens": round(bucket.tokens, 3),
                        }
                    )
                    for tenant, bucket in self._buckets.items()
                },
            }
