"""`repro.serve` — a served inference system over the compiled multiplier.

The paper's core economics (Denton & Schmit, HPCA 2022) are that a fixed
sparse matrix compiled *spatially* into hardware amortizes beautifully
over streams of vectors: compilation is paid once per deployment, and
the bit-serial array then wants to be kept full.  This subsystem turns
the repository's compiled circuits into exactly that served system, and
each module is the runtime realization of a section of the paper:

* :mod:`repro.serve.cache` — a content-addressed compile cache.  "The
  matrix is fixed for the lifetime of the computation": deployment keys
  on the matrix digest plus compile options, so repeated deploys of the
  same reservoir never re-run CSD recoding or planning (the synthesis-
  checkpoint role of :mod:`repro.core.serialize`, made automatic).
* :mod:`repro.serve.shards` — Sec. VIII's tiling discussion as an
  executor.  Columns are independent in this architecture, so a matrix
  wider than one device splits into column shards
  (:func:`repro.core.tiling.plan_column_tiles` under a LUT budget, or
  near-equal ranges), each compiled once and simulated concurrently;
  outputs concatenate bit-exactly into the monolithic result.
* :mod:`repro.serve.batcher` — Sec. VI's SRAM wrapper ("we 'wrap' the
  matrix multiplier with a small design that feeds inputs from an SRAM")
  generalized from a local memory to live traffic: an asyncio
  micro-batcher coalesces single-vector requests into 64-lane bit-plane
  executions under a max-latency deadline.
* :mod:`repro.serve.telemetry` — the observable quantities: throughput,
  p50/p99 latency, lane occupancy, shard utilization (plus per-shard
  RTT/health for remote fleets), and shed/expired/quota counters.
* :mod:`repro.serve.admission` — overload protection in front of the
  batcher: per-tenant token buckets plus a bounded service-wide queue,
  so excess load is rejected immediately (:class:`QuotaExceeded`,
  :class:`QueueFull`) instead of growing an unbounded backlog.
* :mod:`repro.serve.prewarm` — the offline compile farm:
  ``python -m repro.serve.prewarm manifest.json`` fills an artifact
  store through all four pipeline stages ahead of rollout, so fleet
  deploys (including :mod:`repro.cluster` shard servers) are
  zero-stage kernel hits.
* :mod:`repro.serve.service` — the :class:`MatMulService` facade
  (``deploy`` / ``await submit`` / ``run_stream``) binding all of the
  above, including served reservoir rollouts (``deploy_esn``) where each
  state update's batched recurrent product is one sharded hardware call.

Quick taste::

    import asyncio
    import numpy as np
    from repro.serve import MatMulService

    service = MatMulService()
    handle = service.deploy(matrix, input_width=8, scheme="csd", shards=2)

    async def main():
        return await service.submit(handle, vector)

    product = asyncio.run(main())   # == vector @ matrix, via the gates
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    DeadlineExceeded,
    QueueFull,
    QuotaExceeded,
    TokenBucket,
)
from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import (
    CompileCache,
    CompiledEntry,
    CompileKey,
    compile_key,
    persist_artifacts,
)
from repro.serve.service import Deployment, MatMulService, ServedESN
from repro.serve.shards import (
    SHARD_BACKENDS,
    Shard,
    ShardedMultiplier,
    even_column_shards,
)
from repro.serve.telemetry import DeploymentTelemetry, LatencyWindow

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "DeadlineExceeded",
    "QueueFull",
    "QuotaExceeded",
    "TokenBucket",
    "BatcherStats",
    "MicroBatcher",
    "CompileCache",
    "CompiledEntry",
    "CompileKey",
    "compile_key",
    "persist_artifacts",
    "Deployment",
    "MatMulService",
    "ServedESN",
    "Shard",
    "ShardedMultiplier",
    "SHARD_BACKENDS",
    "even_column_shards",
    "DeploymentTelemetry",
    "LatencyWindow",
]
