"""Content-addressed compile cache for deployed multipliers.

Compiling a matrix is the expensive step of a deployment: CSD recoding
and the result-width analysis (the plan), then netlist construction and
the lowering to flat engine arrays.  A service that deploys the same
reservoir to many replicas — or redeploys after a restart — should never
pay that cost twice for the same bytes.

:class:`CompileCache` keys compiled circuits on
:func:`repro.core.serialize.matrix_digest` plus the compile options
(``input_width``, ``scheme``, ``tree_style``) — everything that affects
the resulting circuit.  Entries are held in memory under an LRU policy;
with a ``directory`` every compile persists its artifacts per key
via :mod:`repro.core.serialize`:

* ``<key>.plan.json`` — the compilation plan (cheap, human-auditable);
* ``<key>.kernel.npz`` — the lowered kernel, i.e. the exact flat arrays
  the bit-plane engine executes;
* ``<key>.fused.npz`` — the fused shift-add schedule
  (:class:`~repro.hwsim.fused.FusedKernel`), i.e. what the
  cycle-loop-free ``engine="fused"`` serving path executes;
* ``<key>.codegen.py`` — the generated executor source
  (:mod:`repro.hwsim.codegen`), written only for kernels whose term
  density selects the ``generated`` fused executor variant.

A *fresh process* deploying a known matrix therefore loads the kernel,
fused schedule, and (for sparse kernels) generated source, performing
**zero** planning, ``build_circuit``, lowering, fusing, or codegen work
(the contract asserted by ``benchmarks/bench_compile_cold_start.py``
and ``benchmarks/bench_fused_sparse.py`` against
:data:`repro.core.stages.STAGES`); if only the plan survives (older
store, pruned kernel), it skips re-planning and pays just the mechanical
netlist build.  A store written before the fused artifact existed
re-fuses from the loaded kernel (cheap next to a build) and backfills
the missing artifact; likewise a store without generated source (or
with stale/foreign source — wrong kind, version, or fingerprint)
regenerates and backfills, so codegen failures degrade to one
``codegen`` stage execution, never a wrong executor.

The cache compiles deterministically (``rng=None``), so a key always
names exactly one circuit; stored artifacts are verified on load
(plan fingerprint for plans, format/kind/fingerprint header for
kernels) and any mismatch degrades to a recompile, never a wrong
answer.

Fleet loading: :meth:`CompileCache.load_key` resolves a compile by
:class:`CompileKey` alone — artifacts or ``KeyError``, never a compile —
which is how cluster shard servers (:mod:`repro.cluster.server`) answer
``LOAD(digest, ...)`` requests from a shared store without matrices or
kernels ever crossing the network.  :func:`persist_artifacts` is the
matching producer-side escape hatch for compiles that must happen
outside the shared cache (fault campaigns) but still feed the store.

Disk eviction: with ``max_disk_bytes`` and/or ``max_age_s`` set, the
directory becomes a bounded artifact store.  An ``index.json`` manifest
records per-key sizes and last-use times (shareable by a deploy fleet —
all manifest and artifact writes stage to private temp names and
``os.replace`` into place, so concurrent writers are last-writer-wins,
never torn);
after every store or load the cache prunes expired keys and then the
least-recently-used keys until the store fits the byte budget.  A key's
plan, kernel, fused, and codegen artifacts are evicted together, so a
surviving key is always a full-speed kernel hit.  Unbounded stores (no limits set) keep
the manifest as a cheap per-store record — loads skip manifest work,
and a later bounded cache over the same directory adopts everything by
file mtime.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.plan import MatrixPlan, plan_matrix
from repro.core.serialize import (
    atomic_write_text,
    fused_from_npz,
    fused_to_npz,
    kernel_from_npz,
    kernel_to_npz,
    matrix_digest,
    plan_fingerprint,
    plan_from_dict,
    plan_to_dict,
)
from repro.hwsim import codegen as codegen_mod
from repro.hwsim.builder import CompiledCircuit, build_circuit
from repro.hwsim.fast import FastCircuit, LoweredKernel
from repro.hwsim.fused import FusedKernel, fuse, select_variant, term_density

__all__ = [
    "CompileKey",
    "CompiledEntry",
    "CompileCache",
    "compile_key",
    "persist_artifacts",
]

_DISK_FORMAT_VERSION = 1
_INDEX_FORMAT_VERSION = 1
_INDEX_NAME = "index.json"

# Per-key artifact suffixes — the single place the naming scheme lives;
# CompileKey, eviction, and manifest adoption all derive from this.
_ARTIFACT_SUFFIXES = (".plan.json", ".kernel.npz", ".fused.npz", ".codegen.py")
_PLAN_SUFFIX, _KERNEL_SUFFIX, _FUSED_SUFFIX, _CODEGEN_SUFFIX = _ARTIFACT_SUFFIXES


@dataclass(frozen=True)
class CompileKey:
    """Everything that determines a compiled circuit, hashed and explicit."""

    matrix_digest: str
    input_width: int
    scheme: str
    tree_style: str

    @property
    def stem(self) -> str:
        """Stable per-key artifact basename (shared by plan and kernel)."""
        return (
            f"{self.matrix_digest[:32]}-w{self.input_width}"
            f"-{self.scheme}-{self.tree_style}"
        )

    @property
    def filename(self) -> str:
        """Stable on-disk name for this key's persisted plan."""
        return f"{self.stem}{_PLAN_SUFFIX}"

    @property
    def kernel_filename(self) -> str:
        """Stable on-disk name for this key's persisted lowered kernel."""
        return f"{self.stem}{_KERNEL_SUFFIX}"

    @property
    def fused_filename(self) -> str:
        """Stable on-disk name for this key's persisted fused schedule."""
        return f"{self.stem}{_FUSED_SUFFIX}"

    @property
    def codegen_filename(self) -> str:
        """Stable on-disk name for this key's generated executor source."""
        return f"{self.stem}{_CODEGEN_SUFFIX}"


def compile_key(
    matrix: np.ndarray,
    input_width: int = 8,
    scheme: str = "csd",
    tree_style: str = "compact",
) -> CompileKey:
    """Content-addressed cache key for one (matrix, options) compile."""
    return CompileKey(
        matrix_digest=matrix_digest(matrix),
        input_width=int(input_width),
        scheme=str(scheme),
        tree_style=str(tree_style),
    )


def _plan_payload(key: CompileKey, plan: MatrixPlan) -> tuple[dict, str]:
    """The on-disk JSON form of one plan artifact, plus its fingerprint."""
    fingerprint = plan_fingerprint(plan)
    payload = {
        "format_version": _DISK_FORMAT_VERSION,
        "key": {
            "matrix_digest": key.matrix_digest,
            "input_width": key.input_width,
            "scheme": key.scheme,
            "tree_style": key.tree_style,
        },
        "fingerprint": fingerprint,
        "plan": plan_to_dict(plan),
    }
    return payload, fingerprint


def persist_artifacts(
    directory: str | pathlib.Path,
    key: CompileKey,
    plan: MatrixPlan,
    kernel: LoweredKernel,
    fused: FusedKernel | None = None,
    codegen_source: str | None = None,
) -> None:
    """Write one compile's artifacts into a store without a cache instance.

    The escape hatch for deployments that must compile *outside* the
    shared :class:`CompileCache` (fault campaigns use ``use_cache=False``
    so their live netlists are private) but still need the fleet's
    artifact store populated — remote shard servers only ever load by
    digest, never receive kernels over the wire.  Enforces the store
    invariant the cache itself keeps: artifacts are fault-free and the
    kernel was lowered from exactly this plan.
    """
    if kernel.has_faults:
        raise ValueError(
            "refusing to persist a fault-bearing kernel into an artifact "
            "store; stores hold only fault-free compiles"
        )
    payload, fingerprint = _plan_payload(key, plan)
    if kernel.fingerprint != fingerprint:
        raise ValueError(
            "kernel fingerprint does not match the plan being persisted"
        )
    if fused is not None and fused.fingerprint != fingerprint:
        raise ValueError(
            "fused fingerprint does not match the plan being persisted"
        )
    if codegen_source is not None:
        # Validate before publishing: a store must never hold source the
        # loaders would refuse (or worse, accept for the wrong kernel).
        header = codegen_mod.source_header(codegen_source)
        if header["fingerprint"] != fingerprint:
            raise ValueError(
                "generated source fingerprint does not match the plan "
                "being persisted"
            )
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_text(directory / key.filename, json.dumps(payload))
    kernel_to_npz(
        kernel,
        directory / key.kernel_filename,
        metadata=_term_metadata(fused) if fused is not None else None,
    )
    if fused is not None:
        fused_to_npz(fused, directory / key.fused_filename)
    if codegen_source is not None:
        atomic_write_text(directory / key.codegen_filename, codegen_source)


def _term_metadata(fused: FusedKernel) -> dict:
    """Advisory term statistics for a kernel artifact header."""
    return {
        "term_count": fused.terms,
        "term_density": term_density(fused.terms, fused.rows, fused.cols),
    }


@dataclass
class CompiledEntry:
    """One cached compilation: plan, lowered kernel, and the fast engine.

    ``circuit`` (the object netlist) is populated only when this process
    actually built one — a kernel-cache hit never constructs a netlist,
    which is the whole point.  Callers that need the object graph (fault
    injection, VCD dumps) should compile outside the kernel store or
    check ``circuit is not None``.  ``plan`` may likewise be ``None`` on
    a :meth:`CompileCache.load_key` hit against a store whose plan
    artifact was pruned — the kernel alone is executable.
    """

    key: CompileKey
    plan: MatrixPlan | None
    circuit: CompiledCircuit | None
    fast: FastCircuit
    kernel: LoweredKernel
    fused: FusedKernel
    source: str  # "memory" | "kernel" | "disk" | "compiled"

    @property
    def fingerprint(self) -> str:
        return self.kernel.fingerprint


class CompileCache:
    """LRU compile cache with optional on-disk artifact persistence.

    Thread-safe: a service may deploy from multiple threads.  Note that
    cached :class:`FastCircuit` instances are *shared* between all users
    of a key — callers that inject netlist faults should compile outside
    the cache (or use distinct cache instances) so experiments cannot
    contaminate served traffic.

    Args:
        capacity: in-memory LRU entry count.
        directory: artifact store for plans and kernels (optional).
        max_disk_bytes: byte budget for the artifact store; exceeding it
            evicts least-recently-used keys (both artifacts together).
            ``None`` disables size-based pruning.
        max_age_s: artifacts unused for longer than this are pruned on
            the next disk access.  ``None`` disables age-based pruning.
    """

    def __init__(
        self,
        capacity: int = 32,
        directory: str | pathlib.Path | None = None,
        max_disk_bytes: int | None = None,
        max_age_s: float | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError(f"max_disk_bytes must be >= 1, got {max_disk_bytes}")
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError(f"max_age_s must be > 0, got {max_age_s}")
        self.capacity = capacity
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.max_disk_bytes = max_disk_bytes
        self.max_age_s = max_age_s
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[CompileKey, CompiledEntry] = OrderedDict()
        # Plans are tiny next to compiled circuits, so the plan memo keeps
        # a wider LRU: a plan computed for one consumer (say a served
        # ESN's facade) is still warm when another (a single-shard
        # compile of the same matrix) asks for it.  Each memo value is
        # ``(plan, fingerprint)`` — the fingerprint is computed exactly
        # once per plan (at store or load verification time) and reused
        # by the kernel-hit integrity check.
        self._plans: OrderedDict[CompileKey, tuple[MatrixPlan, str]] = OrderedDict()
        self._plan_capacity = max(4 * capacity, 64)
        self._lock = threading.Lock()
        self._disk_lock = threading.Lock()
        self.hits = 0
        self.kernel_hits = 0
        self.fused_hits = 0
        self.codegen_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.plan_hits = 0
        self.evicted_keys = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup --------------------------------------------------------------

    def get(
        self,
        matrix: np.ndarray,
        input_width: int = 8,
        scheme: str = "csd",
        tree_style: str = "compact",
    ) -> CompiledEntry:
        """Return the compiled circuit for ``matrix``, compiling on miss.

        Resolution order: in-memory LRU -> persisted kernel (skips build
        and lowering) -> persisted plan (skips planning) -> full compile.
        """
        key = compile_key(matrix, input_width, scheme, tree_style)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return CompiledEntry(
                    key=key,
                    plan=entry.plan,
                    circuit=entry.circuit,
                    fast=entry.fast,
                    kernel=entry.kernel,
                    fused=entry.fused,
                    source="memory",
                )
        kernel = self._load_kernel(key)
        if kernel is not None:
            # Zero-rebuild cold start: the kernel is the executable; the
            # plan rides along (from memo or its own artifact) for
            # consumers that inspect widths/planes.
            plan, plan_fp, _ = self._plan_for(
                key, matrix, input_width, scheme, tree_style
            )
            if kernel.fingerprint != plan_fp:
                # Stale kernel (e.g. written against a plan that was later
                # tampered with or replaced): never execute it.
                kernel = None
        if kernel is not None:
            fused = self._load_fused(key)
            if fused is not None and fused.fingerprint != plan_fp:
                fused = None  # stale schedule: never execute it
            fused_loaded = fused is not None
            if fused is None:
                # Pre-fused-artifact store (or a pruned/corrupt schedule):
                # re-fuse from the loaded kernel and backfill the artifact.
                fused = fuse(kernel)
                self._store_fused(key, fused)
            source, codegen_loaded = self._codegen_for(key, fused)
            fast = FastCircuit(
                kernel, plan=plan, fused=fused, codegen_source=source
            )
            entry = CompiledEntry(
                key=key,
                plan=plan,
                circuit=None,
                fast=fast,
                kernel=kernel,
                fused=fused,
                source="kernel",
            )
            counter = "kernel"
        else:
            fused_loaded = False
            plan, _, plan_source = self._plan_for(
                key, matrix, input_width, scheme, tree_style
            )
            circuit = build_circuit(plan)
            fast = FastCircuit.from_compiled(circuit)
            fused = fast.fuse()
            self._store_kernel(key, fast.kernel, fused=fused)
            self._store_fused(key, fused)
            source, codegen_loaded = self._codegen_for(key, fused)
            fast.codegen_source = source
            entry = CompiledEntry(
                key=key,
                plan=plan,
                circuit=circuit,
                fast=fast,
                kernel=fast.kernel,
                fused=fused,
                source="disk" if plan_source == "disk" else "compiled",
            )
            counter = entry.source
        with self._lock:
            if counter == "kernel":
                self.kernel_hits += 1
                if fused_loaded:
                    self.fused_hits += 1
            elif counter == "disk":
                self.disk_hits += 1
            else:
                self.misses += 1
            if codegen_loaded:
                self.codegen_hits += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def load_key(self, key: CompileKey) -> CompiledEntry:
        """Load a persisted compile **by key alone** — no matrix anywhere.

        The shard-server resolution path: a fleet server is handed a
        content digest plus compile options (a :class:`CompileKey`) and
        must answer from the shared artifact store or not at all —
        kernels never travel over the wire, and without the matrix bytes
        there is nothing to recompile from.  Raises ``KeyError`` when
        the store holds no (valid) kernel for the key.

        A plan artifact, when present, rides along (and cross-checks the
        kernel's fingerprint); a missing fused artifact is re-fused from
        the loaded kernel and backfilled, exactly as :meth:`get` does.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return CompiledEntry(
                    key=key,
                    plan=entry.plan,
                    circuit=entry.circuit,
                    fast=entry.fast,
                    kernel=entry.kernel,
                    fused=entry.fused,
                    source="memory",
                )
        kernel = self._load_kernel(key)
        if kernel is None:
            raise KeyError(f"artifact store has no kernel for {key.stem!r}")
        plan: MatrixPlan | None = None
        loaded_plan = self._load_plan(key)
        if loaded_plan is not None:
            plan, plan_fp = loaded_plan
            if kernel.fingerprint != plan_fp:
                # The kernel artifact does not belong to the plan that
                # shares its stem — tampering or a torn store; refuse.
                raise KeyError(
                    f"kernel for {key.stem!r} does not match its stored plan"
                )
        fused = self._load_fused(key)
        if fused is not None and fused.fingerprint != kernel.fingerprint:
            fused = None  # stale schedule: never execute it
        fused_loaded = fused is not None
        if fused is None:
            fused = fuse(kernel)
            self._store_fused(key, fused)
        source, codegen_loaded = self._codegen_for(key, fused)
        fast = FastCircuit(kernel, plan=plan, fused=fused, codegen_source=source)
        entry = CompiledEntry(
            key=key,
            plan=plan,
            circuit=None,
            fast=fast,
            kernel=kernel,
            fused=fused,
            source="kernel",
        )
        with self._lock:
            self.kernel_hits += 1
            if fused_loaded:
                self.fused_hits += 1
            if codegen_loaded:
                self.codegen_hits += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def get_plan(
        self,
        matrix: np.ndarray,
        input_width: int = 8,
        scheme: str = "csd",
        tree_style: str = "compact",
    ) -> MatrixPlan:
        """Return just the compilation plan for ``matrix`` (no netlist).

        Consumers that only need the plan (latency models, a served ESN's
        functional facade) share the same memo that :meth:`get` plans
        through, so asking for the plan first never causes a later full
        compile of the same key to re-plan — and vice versa.
        """
        key = compile_key(matrix, input_width, scheme, tree_style)
        plan, _, _ = self._plan_for(key, matrix, input_width, scheme, tree_style)
        return plan

    def _plan_for(
        self,
        key: CompileKey,
        matrix: np.ndarray,
        input_width: int,
        scheme: str,
        tree_style: str,
    ) -> tuple[MatrixPlan, str, str]:
        """Plan via memo -> disk -> fresh compile.

        Returns ``(plan, fingerprint, source)``; the fingerprint is the
        one computed when the plan was stored or disk-verified, so
        callers never re-hash a plan the cache already hashed.
        """
        with self._lock:
            memo = self._plans.get(key)
            if memo is not None:
                self._plans.move_to_end(key)
                self.plan_hits += 1
                return memo[0], memo[1], "memory"
        loaded = self._load_plan(key)
        if loaded is not None:
            plan, fingerprint = loaded
            source = "disk"
        else:
            source = "planned"
            plan = plan_matrix(
                np.asarray(matrix, dtype=np.int64),
                input_width=input_width,
                scheme=scheme,
                tree_style=tree_style,
            )
            fingerprint = self._store_plan(key, plan)
        with self._lock:
            self._plans[key] = (plan, fingerprint)
            self._plans.move_to_end(key)
            while len(self._plans) > self._plan_capacity:
                self._plans.popitem(last=False)
        return plan, fingerprint, source

    # -- statistics ----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """In-memory hit fraction over all lookups (0.0 when untouched)."""
        total = self.hits + self.kernel_hits + self.disk_hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "kernel_hits": self.kernel_hits,
            "fused_hits": self.fused_hits,
            "codegen_hits": self.codegen_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "plan_hits": self.plan_hits,
            "hit_rate": round(self.hit_rate, 4),
            "persistent": self.directory is not None,
            "evicted_keys": self.evicted_keys,
        }

    @property
    def _evicting(self) -> bool:
        return self.max_disk_bytes is not None or self.max_age_s is not None

    def disk_stats(self) -> dict:
        """Manifest-level view of the artifact store (empty when none)."""
        if self.directory is None:
            return {"persistent": False, "keys": 0, "bytes": 0}
        with self._disk_lock:
            index = self._load_index()
            # Fold in anything the manifest missed (unbounded caches only
            # record their own stores) so the report reflects the disk.
            self._adopt_untracked(index)
            total = sum(e["bytes"] for e in index["entries"].values())
            return {
                "persistent": True,
                "keys": len(index["entries"]),
                "bytes": total,
                "max_disk_bytes": self.max_disk_bytes,
                "max_age_s": self.max_age_s,
            }

    # -- persistence ---------------------------------------------------------

    def _plan_path(self, key: CompileKey) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return self.directory / key.filename

    def _kernel_path(self, key: CompileKey) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return self.directory / key.kernel_filename

    def _fused_path(self, key: CompileKey) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return self.directory / key.fused_filename

    def _store_plan(self, key: CompileKey, plan: MatrixPlan) -> str:
        """Persist a plan (when a directory is set); returns its fingerprint."""
        path = self._plan_path(key)
        if path is None:
            return plan_fingerprint(plan)
        payload, fingerprint = _plan_payload(key, plan)
        atomic_write_text(path, json.dumps(payload))
        self._touch(key, stored=True)
        return fingerprint

    def _load_plan(self, key: CompileKey) -> tuple[MatrixPlan, str] | None:
        """Load a persisted plan, verifying content integrity; returns
        ``(plan, fingerprint)``, or None on any mismatch (the caller
        falls back to a fresh compile)."""
        path = self._plan_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("format_version") != _DISK_FORMAT_VERSION:
                return None
            plan = plan_from_dict(payload["plan"])
            fingerprint = plan_fingerprint(plan)
            if fingerprint != payload.get("fingerprint"):
                return None
            if matrix_digest(plan.matrix()) != key.matrix_digest:
                return None
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            return None
        self._touch(key)
        return plan, fingerprint

    def _store_kernel(
        self,
        key: CompileKey,
        kernel: LoweredKernel,
        fused: FusedKernel | None = None,
    ) -> None:
        path = self._kernel_path(key)
        if path is None:
            return
        kernel_to_npz(
            kernel,
            path,
            metadata=_term_metadata(fused) if fused is not None else None,
        )
        self._touch(key, stored=True)

    def _load_kernel(self, key: CompileKey) -> LoweredKernel | None:
        """Load a persisted kernel; None on absence or any validation
        failure (the caller falls back to plan-or-compile)."""
        path = self._kernel_path(key)
        if path is None or not path.exists():
            return None
        try:
            kernel = kernel_from_npz(path)
        except (
            OSError,
            KeyError,
            ValueError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            return None
        if kernel.has_faults:
            # The cache only ever writes fault-free kernels, and the
            # fingerprint (the *plan* fingerprint) deliberately does not
            # cover the fault snapshot — so a fault-bearing artifact here
            # is tampering or a foreign experiment's file.  Serving it
            # would silently corrupt results; rebuild instead.
            return None
        self._touch(key)
        return kernel

    def _store_fused(self, key: CompileKey, fused: FusedKernel) -> None:
        """Best-effort persist: unlike the compile-path artifact writes,
        this also runs on warm kernel hits (backfilling pre-fused-era
        stores), so a read-only shared store must degrade to an
        unpersisted schedule, never fail the deploy."""
        path = self._fused_path(key)
        if path is None:
            return
        try:
            fused_to_npz(fused, path)
        except OSError:
            return
        self._touch(key, stored=True)

    def _load_fused(self, key: CompileKey) -> FusedKernel | None:
        """Load a persisted fused schedule; None on absence or any
        validation failure (the caller re-fuses from the kernel)."""
        path = self._fused_path(key)
        if path is None or not path.exists():
            return None
        try:
            fused = fused_from_npz(path)
        except (
            OSError,
            KeyError,
            ValueError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            return None
        self._touch(key)
        return fused

    def _codegen_path(self, key: CompileKey) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return self.directory / key.codegen_filename

    def _codegen_for(self, key: CompileKey, fused: FusedKernel) -> tuple[str | None, bool]:
        """Resolve generated executor source for a fused schedule.

        Returns ``(source, loaded)``: ``source`` is ``None`` whenever
        the density selector picks a non-``generated`` variant (the
        selection reads the schedule's term statistics — never the dense
        fold), and ``loaded`` is True when persisted source was reused
        (a ``codegen_hits`` cache hit, zero ``codegen`` stage work).
        """
        variant = select_variant(
            fused.terms, fused.rows, fused.cols, fused.result_width
        )
        if variant != "generated":
            return None, False
        source = self._load_codegen(key, fused.fingerprint)
        if source is not None:
            return source, True
        source = codegen_mod.generate_source(fused)
        self._store_codegen(key, source)
        return source, False

    def _store_codegen(self, key: CompileKey, source: str) -> None:
        """Best-effort persist, same policy as :meth:`_store_fused`:
        backfills run on warm kernel hits too, so a read-only shared
        store degrades to regenerating per process, never a failed
        deploy."""
        path = self._codegen_path(key)
        if path is None:
            return
        try:
            atomic_write_text(path, source)
        except OSError:
            return
        self._touch(key, stored=True)

    def _load_codegen(self, key: CompileKey, fingerprint: str) -> str | None:
        """Load persisted generated source; None on absence or any
        validation failure — wrong kind, format version, fingerprint, or
        source that does not compile to an executor — so a stale or
        foreign file degrades to regeneration, never a wrong executor."""
        path = self._codegen_path(key)
        if path is None or not path.exists():
            return None
        try:
            source = path.read_text()
            codegen_mod.load_execute(source, fingerprint)
        except Exception:
            return None
        self._touch(key)
        return source

    # -- disk eviction -------------------------------------------------------

    def _index_path(self) -> pathlib.Path:
        assert self.directory is not None
        return self.directory / _INDEX_NAME

    def _load_index(self) -> dict:
        """Read the manifest, tolerating absence/corruption (rebuilt from
        the directory contents on the next prune).

        Entry shape is validated here — a foreign or hand-edited
        manifest must not be able to crash a deploy downstream, so
        anything without numeric ``bytes``/``last_used`` is dropped (and
        re-adopted from the files on the next bounded store).
        """
        try:
            payload = json.loads(self._index_path().read_text())
            if payload.get("format_version") != _INDEX_FORMAT_VERSION:
                raise ValueError("stale index format")
            raw = payload.get("entries")
            if not isinstance(raw, dict):
                raise ValueError("malformed index")
            entries = {
                stem: {"bytes": int(e["bytes"]), "last_used": float(e["last_used"])}
                for stem, e in raw.items()
                if isinstance(e, dict)
                and isinstance(e.get("bytes"), (int, float))
                and isinstance(e.get("last_used"), (int, float))
            }
            return {"format_version": _INDEX_FORMAT_VERSION, "entries": entries}
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            return {"format_version": _INDEX_FORMAT_VERSION, "entries": {}}

    def _write_index(self, index: dict) -> None:
        """Atomically publish the manifest (private tmp + ``os.replace``).

        Multiple shard servers may share one artifact directory; each
        writer stages to its own temp name, so concurrent rewrites are
        last-writer-wins on a complete manifest — a reader can observe a
        slightly stale index (repaired by the next adoption scan) but
        never a torn one.
        """
        atomic_write_text(self._index_path(), json.dumps(index, sort_keys=True))

    def _stem_files(self, stem: str) -> list[pathlib.Path]:
        assert self.directory is not None
        candidates = (
            self.directory / f"{stem}{suffix}" for suffix in _ARTIFACT_SUFFIXES
        )
        return [p for p in candidates if p.exists()]

    def _stem_sizes(self, stem: str) -> tuple[int, float] | None:
        """``(bytes, newest mtime)`` for a stem's surviving files, or
        ``None`` when they vanished (a concurrent evictor got there
        first) — never an exception."""
        total, newest = 0, 0.0
        found = False
        for path in self._stem_files(stem):
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            newest = max(newest, stat.st_mtime)
            found = True
        return (total, newest) if found else None

    def _touch(self, key: CompileKey, stored: bool = False) -> None:
        """Record a use of ``key``'s artifacts in the manifest, then prune.

        Kept cheap on the hot paths: loads on unbounded stores skip
        manifest maintenance entirely, and the O(directory) adoption
        scan runs only when a bounded store *writes* (loads just refresh
        their own key and prune from the manifest as-is, so warm-start
        latency does not scale with store size).  Shared-store races
        (another process evicting files mid-scan) degrade to skipped
        entries, never errors: this path must not be able to fail a
        deploy.
        """
        if self.directory is None or (not stored and not self._evicting):
            return
        with self._disk_lock:
            try:
                index = self._load_index()
                if self._evicting and stored:
                    self._adopt_untracked(index)
                sizes = self._stem_sizes(key.stem)
                if sizes is not None:
                    index["entries"][key.stem] = {
                        "bytes": sizes[0],
                        "last_used": time.time(),
                    }
                if self._evicting:
                    self._prune_locked(index)
                self._write_index(index)
            except OSError:
                return

    def _adopt_untracked(self, index: dict) -> None:
        """Fold artifacts the manifest does not know about (older stores,
        other writers) into it, aged by file mtime so they are eligible
        for eviction immediately."""
        assert self.directory is not None
        seen: set[str] = set()
        try:
            names = [p.name for p in self.directory.iterdir()]
        except OSError:
            names = []
        for name in names:
            for suffix in _ARTIFACT_SUFFIXES:
                if name.endswith(suffix):
                    seen.add(name[: -len(suffix)])
                    break
        for stem in seen:
            if stem not in index["entries"]:
                sizes = self._stem_sizes(stem)
                if sizes is not None:
                    index["entries"][stem] = {
                        "bytes": sizes[0],
                        "last_used": sizes[1],
                    }
        # Drop manifest entries whose files vanished out from under us.
        for stem in list(index["entries"]):
            if stem not in seen:
                del index["entries"][stem]

    def _prune_locked(self, index: dict) -> None:
        """Apply age then size policy to the manifest, deleting files."""
        entries = index["entries"]
        now = time.time()
        if self.max_age_s is not None:
            for stem in list(entries):
                if now - entries[stem]["last_used"] > self.max_age_s:
                    self._evict_stem(entries, stem)
        if self.max_disk_bytes is not None:
            total = sum(e["bytes"] for e in entries.values())
            by_age = sorted(entries, key=lambda s: entries[s]["last_used"])
            for stem in by_age:
                if total <= self.max_disk_bytes:
                    break
                total -= entries[stem]["bytes"]
                self._evict_stem(entries, stem)

    def _evict_stem(self, entries: dict, stem: str) -> None:
        for path in self._stem_files(stem):
            try:
                path.unlink()
            except OSError:
                pass
        del entries[stem]
        self.evicted_keys += 1
