"""Content-addressed compile cache for deployed multipliers.

Compiling a matrix is the expensive step of a deployment: CSD recoding
and the result-width analysis (the plan), then netlist construction and
the FastCircuit lowering.  A service that deploys the same reservoir to
many replicas — or redeploys after a restart — should never pay that
cost twice for the same bytes.

:class:`CompileCache` keys compiled circuits on
:func:`repro.core.serialize.matrix_digest` plus the compile options
(``input_width``, ``scheme``, ``tree_style``) — everything that affects
the resulting circuit.  Entries are held in memory under an LRU policy;
with a ``directory`` the plan of every compile is also persisted via
:mod:`repro.core.serialize`, so a *fresh process* deploying a known
matrix skips re-planning (the dominant cost for large sparse matrices)
and only re-runs the mechanical netlist build.

The cache compiles deterministically (``rng=None``), so a key always
names exactly one circuit; the stored plan's fingerprint
(:func:`repro.core.serialize.plan_fingerprint`) is verified on disk
loads to reject corrupt or stale artifacts.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.plan import MatrixPlan, plan_matrix
from repro.core.serialize import (
    matrix_digest,
    plan_fingerprint,
    plan_from_dict,
    plan_to_dict,
)
from repro.hwsim.builder import CompiledCircuit, build_circuit
from repro.hwsim.fast import FastCircuit

__all__ = ["CompileKey", "CompiledEntry", "CompileCache", "compile_key"]

_DISK_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CompileKey:
    """Everything that determines a compiled circuit, hashed and explicit."""

    matrix_digest: str
    input_width: int
    scheme: str
    tree_style: str

    @property
    def filename(self) -> str:
        """Stable on-disk name for this key's persisted plan."""
        return (
            f"{self.matrix_digest[:32]}-w{self.input_width}"
            f"-{self.scheme}-{self.tree_style}.plan.json"
        )


def compile_key(
    matrix: np.ndarray,
    input_width: int = 8,
    scheme: str = "csd",
    tree_style: str = "compact",
) -> CompileKey:
    """Content-addressed cache key for one (matrix, options) compile."""
    return CompileKey(
        matrix_digest=matrix_digest(matrix),
        input_width=int(input_width),
        scheme=str(scheme),
        tree_style=str(tree_style),
    )


@dataclass
class CompiledEntry:
    """One cached compilation: plan, netlist, and the lowered fast engine."""

    key: CompileKey
    plan: MatrixPlan
    circuit: CompiledCircuit
    fast: FastCircuit
    source: str  # "memory" | "disk" | "compiled"

    @property
    def fingerprint(self) -> str:
        return self.circuit.digest


class CompileCache:
    """LRU compile cache with optional on-disk plan persistence.

    Thread-safe: a service may deploy from multiple threads.  Note that
    cached :class:`FastCircuit` instances are *shared* between all users
    of a key — callers that inject netlist faults should compile outside
    the cache (or use distinct cache instances) so experiments cannot
    contaminate served traffic.
    """

    def __init__(
        self,
        capacity: int = 32,
        directory: str | pathlib.Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = pathlib.Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[CompileKey, CompiledEntry] = OrderedDict()
        # Plans are tiny next to compiled circuits, so the plan memo keeps
        # a wider LRU: a plan computed for one consumer (say a served
        # ESN's facade) is still warm when another (a single-shard
        # compile of the same matrix) asks for it.
        self._plans: OrderedDict[CompileKey, MatrixPlan] = OrderedDict()
        self._plan_capacity = max(4 * capacity, 64)
        self._lock = threading.Lock()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.plan_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup --------------------------------------------------------------

    def get(
        self,
        matrix: np.ndarray,
        input_width: int = 8,
        scheme: str = "csd",
        tree_style: str = "compact",
    ) -> CompiledEntry:
        """Return the compiled circuit for ``matrix``, compiling on miss."""
        key = compile_key(matrix, input_width, scheme, tree_style)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return CompiledEntry(
                    key=key,
                    plan=entry.plan,
                    circuit=entry.circuit,
                    fast=entry.fast,
                    source="memory",
                )
        plan, plan_source = self._plan_for(
            key, matrix, input_width, scheme, tree_style
        )
        source = "disk" if plan_source == "disk" else "compiled"
        circuit = build_circuit(plan)
        entry = CompiledEntry(
            key=key,
            plan=plan,
            circuit=circuit,
            fast=FastCircuit.from_compiled(circuit),
            source=source,
        )
        with self._lock:
            if source == "disk":
                self.disk_hits += 1
            else:
                self.misses += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def get_plan(
        self,
        matrix: np.ndarray,
        input_width: int = 8,
        scheme: str = "csd",
        tree_style: str = "compact",
    ) -> MatrixPlan:
        """Return just the compilation plan for ``matrix`` (no netlist).

        Consumers that only need the plan (latency models, a served ESN's
        functional facade) share the same memo that :meth:`get` plans
        through, so asking for the plan first never causes a later full
        compile of the same key to re-plan — and vice versa.
        """
        key = compile_key(matrix, input_width, scheme, tree_style)
        plan, _ = self._plan_for(key, matrix, input_width, scheme, tree_style)
        return plan

    def _plan_for(
        self,
        key: CompileKey,
        matrix: np.ndarray,
        input_width: int,
        scheme: str,
        tree_style: str,
    ) -> tuple[MatrixPlan, str]:
        """Plan via memo -> disk -> fresh compile; returns (plan, source)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.plan_hits += 1
                return plan, "memory"
        plan = self._load_plan(key)
        if plan is not None:
            source = "disk"
        else:
            source = "planned"
            plan = plan_matrix(
                np.asarray(matrix, dtype=np.int64),
                input_width=input_width,
                scheme=scheme,
                tree_style=tree_style,
            )
            self._store_plan(key, plan)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self._plan_capacity:
                self._plans.popitem(last=False)
        return plan, source

    # -- statistics ----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """In-memory hit fraction over all lookups (0.0 when untouched)."""
        total = self.hits + self.disk_hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "plan_hits": self.plan_hits,
            "hit_rate": round(self.hit_rate, 4),
            "persistent": self.directory is not None,
        }

    # -- persistence ---------------------------------------------------------

    def _path_for(self, key: CompileKey) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return self.directory / key.filename

    def _store_plan(self, key: CompileKey, plan: MatrixPlan) -> None:
        path = self._path_for(key)
        if path is None:
            return
        payload = {
            "format_version": _DISK_FORMAT_VERSION,
            "key": {
                "matrix_digest": key.matrix_digest,
                "input_width": key.input_width,
                "scheme": key.scheme,
                "tree_style": key.tree_style,
            },
            "fingerprint": plan_fingerprint(plan),
            "plan": plan_to_dict(plan),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)

    def _load_plan(self, key: CompileKey) -> MatrixPlan | None:
        """Load a persisted plan, verifying content integrity; None on any
        mismatch (the caller falls back to a fresh compile)."""
        path = self._path_for(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("format_version") != _DISK_FORMAT_VERSION:
                return None
            plan = plan_from_dict(payload["plan"])
            if plan_fingerprint(plan) != payload.get("fingerprint"):
                return None
            if matrix_digest(plan.matrix()) != key.matrix_digest:
                return None
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            return None
        return plan
