"""`MatMulService`: deploy fixed matrices, serve vector streams.

The facade that ties the serve layer together, one paper concept per
collaborator:

* ``deploy(matrix, ...)`` compiles through the content-addressed
  :class:`~repro.serve.cache.CompileCache` (repeat deploys never
  re-plan) into a :class:`~repro.serve.shards.ShardedMultiplier`
  (Sec. VIII column tiling, executed concurrently), returning a
  deployment handle;
* ``await submit(handle, vector)`` routes single-vector requests through
  the deployment's :class:`~repro.serve.batcher.MicroBatcher`, which
  coalesces them into bit-plane lane-packed executions (the Sec. VI
  wrapper's sequential batching, amortized across *users* instead of a
  local SRAM);
* ``run_stream(handle, ...)`` rolls out reservoir state trajectories for
  deployments created by ``deploy_esn`` — every state update's batched
  recurrent product is one sharded hardware call;
* ``swap(handle, matrix)`` replaces a deployment's matrix with zero
  downtime: the new executor is compiled (and, for remote backends,
  LOADed onto the fleet by content digest) *alongside* the old, routing
  flips atomically, and the old executor drains and closes — in-flight
  requests finish on the matrix they were submitted against, queued and
  future requests see the new one, and a fleet refusal rolls back
  before routing ever changes;
* ``telemetry()`` reports throughput, p50/p99 latency, lane occupancy,
  shard utilization, and compile-cache hit rates.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.serialize import matrix_digest
from repro.obs.tracing import Span, SpanContext, Tracer
from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.quantize import IntegerESN
from repro.serve.admission import (
    AdmissionController,
    DeadlineExceeded,
    QueueFull,
    QuotaExceeded,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import CompileCache
from repro.serve.shards import SERVE_ENGINES, ShardedMultiplier
from repro.serve.telemetry import DeploymentTelemetry

__all__ = ["Deployment", "MatMulService", "ServedESN"]

_SERVED_BACKENDS = ("gates", "functional")


@dataclass
class Deployment:
    """Handle to one deployed matrix: the object callers submit against.

    ``engine`` is the *configured* engine — ``"auto"`` by default, which
    resolves per hardware call to the fused cycle-loop-free engine for
    fault-free shards and to the bit-plane gate engine whenever faults
    are active.  The resolved choice of every batch is recorded in the
    deployment's telemetry under ``"engine"``.

    ``sharded`` is *re-bound* by :meth:`MatMulService.swap` — the
    execute and validate paths read it through this handle on every
    call, which is what makes the swap's routing flip a single atomic
    attribute assignment.  ``config`` remembers the shard-executor
    keyword arguments the deployment was built with so a swap can
    rebuild an identical executor around the new matrix.
    """

    name: str
    matrix_digest: str
    sharded: ShardedMultiplier
    batcher: MicroBatcher
    telemetry: DeploymentTelemetry
    engine: str = "auto"
    esn: "ServedESN | None" = field(default=None, repr=False)
    config: dict = field(default_factory=dict, repr=False)
    swap_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def rows(self) -> int:
        return self.sharded.rows

    @property
    def cols(self) -> int:
        return self.sharded.cols

    @property
    def shard_count(self) -> int:
        return self.sharded.shard_count


class ServedESN(HardwareESN):
    """A :class:`HardwareESN` whose hardware products come from a deployment.

    Built by :meth:`MatMulService.deploy_esn`.  The base class is
    constructed with ``backend="functional"`` (so no *monolithic* gate
    circuit is compiled — the deployment's shards are the circuit);
    ``served_backend`` selects what actually executes each product:

    * ``"gates"`` — the sharded bit-plane engine, cycle-accurate;
    * ``"functional"`` — the multiplier's exact integer path (bit-exact
      with the gates by the library's cross-validation; useful when a
      long rollout only needs the numbers, not the cycle accounting).
    """

    def __init__(
        self,
        esn: IntegerESN,
        sharded: ShardedMultiplier,
        telemetry: DeploymentTelemetry,
        served_backend: str = "gates",
        scheme: str = "csd",
        include_input: bool = False,
        input_quant_width: int = 8,
        plan=None,
        engine: str = "auto",
    ) -> None:
        if served_backend not in _SERVED_BACKENDS:
            raise ValueError(
                f"served_backend must be one of {_SERVED_BACKENDS}, "
                f"got {served_backend!r}"
            )
        super().__init__(
            esn,
            scheme=scheme,
            backend="functional",
            include_input=include_input,
            input_quant_width=input_quant_width,
            plan=plan,
        )
        self.served_backend = served_backend
        self._sharded = sharded
        self._telemetry = telemetry
        self._engine = engine

    def _hardware_multiply(self, vector: np.ndarray) -> np.ndarray:
        arr = np.asarray(vector)
        batch = arr if arr.ndim == 2 else arr[None, :]
        if self.served_backend == "gates":
            effective, out = _resolved_multiply(self._sharded, self._engine, batch)
            self._telemetry.record_batch(batch.shape[0], engine=effective)
        else:
            out = self.multiplier.multiply_batch(batch)
            self._telemetry.record_batch(batch.shape[0])
        self._telemetry.record_products(batch.shape[0])
        return out if arr.ndim == 2 else out[0]


def _resolved_multiply(
    sharded: ShardedMultiplier,
    engine: str,
    batch: np.ndarray,
    trace=None,
    deadline_s: float | None = None,
) -> tuple[str, np.ndarray]:
    """Resolve ``engine`` and execute, returning ``(label, result)``.

    ``label`` is the variant-qualified reporting label
    (:meth:`ShardedMultiplier.executor_label`): gate engines verbatim,
    fused execution as ``fused:<variant>`` so telemetry distinguishes
    the dense fold from the segmented and generated executors.

    Resolution and execution are not atomic: a fault injected between
    ``resolve_engine("auto") -> "fused"`` and the shard run makes the
    fused engine refuse mid-batch.  For ``"auto"`` deployments that
    refusal is retried on the gate engine — the fallback stays
    transparent under concurrent fault injection instead of failing the
    whole coalesced batch.  Explicitly pinned engines keep the refusal.

    ``trace`` (an optional span context) threads straight through to
    the shard executor — see :meth:`ShardedMultiplier.multiply_batch`.
    """
    effective = sharded.resolve_engine(engine)
    try:
        out = sharded.multiply_batch(
            batch, engine=effective, trace=trace, deadline_s=deadline_s
        )
        return sharded.executor_label(effective), out
    except ValueError:
        if engine != "auto" or effective != "fused":
            raise
        return "bitplane", sharded.multiply_batch(
            batch, engine="bitplane", trace=trace, deadline_s=deadline_s
        )


class MatMulService:
    """Deploy compiled spatial multipliers and serve traffic against them.

    One service owns one compile cache and any number of deployments.
    ``submit``/``submit_many`` are coroutines (the micro-batcher needs a
    running event loop to coalesce under its deadline); ``multiply`` is
    the synchronous direct path — one hardware call per invocation, no
    coalescing — kept as the baseline the throughput benchmark compares
    against.
    """

    def __init__(
        self,
        cache: CompileCache | None = None,
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        engine: str = "auto",
        backend: str = "thread",
        endpoints: list[tuple[str, int]] | None = None,
        store: str | None = None,
        request_timeout_s: float = 5.0,
        probe_backoff=None,
        probe_clock=time.monotonic,
        tracer=None,
        recorder=None,
        profiler=None,
        slow_request_s: float | None = None,
        admission: AdmissionController | None = None,
        auth_secret: str | None = None,
        trip_threshold: int = 1,
        telemetry_window: int = 4096,
    ) -> None:
        """``backend``/``endpoints``/``store``/``request_timeout_s`` are
        service-wide deployment defaults: a service constructed with
        ``backend="remote"`` (as :meth:`ClusterController.deploy_fleet
        <repro.cluster.controller.ClusterController.deploy_fleet>` does)
        routes *every* deploy — including the private deployments
        ``fault_campaign(service=...)`` creates — over the fleet, with
        no caller changes.  ``deploy(...)`` can still override any of
        them per deployment.

        Observability is opt-in (see :mod:`repro.obs`): ``tracer`` (a
        :class:`~repro.obs.tracing.Tracer`) records a span tree per
        ``submit`` — request root, queue wait, coalesced batch, shard
        dispatch, and for remote backends the wire round-trip with the
        server's execute span adopted off the RESULT frame.
        ``recorder`` (a :class:`~repro.obs.recorder.FlightRecorder`)
        receives lifecycle events (``deploy``/``undeploy``/``swap``/
        ``service_close``), shard-link health transitions, and — with
        ``slow_request_s`` set — ``slow_request`` exemplars carrying
        the trace id of each request whose end-to-end latency crossed
        the threshold.  ``profiler`` (a
        :class:`~repro.obs.profile.StageProfiler`) continuously
        histograms per-stage durations — ``queue_wait`` and
        ``coalesce`` here and in the batcher, ``shard_dispatch`` /
        ``wire`` in the shard executor — keyed by the executor variant
        label.  All default to ``None``: the uninstrumented hot path
        pays only ``None`` checks.  ``telemetry_window`` sizes each
        deployment's latency reservoir (smaller windows track SLO
        recoveries faster; the default keeps the historical 4096).

        ``admission`` is an optional
        :class:`~repro.serve.admission.AdmissionController` shared by
        every deployment: ``submit`` sheds excess load with
        :class:`QuotaExceeded`/:class:`QueueFull` *before* queueing
        instead of letting the micro-batcher queue grow without bound.
        ``None`` (the default) admits everything, as before.
        ``auth_secret`` and ``trip_threshold`` are remote-backend
        deployment defaults (shared-secret HELLO handshake; per-link
        circuit-breaker trip count — see
        :class:`~repro.cluster.client.RemoteShard`).
        """
        if engine not in SERVE_ENGINES:
            raise ValueError(
                f"engine must be one of {SERVE_ENGINES}, got {engine!r}"
            )
        self.cache = cache if cache is not None else CompileCache()
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.engine = engine
        self.backend = backend
        self.endpoints = endpoints
        self.store = store
        self.request_timeout_s = request_timeout_s
        # Revival probing knobs for remote deployments (see
        # repro.cluster.health): benchmarks pass an aggressive backoff,
        # tests a fake clock.
        self.probe_backoff = probe_backoff
        self.probe_clock = probe_clock
        self.tracer = tracer
        self.recorder = recorder
        self.profiler = profiler
        self.slow_request_s = slow_request_s
        self.admission = admission
        self.auth_secret = auth_secret
        self.trip_threshold = trip_threshold
        self.telemetry_window = int(telemetry_window)
        self._deployments: dict[str, Deployment] = {}

    def _record_event(self, kind: str, **fields) -> None:
        if self.recorder is not None:
            self.recorder.record(kind, **fields)

    # -- deployment ----------------------------------------------------------

    def deploy(
        self,
        matrix: np.ndarray,
        name: str | None = None,
        input_width: int = 8,
        scheme: str = "csd",
        tree_style: str = "compact",
        shards: int | None = None,
        lut_budget: int | None = None,
        backend: str | None = None,
        max_batch: int | None = None,
        max_delay_s: float | None = None,
        use_cache: bool = True,
        engine: str | None = None,
        endpoints: list[tuple[str, int]] | None = None,
        store: str | None = None,
        request_timeout_s: float | None = None,
    ) -> Deployment:
        """Compile (through the cache) and register one served matrix.

        ``backend`` selects the shard executor (``"thread"``,
        ``"process"``, or ``"remote"``; see
        :class:`~repro.serve.shards.ShardedMultiplier`), defaulting to
        the service-wide value.  Remote deployments take the fleet
        ``endpoints``, artifact ``store``, and ``request_timeout_s``
        from the service unless overridden here.
        ``max_batch`` / ``max_delay_s`` override the service-wide
        micro-batching limits for this deployment; the effective values
        are recorded in every telemetry snapshot under ``"batching"``.
        ``use_cache=False`` compiles private shards outside the shared
        compile cache — required by experiments that mutate shard
        netlists (fault campaigns), since cached circuits are shared
        across deployments and kernel-cache hits carry no netlist at all.
        ``engine`` pins this deployment's execution engine (overriding
        the service-wide default): ``"auto"`` serves the fused
        cycle-loop-free schedule while the deployment is fault-free and
        falls back to the bit-plane gate engine whenever faults are
        active; an explicit gate engine forces cycle simulation.  Every
        batch's *resolved* engine lands in telemetry under ``"engine"``.
        """
        arr = np.asarray(matrix, dtype=np.int64)
        digest = matrix_digest(arr)
        engine = engine if engine is not None else self.engine
        if engine not in SERVE_ENGINES:
            raise ValueError(
                f"engine must be one of {SERVE_ENGINES}, got {engine!r}"
            )
        backend = backend if backend is not None else self.backend
        # The full shard-executor construction recipe, remembered on the
        # handle so swap() can rebuild an identical executor around a
        # new matrix.
        shard_config = dict(
            shards=shards,
            lut_budget=lut_budget,
            input_width=input_width,
            scheme=scheme,
            tree_style=tree_style,
            cache=self.cache if use_cache else None,
            backend=backend,
            endpoints=endpoints if endpoints is not None else self.endpoints,
            store=store if store is not None else self.store,
            request_timeout_s=(
                request_timeout_s
                if request_timeout_s is not None
                else self.request_timeout_s
            ),
            probe_backoff=self.probe_backoff,
            probe_clock=self.probe_clock,
            tracer=self.tracer,
            recorder=self.recorder,
            profiler=self.profiler,
            auth_secret=self.auth_secret,
            trip_threshold=self.trip_threshold,
        )
        sharded = ShardedMultiplier(arr, **shard_config)
        batch_limit = max_batch if max_batch is not None else self.max_batch
        delay = max_delay_s if max_delay_s is not None else self.max_delay_s
        telemetry = DeploymentTelemetry(
            max_batch=batch_limit,
            window=self.telemetry_window,
            max_delay_s=delay,
        )

        # Execute and validate read the executor through the handle on
        # every call (late binding): swap() re-points deployment.sharded
        # and the very next batch runs against the new matrix, with no
        # batcher rebuild and no routing table beyond this attribute.
        # ``trace`` arrives from a tracing batcher (the coalesce span's
        # context) and threads through to the shard executor.
        def _execute(
            batch: np.ndarray, trace=None, deadline_s: float | None = None
        ) -> np.ndarray:
            start = time.perf_counter() if self.profiler is not None else 0.0
            effective, out = _resolved_multiply(
                deployment.sharded, engine, batch, trace=trace,
                deadline_s=deadline_s,
            )
            if self.profiler is not None:
                # The batch's coalesced execution, keyed by the engine
                # it actually resolved to — the per-variant cost
                # distribution the profiler exists to expose.
                self.profiler.record(
                    "coalesce", time.perf_counter() - start, variant=effective
                )
            telemetry.record_batch(batch.shape[0], engine=effective)
            return out

        def _validate(vector: np.ndarray) -> None:
            deployment.sharded.validate_vector(vector)

        if name is None:
            name = f"m-{digest[:12]}"
        base, suffix = name, 1
        while name in self._deployments:
            suffix += 1
            name = f"{base}-{suffix}"
        deployment = Deployment(
            name=name,
            matrix_digest=digest,
            sharded=sharded,
            batcher=MicroBatcher(
                _execute,
                max_batch=batch_limit,
                max_delay_s=delay,
                validate=_validate,
                tracer=self.tracer,
                profiler=self.profiler,
            ),
            telemetry=telemetry,
            engine=engine,
            config=shard_config,
        )
        self._deployments[name] = deployment
        self._record_event(
            "deploy",
            deployment=name,
            matrix_digest=digest,
            backend=backend,
            shards=sharded.shard_count,
        )
        return deployment

    def deploy_esn(
        self,
        esn: IntegerESN,
        name: str | None = None,
        include_input: bool = False,
        input_quant_width: int = 8,
        scheme: str = "csd",
        served_backend: str = "gates",
        shards: int | None = None,
        lut_budget: int | None = None,
        backend: str | None = None,
        max_batch: int | None = None,
        max_delay_s: float | None = None,
        engine: str | None = None,
    ) -> Deployment:
        """Deploy a quantized reservoir's recurrent matrix for rollouts.

        Compiles exactly what :class:`HardwareESN` would — ``W^T``, or
        the augmented ``[W^T ; W_in^T]`` with ``include_input=True`` —
        but through the service's cache and shard executor.  The handle's
        ``esn`` attribute is the bound :class:`ServedESN`; drive it with
        :meth:`run_stream`.
        """
        if include_input:
            matrix = np.vstack([esn.w_q.T, esn.w_in_q.T])
            stream_width = max(esn.state_width, input_quant_width)
        else:
            matrix = esn.w_q.T
            stream_width = esn.state_width
        # Plan the monolithic matrix once, through the cache's plan memo:
        # the ServedESN facade adopts it, and a single-shard deploy below
        # finds it memoized instead of re-planning the same bytes.
        plan = self.cache.get_plan(matrix, input_width=stream_width, scheme=scheme)
        deployment = self.deploy(
            matrix,
            name=name if name is not None else f"esn-{matrix_digest(matrix)[:12]}",
            input_width=stream_width,
            scheme=scheme,
            shards=shards,
            lut_budget=lut_budget,
            backend=backend,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            engine=engine,
        )
        deployment.esn = ServedESN(
            esn,
            deployment.sharded,
            deployment.telemetry,
            served_backend=served_backend,
            scheme=scheme,
            include_input=include_input,
            input_quant_width=input_quant_width,
            plan=plan,
            engine=deployment.engine,
        )
        return deployment

    @property
    def deployments(self) -> dict[str, Deployment]:
        return dict(self._deployments)

    def undeploy(self, handle: "Deployment | str") -> None:
        """Retire one deployment: shut its shard executor down and drop
        it from the registry (and from service-wide telemetry).

        Needed by anything that deploys transiently — fault campaigns, A/B
        recompiles — so a long-lived service does not accumulate dead
        executors.  Requests still queued in the micro-batcher are
        rejected with a clear error before the executor closes;
        idempotent on already-retired handles.
        """
        name = handle if isinstance(handle, str) else handle.name
        deployment = self._deployments.pop(name, None)
        if deployment is not None:
            deployment.batcher.reject_pending(
                RuntimeError(f"deployment {name!r} was retired")
            )
            deployment.sharded.close()
            self._record_event("undeploy", deployment=name)

    def swap(
        self,
        handle: "Deployment | str",
        matrix: np.ndarray,
        drain_timeout_s: float = 30.0,
        **config_overrides,
    ) -> Deployment:
        """Replace a deployment's matrix with zero downtime.

        The new matrix is compiled into a fresh shard executor built
        with the deployment's remembered configuration (sharding,
        compile options, backend, fleet endpoints — override any of
        them via keyword arguments) *while the old one keeps serving*.
        For remote backends that construction performs the LOAD-by-
        digest warmup against every fleet endpoint, so **any shard's
        refusal raises here and rolls back for free** — routing has not
        changed, already-opened sockets are closed, and the old matrix
        never stopped serving.  Only after the new executor stands does
        routing flip: one atomic re-bind of ``deployment.sharded``,
        which the execute/validate closures read on every call.
        Batches already executing finish against the old executor
        (their results are bit-exact for the matrix they were submitted
        against), which is then drained and closed.

        The new matrix must have the same number of rows — the served
        interface queued requests were validated against.  Column count
        may change (the result row just gets wider or narrower).
        Reservoir deployments (``deploy_esn``) are refused: a
        :class:`ServedESN` holds reservoir state derived from its
        matrix, so swapping underneath it would corrupt rollouts.

        Returns the same (mutated) handle.  Raises ``TimeoutError``
        when the old executor still has batches in flight after
        ``drain_timeout_s`` (the flip is already done and stays done).
        A drain timeout means something is *wedged* — a worker stuck in
        a dead socket read, an executor that will never come back — so
        the old executor is force-closed (``close(wait=False)``: pools
        shut down without joining, remote sockets closed first, which
        is what unblocks a wedged read) and the abandonment is recorded
        as a ``drain_abandoned`` flight-recorder event.  The wedged
        batch's futures fail with the resulting transport error instead
        of hanging forever, and the service no longer leaks an
        unreachable executor.
        """
        name = handle if isinstance(handle, str) else handle.name
        try:
            deployment = self._deployments[name]
        except KeyError:
            raise KeyError(f"no deployment named {name!r}") from None
        with deployment.swap_lock:
            if deployment.esn is not None:
                raise ValueError(
                    f"deployment {name!r} serves a reservoir; swap() would "
                    "corrupt its rollout state — undeploy and redeploy instead"
                )
            arr = np.asarray(matrix, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[0] != deployment.rows:
                raise ValueError(
                    f"swap matrix must keep the served interface of "
                    f"{deployment.rows} rows, got shape {arr.shape}"
                )
            config = {**deployment.config, **config_overrides}
            # Build alongside the old executor; a compile failure or a
            # fleet LOAD refusal raises out of here with routing (and
            # the old executor) untouched.
            new_sharded = ShardedMultiplier(arr, **config)
            old_sharded = deployment.sharded
            # The atomic flip: the next _execute/_validate call reads
            # the new executor through the handle.
            old_digest = deployment.matrix_digest
            deployment.sharded = new_sharded
            deployment.matrix_digest = matrix_digest(arr)
            deployment.config = config
            deployment.telemetry.record_swap()
            self._record_event(
                "swap",
                deployment=name,
                old_digest=old_digest,
                new_digest=deployment.matrix_digest,
            )
            if not old_sharded.drain(timeout_s=drain_timeout_s):
                abandoned = old_sharded.inflight
                self._record_event(
                    "drain_abandoned",
                    deployment=name,
                    inflight=abandoned,
                    timeout_s=drain_timeout_s,
                )
                # Force-close rather than leak: the executor is already
                # unroutable (the flip happened), and a batch that has
                # not finished within the drain window is wedged, not
                # slow.  wait=False closes sockets first so a worker
                # stuck in a dead read is unblocked and the abandoned
                # futures fail instead of hanging.
                old_sharded.close(wait=False)
                raise TimeoutError(
                    f"deployment {name!r} swapped, but the previous executor "
                    f"still had {abandoned} batch(es) in flight after "
                    f"{drain_timeout_s}s; it was force-closed and the work "
                    "abandoned"
                )
            old_sharded.close()
        return deployment

    # -- request paths -------------------------------------------------------

    def _shed(self, handle: Deployment, tenant: str, reason: str) -> None:
        """Book one refused request: telemetry counter + recorder event."""
        handle.telemetry.record_shed(reason, tenant)
        self._record_event(
            "request_shed", deployment=handle.name, tenant=tenant, reason=reason
        )

    async def submit(
        self,
        handle: Deployment,
        vector: np.ndarray,
        tenant: str = "default",
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """One vector in, its product row out, micro-batched underneath.

        With a tracer configured this opens the request's root span and
        threads its context through the batcher, the shard executor,
        and (remote backends) the wire — one ``submit`` yields one span
        tree.  With a recorder and ``slow_request_s`` set, a request
        over the threshold leaves a ``slow_request`` exemplar carrying
        its trace id, so the slow request's exact tree can be pulled
        from the tracer afterwards.

        With an :class:`AdmissionController` configured on the service,
        the request is admitted *first*: over-quota tenants get
        :class:`QuotaExceeded`, a full service queue gets
        :class:`QueueFull` — both immediately, before any queueing, so
        shed load costs the service nothing but the check.  ``tenant``
        names the quota bucket (and the shed-accounting breakdown).

        ``deadline_s`` is this request's latency budget.  A request
        still queued when it expires fails with
        :class:`DeadlineExceeded` at the next flush instead of
        executing, and the remaining budget propagates to remote shard
        servers so they skip abandoned work too.  Every shed/expired
        outcome lands in telemetry (``sheds`` / ``quota_rejections`` /
        ``expired``, with per-tenant breakdown) and as a
        ``request_shed`` flight-recorder event.
        """
        handle.telemetry.record_arrival()
        if self.admission is not None:
            try:
                self.admission.admit(tenant)
            except QuotaExceeded:
                self._shed(handle, tenant, "quota")
                raise
            except QueueFull:
                self._shed(handle, tenant, "queue_full")
                raise
        try:
            return await self._submit_admitted(
                handle, vector, tenant, deadline_s
            )
        finally:
            if self.admission is not None:
                self.admission.release(tenant)

    async def _submit_admitted(
        self,
        handle: Deployment,
        vector: np.ndarray,
        tenant: str,
        deadline_s: float | None,
    ) -> np.ndarray:
        # The root span is recorded post-hoc from the interval submit
        # measures for telemetry anyway: only its *context* (the ids
        # children parent onto) must exist up front.  This keeps the
        # per-request tracing cost to id generation plus one record —
        # the span-object-per-call shape of ``start_span`` is reserved
        # for the per-batch spans, where it amortizes.
        if self.tracer is None:
            ctx = None
        else:
            ctx = SpanContext(Tracer.new_trace_id(), Tracer.new_span_id())
            start_wall = time.time()
        deadline = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        start = time.perf_counter()
        try:
            if ctx is None:
                result = await handle.batcher.submit(vector, deadline=deadline)
            else:
                result = await handle.batcher.submit(
                    vector, span=ctx, deadline=deadline
                )
        except Exception as exc:
            if isinstance(exc, DeadlineExceeded):
                # Dropped at flush time (or refused by a shard server
                # whose propagated budget had died): an admitted request
                # the service declined to execute.
                self._shed(handle, tenant, "expired")
            if ctx is not None:
                self.tracer.record(Span(
                    ctx.trace_id, ctx.span_id, None, "request", start_wall,
                    time.perf_counter() - start,
                    {"deployment": handle.name,
                     "error": f"{type(exc).__name__}: {exc}"},
                ))
            raise
        elapsed = time.perf_counter() - start
        handle.telemetry.record_request(elapsed)
        if ctx is not None:
            self.tracer.record(Span(
                ctx.trace_id, ctx.span_id, None, "request", start_wall,
                elapsed,
                {"deployment": handle.name, "latency_s": elapsed},
            ))
        if (
            self.slow_request_s is not None
            and elapsed >= self.slow_request_s
            and self.recorder is not None
        ):
            self.recorder.record(
                "slow_request",
                deployment=handle.name,
                latency_s=round(elapsed, 6),
                threshold_s=self.slow_request_s,
                trace_id=ctx.trace_id if ctx is not None else None,
            )
        return result

    async def submit_many(
        self,
        handle: Deployment,
        vectors: np.ndarray,
        tenant: str = "default",
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Submit a set of independent requests concurrently; ordered rows."""
        batch = np.atleast_2d(np.asarray(vectors))
        rows = await asyncio.gather(
            *(
                self.submit(handle, vec, tenant=tenant, deadline_s=deadline_s)
                for vec in batch
            )
        )
        return np.stack(rows)

    def multiply(
        self, handle: Deployment, vectors: np.ndarray, engine: str | None = None
    ) -> np.ndarray:
        """Synchronous direct path: one hardware call, no coalescing."""
        batch = np.atleast_2d(np.asarray(vectors))
        effective, out = _resolved_multiply(
            handle.sharded, engine if engine is not None else handle.engine, batch
        )
        handle.telemetry.record_batch(batch.shape[0], engine=effective)
        handle.telemetry.record_products(batch.shape[0])
        return out

    def run_stream(
        self,
        handle: Deployment,
        inputs_q: np.ndarray,
        initial_states: np.ndarray | None = None,
        washout: int = 0,
    ) -> np.ndarray:
        """Reservoir rollout(s) on a ``deploy_esn`` deployment.

        A 3-D ``(B, steps, n_inputs)`` input rolls out ``B`` independent
        sequences in lock-step — each step's ``B`` recurrent products are
        one sharded hardware batch filling ``B`` bit-plane lanes.  1-D or
        2-D inputs run a single sequence (products fill one lane each,
        exactly like :meth:`HardwareESN.run`).
        """
        if handle.esn is None:
            raise ValueError(
                f"deployment {handle.name!r} was not created by deploy_esn; "
                "run_stream needs a served reservoir"
            )
        arr = np.asarray(inputs_q)
        if arr.ndim == 3:
            return handle.esn.run_batch(arr, initial_states, washout)
        return handle.esn.run(arr, initial_state=initial_states, washout=washout)

    # -- observability / lifecycle ------------------------------------------

    def telemetry(self, handle: Deployment | None = None) -> dict:
        """Metrics for one deployment, or the whole service when omitted."""
        if handle is not None:
            snap = handle.telemetry.snapshot()
            # Merge the configured engine into the snapshot's per-batch
            # effective-engine record: a dashboard reader sees both what
            # the deployment asked for and what it actually ran.
            snap["engine"] = {"configured": handle.engine, **snap["engine"]}
            return {
                "name": handle.name,
                "matrix_digest": handle.matrix_digest,
                **snap,
                "batcher": {
                    "requests": handle.batcher.stats.requests,
                    "batches": handle.batcher.stats.batches,
                    "full_flushes": handle.batcher.stats.full_flushes,
                    "deadline_flushes": handle.batcher.stats.deadline_flushes,
                    "forced_flushes": handle.batcher.stats.forced_flushes,
                    "expired": handle.batcher.stats.expired,
                    "mean_occupancy": round(
                        handle.batcher.stats.mean_occupancy(
                            handle.batcher.max_batch
                        ),
                        4,
                    ),
                },
                "shards": handle.sharded.utilization(),
            }
        doc = {
            "cache": self.cache.stats(),
            "deployments": {
                name: self.telemetry(dep)
                for name, dep in self._deployments.items()
            },
        }
        if self.admission is not None:
            # The service-wide admission view (queue depth, per-tenant
            # buckets) next to the per-deployment shed counters.
            doc["admission"] = self.admission.snapshot()
        # Collector health (not span/event payloads — those are pulled
        # from the instruments directly): enough for a dashboard to see
        # that tracing is live and whether the rings are evicting.
        obs = {}
        if self.tracer is not None:
            obs["tracer"] = self.tracer.stats()
        if self.recorder is not None:
            obs["flight_recorder"] = self.recorder.stats()
        if self.profiler is not None:
            obs["profiler"] = self.profiler.stats()
        if obs:
            doc["observability"] = obs
        return doc

    def close(self) -> None:
        """Shut the service down: reject queued work, then stop executors.

        Requests still coalescing in a deployment's micro-batcher are
        failed with a clear error *before* its executor (thread pool,
        process pools, or remote connections) goes away — a closing
        service must never leave a caller awaiting a future no batch
        will ever resolve, and must never dispatch into a dead executor.
        Remote deployments additionally close their shard sockets, so
        fleet servers see a clean disconnect instead of idle
        connections.  Idempotent; in-flight batches run to completion
        into their own futures first (executors shut down with
        ``wait=True``).
        """
        for deployment in self._deployments.values():
            deployment.batcher.reject_pending(
                RuntimeError(
                    f"service closed while the request was queued "
                    f"(deployment {deployment.name!r})"
                )
            )
            deployment.sharded.close()
        self._record_event(
            "service_close", deployments=sorted(self._deployments)
        )

    def __enter__(self) -> "MatMulService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
