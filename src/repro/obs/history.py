"""Fleet metrics over time: a bounded ring of collected documents.

:meth:`FleetMetrics.collect <repro.obs.metrics.FleetMetrics.collect>`
answers "what is the fleet doing *right now*"; everything the SLO
engine (:mod:`repro.obs.slo`) and the coming adaptive-batching
controller need is the *time dimension* — how counters, rates, and
percentiles evolve.  :class:`MetricsHistory` is that dimension:

* a **bounded ring** of timestamped collection documents (default 512
  samples), filled by explicit :meth:`sample` calls or by a background
  thread (:meth:`start` / :meth:`close`, clean daemon lifecycle);
* **windowed queries** over the ring — :meth:`rate` / :meth:`delta`
  turn any monotonic counter (dotted path into the document:
  ``"fleet.shed.queue_full"``, ``"fleet.servers.expired_skips"``,
  ``"fleet.engine_batches.fused:dense"``) into an increase or
  per-second rate over a trailing window, :meth:`counter_rates` does it
  for every numeric counter under ``fleet`` at once, and
  :meth:`percentile_series` extracts a deployment latency quantile as a
  timestamped series;
* **persistence** — :meth:`dump_jsonl` / :meth:`load_jsonl` write and
  reload the ring as JSONL through the artifact store's atomic-write
  discipline (:func:`repro.core.serialize.atomic_write_text`), so a
  history survives a process restart and an incident's window can be
  archived next to the flight-recorder dump.

The clock is injectable (tests drive a fake, so rate math never races
real time), and listeners registered via ``on_sample=`` run after every
sample — which is how the SLO engine evaluates its burn rules on every
fresh collection without a second polling loop.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable

from repro.core.serialize import atomic_write_text

__all__ = ["MetricsHistory"]


def _lookup(doc: Any, path: str) -> Any:
    """Dotted-path lookup (``"fleet.shed.queue_full"``); None if absent.

    Path segments are dict keys only — engine labels like
    ``fused:dense`` contain no dots, so segments never need escaping.
    """
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _numeric_leaves(node: Any, prefix: str, out: dict[str, float]) -> None:
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        out[prefix] = float(node)
        return
    if isinstance(node, dict):
        for key, value in node.items():
            _numeric_leaves(value, f"{prefix}.{key}" if prefix else str(key), out)


class MetricsHistory:
    """A sampler turning one-shot collections into a queryable timeline.

    Args:
        metrics: anything with a ``collect() -> dict`` method — a
            :class:`~repro.obs.metrics.FleetMetrics` in practice.
        capacity: ring size in samples; the oldest falls off.
        clock: timestamp source for samples and window math (default
            ``time.time`` — wall clock, so dumped histories line up
            with flight-recorder events; tests inject a fake).
        on_sample: callables invoked as ``fn(entry)`` after each sample
            lands in the ring (``entry`` is ``{"ts": ..., "doc": ...}``).
    """

    def __init__(
        self,
        metrics: Any,
        capacity: int = 512,
        clock: Callable[[], float] = time.time,
        on_sample: Iterable[Callable[[dict[str, Any]], None]] = (),
    ) -> None:
        if capacity < 2:
            # One sample has no deltas; a history that cannot answer its
            # own queries is a configuration error, not a degraded mode.
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.metrics = metrics
        self.capacity = int(capacity)
        self._clock = clock
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._listeners: list[Callable[[dict[str, Any]], None]] = list(on_sample)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Background-loop resilience accounting: a scrape that raises
        # (fleet mid-restart) must not kill the sampler thread, but it
        # must not vanish either.
        self.sample_errors = 0
        self.last_error: str | None = None

    # -- sampling ------------------------------------------------------------

    def add_listener(self, fn: Callable[[dict[str, Any]], None]) -> None:
        self._listeners.append(fn)

    def sample(self) -> dict[str, Any]:
        """Collect once, append to the ring, notify listeners.

        Returns the ring entry (``{"ts", "doc"}``).  Collection or
        listener exceptions propagate to the caller here; the
        background loop wraps this and survives them instead.
        """
        doc = self.metrics.collect()
        entry = {"ts": float(self._clock()), "doc": doc}
        with self._lock:
            self._ring.append(entry)
        for fn in self._listeners:
            fn(entry)
        return entry

    def start(self, interval_s: float) -> "MetricsHistory":
        """Sample every ``interval_s`` seconds on a daemon thread.

        Idempotent while running; :meth:`close` stops and joins.  A
        failing collection is counted (``sample_errors`` /
        ``last_error``) and the loop continues — a fleet mid-restart
        must not kill its own history.
        """
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                try:
                    self.sample()
                except Exception as exc:  # noqa: BLE001 - loop must survive
                    self.sample_errors += 1
                    self.last_error = f"{type(exc).__name__}: {exc}"
                self._stop.wait(interval_s)

        self._thread = threading.Thread(
            target=_loop, name="repro-metrics-history", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the background sampler and join it; idempotent."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout=10.0)

    def __enter__(self) -> "MetricsHistory":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the timeline --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def samples(self, window_s: float | None = None) -> list[dict[str, Any]]:
        """Ring entries oldest-first; with ``window_s``, only those
        whose timestamp is within the trailing window of *now*."""
        with self._lock:
            entries = list(self._ring)
        if window_s is None:
            return entries
        cutoff = float(self._clock()) - float(window_s)
        return [e for e in entries if e["ts"] >= cutoff]

    def latest(self) -> dict[str, Any] | None:
        with self._lock:
            return self._ring[-1] if self._ring else None

    @staticmethod
    def value(doc: dict[str, Any], path: str) -> Any:
        """Dotted-path lookup into one collected document."""
        return _lookup(doc, path)

    def series(
        self, path: str, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """``[(ts, value), ...]`` of a numeric dotted path over the
        window; samples where the path is absent are skipped."""
        out: list[tuple[float, float]] = []
        for entry in self.samples(window_s):
            value = _lookup(entry["doc"], path)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out.append((entry["ts"], float(value)))
        return out

    def delta(self, path: str, window_s: float | None = None) -> float | None:
        """Counter increase over the window (clamped at 0 across
        resets); ``None`` with fewer than two samples carrying it."""
        points = self.series(path, window_s)
        if len(points) < 2:
            return None
        return max(0.0, points[-1][1] - points[0][1])

    def rate(self, path: str, window_s: float | None = None) -> float | None:
        """Counter increase per second over the window, or ``None``.

        The denominator is the samples' actual timestamp span, not the
        nominal window — a sampler that hiccuped reports a true rate,
        not one diluted by the gap it never observed.
        """
        points = self.series(path, window_s)
        if len(points) < 2:
            return None
        span = points[-1][0] - points[0][0]
        if span <= 0:
            return None
        return max(0.0, points[-1][1] - points[0][1]) / span

    def counter_rates(
        self, window_s: float | None = None, root: str = "fleet"
    ) -> dict[str, float]:
        """Per-second increase of every numeric leaf under ``root``.

        One call covers all the counter families at once — sheds,
        server ``expired_skips`` / ``auth_failures`` / ``errors``,
        revivals, per-variant ``engine_batches.*`` — keyed by dotted
        path (``"fleet.shed.queue_full"``).  Gauges that decreased
        clamp to 0.0 (this is counter math; read gauges via
        :meth:`series`).
        """
        entries = self.samples(window_s)
        if len(entries) < 2:
            return {}
        first, last = entries[0], entries[-1]
        span = last["ts"] - first["ts"]
        if span <= 0:
            return {}
        start: dict[str, float] = {}
        end: dict[str, float] = {}
        _numeric_leaves(_lookup(first["doc"], root), root, start)
        _numeric_leaves(_lookup(last["doc"], root), root, end)
        return {
            path: max(0.0, end[path] - start.get(path, 0.0)) / span
            for path in sorted(end)
        }

    def percentile_series(
        self,
        deployment: str | None = None,
        point: str = "p99",
        window_s: float | None = None,
    ) -> list[tuple[float, float]]:
        """A deployment latency quantile as a timestamped series.

        ``deployment=None`` takes the *worst* (max) quantile across all
        deployments per sample — the conservative reading a latency SLO
        wants.  ``point`` is a snapshot key (``"p50"`` / ``"p99"`` /
        ``"p99_9"``).
        """
        out: list[tuple[float, float]] = []
        for entry in self.samples(window_s):
            deployments = _lookup(entry["doc"], "service.deployments")
            if not isinstance(deployments, dict):
                continue
            if deployment is not None:
                snaps = [deployments.get(deployment)]
            else:
                snaps = list(deployments.values())
            values = [
                float(snap["latency_s"][point])
                for snap in snaps
                if isinstance(snap, dict) and point in snap.get("latency_s", {})
            ]
            if values:
                out.append((entry["ts"], max(values)))
        return out

    # -- persistence ---------------------------------------------------------

    def dump_jsonl(self, path: str | pathlib.Path) -> int:
        """Write the ring as JSONL (one sample per line, oldest first)
        with the artifact store's private-tmp + ``os.replace``
        discipline; returns the number of samples written."""
        entries = self.samples()
        text = "".join(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
            for entry in entries
        )
        atomic_write_text(path, text)
        return len(entries)

    def load_jsonl(self, path: str | pathlib.Path) -> int:
        """Append a dumped history's samples back into the ring.

        Entries must carry ``ts`` and ``doc``; a malformed line raises
        ``ValueError`` (a torn file is impossible by construction — the
        dump is atomic — so damage means the wrong file).  Returns the
        number of samples loaded; the ring cap still applies.
        """
        loaded = 0
        for lineno, line in enumerate(
            pathlib.Path(path).read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON history sample: {exc}"
                ) from exc
            if (
                not isinstance(entry, dict)
                or "ts" not in entry
                or not isinstance(entry.get("doc"), dict)
            ):
                raise ValueError(
                    f"{path}:{lineno}: history samples need 'ts' and 'doc'"
                )
            entry["ts"] = float(entry["ts"])
            with self._lock:
                self._ring.append(entry)
            loaded += 1
        return loaded

    def stats(self) -> dict[str, Any]:
        """Sampler-health digest (ring occupancy, background errors)."""
        with self._lock:
            size = len(self._ring)
            newest = self._ring[-1]["ts"] if self._ring else None
            oldest = self._ring[0]["ts"] if self._ring else None
        return {
            "samples": size,
            "capacity": self.capacity,
            "span_s": (
                round(newest - oldest, 6) if size >= 2 else 0.0
            ),
            "running": self._thread is not None and self._thread.is_alive(),
            "sample_errors": self.sample_errors,
            "last_error": self.last_error,
        }
