"""`repro.obs` — observability for the served multiplier stack.

The paper's whole argument is a latency/throughput trade-off (pipelined
spatial multipliers vs. batched accelerators, Figs. 5–7), and the
ROADMAP's next step — closed-loop adaptive batching and shard
rebalancing — is a *controller over measured signals*.  This package is
the measurement substrate those signals come from, three instruments
over one serving stack:

* :mod:`repro.obs.tracing` — distributed request tracing.  One
  ``submit()`` yields one span tree: the request root, its queue-wait
  in the micro-batcher, the coalesced batch execution, per-shard
  dispatch, and — for remote backends — the wire round-trip with the
  *server-side* execute span linked in by trace context propagated on
  the EXECUTE frame (protocol v3), not reconstructed by client-side
  guessing.
* :mod:`repro.obs.metrics` — fleet metrics aggregation: one merged
  JSON document per collection (deployment telemetry + scraped
  per-server STATS + fleet rollup) and a dependency-free Prometheus
  text exposition writer.  ``python -m repro.obs.top`` renders the
  same documents as a one-shot or watch terminal view.
* :mod:`repro.obs.recorder` — the flight recorder: a bounded,
  thread-safe ring of structured events (deploys, swaps, shard health
  transitions, revival probes, slow-request exemplars) dumpable as
  JSONL on demand or automatically when a shard dies.

All three are opt-in at the serve layer (``MatMulService(tracer=...,
recorder=...)``); the untraced path pays only ``None`` checks, held to
<10% overhead by ``benchmarks/bench_obs_overhead.py``.  See
``docs/observability.md`` for the span taxonomy, metrics glossary, and
event schema.
"""

from repro.obs.metrics import FleetMetrics, to_prometheus
from repro.obs.recorder import FlightRecorder
from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    span_tree,
    trace_meta,
    tree_stages,
)

__all__ = [
    "FleetMetrics",
    "FlightRecorder",
    "Span",
    "SpanContext",
    "Tracer",
    "span_tree",
    "trace_meta",
    "tree_stages",
    "to_prometheus",
]
