"""`repro.obs` — observability for the served multiplier stack.

The paper's whole argument is a latency/throughput trade-off (pipelined
spatial multipliers vs. batched accelerators, Figs. 5–7), and the
ROADMAP's next step — closed-loop adaptive batching and shard
rebalancing — is a *controller over measured signals*.  This package is
the measurement substrate those signals come from, three instruments
over one serving stack:

* :mod:`repro.obs.tracing` — distributed request tracing.  One
  ``submit()`` yields one span tree: the request root, its queue-wait
  in the micro-batcher, the coalesced batch execution, per-shard
  dispatch, and — for remote backends — the wire round-trip with the
  *server-side* execute span linked in by trace context propagated on
  the EXECUTE frame (protocol v3), not reconstructed by client-side
  guessing.
* :mod:`repro.obs.metrics` — fleet metrics aggregation: one merged
  JSON document per collection (deployment telemetry + scraped
  per-server STATS + fleet rollup) and a dependency-free Prometheus
  text exposition writer.  ``python -m repro.obs.top`` renders the
  same documents as a one-shot or watch terminal view.
* :mod:`repro.obs.recorder` — the flight recorder: a bounded,
  thread-safe ring of structured events (deploys, swaps, shard health
  transitions, revival probes, slow-request exemplars, SLO burn
  transitions) dumpable as JSONL on demand or automatically when a
  shard dies.

Phase 2 adds the *time dimension* on top of those instruments:

* :mod:`repro.obs.history` — :class:`MetricsHistory`, a bounded ring
  of timestamped ``FleetMetrics.collect()`` documents (background
  sampler with clean ``close()``), with windowed counter deltas/rates,
  latency percentile series, and atomic JSONL persistence.
* :mod:`repro.obs.slo` — declarative latency/availability SLOs
  evaluated over the history with SRE-style multi-window burn-rate
  rules, emitting ``slo_burn``/``slo_ok`` flight-recorder events and
  the ``repro_slo_*`` Prometheus families.
* :mod:`repro.obs.profile` — :class:`StageProfiler`, near-zero-overhead
  log-bucketed histograms of per-stage serving durations keyed by
  executor variant, merged fleet-wide and exposed as real Prometheus
  histogram types.

All instruments are opt-in at the serve layer
(``MatMulService(tracer=..., recorder=..., profiler=...)``); the
uninstrumented path pays only ``None`` checks, held to <10% overhead by
``benchmarks/bench_obs_overhead.py`` and
``benchmarks/bench_slo_alerting.py``.  See ``docs/observability.md``
for the span taxonomy, metrics glossary, and event schema.
"""

from repro.obs.history import MetricsHistory
from repro.obs.metrics import FleetMetrics, to_prometheus
from repro.obs.profile import StageProfiler
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import (
    AvailabilitySLO,
    BurnRatePolicy,
    LatencySLO,
    SLOEngine,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    span_tree,
    trace_meta,
    tree_stages,
)

__all__ = [
    "AvailabilitySLO",
    "BurnRatePolicy",
    "FleetMetrics",
    "FlightRecorder",
    "LatencySLO",
    "MetricsHistory",
    "SLOEngine",
    "Span",
    "SpanContext",
    "StageProfiler",
    "Tracer",
    "span_tree",
    "trace_meta",
    "tree_stages",
    "to_prometheus",
]
