"""Distributed request tracing: span records for the serve path.

One served request crosses four concurrency domains — the caller's
coroutine, the micro-batcher's coalescing loop, the shard executor's
worker threads, and (for remote backends) a fleet server on the far
side of a socket.  A latency number alone cannot say *where* a slow
request spent its time; the adaptive-batching controller the ROADMAP
calls for needs exactly that breakdown (queue-wait vs. execute is the
knob Eq. 5 tunes).  This module is the measurement substrate:

* :class:`Span` — one timed operation: ``trace_id`` (shared by every
  span of one request), ``span_id``, ``parent_id``, ``stage`` (a name
  from the taxonomy in ``docs/observability.md``), wall-clock start,
  duration, and a small free-form ``attrs`` dict.  Spans serialize to
  plain JSON dicts — which is also how server-side spans ride RESULT
  frames back to the client (:mod:`repro.cluster.protocol`).
* :class:`Tracer` — a bounded, thread-safe span collector plus helpers
  to start/finish spans.  A ``Tracer`` is *opt-in*: every serve-layer
  hook takes ``tracer=None`` and instruments nothing by default, so the
  untraced hot path pays only a ``None`` check
  (``benchmarks/bench_obs_overhead.py`` holds the traced path to <10%
  overhead on top of that).
* :func:`span_tree` — assemble a flat span list into parent/child
  trees, the form the tests and the flight-recorder dumps consume.

Trace context crosses boundaries explicitly — as a ``(trace_id,
span_id)`` pair threaded through call signatures and, across the wire,
as the optional ``"trace"`` field of an EXECUTE frame (protocol v3) —
never through thread-locals or contextvars: the batcher executes on
loop-pool threads and the cluster client on shard-pool threads, where
ambient context would silently fail to propagate.
"""

from __future__ import annotations

import itertools
import json
import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "span_tree",
    "tree_stages",
    "trace_meta",
]

#: Id generation: 16 hex chars for trace ids, 8 for span ids — small
#: enough to keep frame metas cheap, large enough that collisions
#: within one collector window are negligible.  Ids are allocated from
#: a per-process counter XOR'd with a random origin rather than drawn
#: fresh from ``secrets`` per span: bitwise-unique within the process
#: by construction, randomly offset across processes (same birthday
#: bound as 32 random bits, which is what ``token_hex(4)`` gave), and
#: ~5x cheaper — id generation is on the traced hot path, three ids
#: per served request.
_ID_MASK = 0xFFFFFFFF
_ID_BASE = secrets.randbits(32)
_TRACE_PREFIX = secrets.token_hex(4)  # pins trace ids to this process
_id_counter = itertools.count(secrets.randbits(24))


@dataclass(slots=True)
class SpanContext:
    """The propagatable identity of a span: what children parent onto."""

    trace_id: str
    span_id: str

    def to_meta(self) -> dict[str, str]:
        """The wire form: the ``"trace"`` field of an EXECUTE frame."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


def trace_meta(context: "SpanContext | None") -> dict[str, str] | None:
    """``context.to_meta()`` tolerant of ``None`` (untraced requests)."""
    return None if context is None else context.to_meta()


@dataclass(slots=True)
class Span:
    """One finished timed operation in a trace.

    ``start_s`` is wall-clock (``time.time``) so spans recorded on
    different hosts sort plausibly side by side; ``duration_s`` is
    measured with a monotonic clock at the recording site, so durations
    are exact even when wall clocks drift.  Tree structure relies only
    on ``parent_id`` links, never on timestamps.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    stage: str
    start_s: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (RESULT frames, flight-recorder dumps)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "stage": self.stage,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 9),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Validated inverse of :meth:`to_dict`.

        Raises ``ValueError`` on structural garbage — a span arriving in
        a RESULT frame must never poison the collector with unusable
        records.
        """
        try:
            attrs = data.get("attrs", {})
            if not isinstance(attrs, dict):
                raise TypeError("attrs must be an object")
            parent = data.get("parent_id")
            return cls(
                trace_id=str(data["trace_id"]),
                span_id=str(data["span_id"]),
                parent_id=None if parent is None else str(parent),
                stage=str(data["stage"]),
                start_s=float(data["start_s"]),
                duration_s=float(data["duration_s"]),
                attrs=dict(attrs),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed span record: {data!r}") from exc


class _ActiveSpan:
    """A started-but-unfinished span; context manager finishes it."""

    __slots__ = ("_tracer", "_span", "_started")

    def __init__(self, tracer: "Tracer", span: Span, started: float) -> None:
        self._tracer = tracer
        self._span = span
        self._started = started

    @property
    def context(self) -> SpanContext:
        return self._span.context

    @property
    def trace_id(self) -> str:
        return self._span.trace_id

    @property
    def span_id(self) -> str:
        return self._span.span_id

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes after the span started (resolved engine ...)."""
        self._span.attrs.update(attrs)

    def finish(self) -> Span:
        """Record the span now; idempotent (first finish wins)."""
        if self._started is not None:
            self._span.duration_s = time.perf_counter() - self._started
            self._started = None
            self._tracer.record(self._span)
        return self._span

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self.finish()


class Tracer:
    """Bounded, thread-safe span collector (see module docstring).

    Args:
        capacity: spans retained (oldest evicted first).  Bounded so an
            always-on tracer in a long-lived service is a window, not a
            leak; evictions are counted in :meth:`stats`.
        clock: wall-clock callable for span start timestamps (tests
            inject a fake so assertions never race real time).
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._clock = clock
        self.recorded = 0

    # -- id generation --------------------------------------------------------

    @staticmethod
    def new_trace_id() -> str:
        return _TRACE_PREFIX + format(next(_id_counter) & _ID_MASK, "08x")

    @staticmethod
    def new_span_id() -> str:
        return format((_ID_BASE ^ next(_id_counter)) & _ID_MASK, "08x")

    # -- span lifecycle -------------------------------------------------------

    def start_span(
        self,
        stage: str,
        parent: SpanContext | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> _ActiveSpan:
        """Open a span; finish it via ``with`` or ``.finish()``.

        With neither ``parent`` nor ``trace_id`` a fresh trace begins
        (the submit path's root span); a ``parent`` pins both the trace
        and the parent link.
        """
        if parent is not None:
            tid, pid = parent.trace_id, parent.span_id
        else:
            tid, pid = (trace_id if trace_id is not None else self.new_trace_id()), None
        # ``attrs`` is this call's own kwargs dict — no defensive copy.
        span = Span(
            trace_id=tid,
            span_id=self.new_span_id(),
            parent_id=pid,
            stage=stage,
            start_s=self._clock(),
            duration_s=0.0,
            attrs=attrs,
        )
        return _ActiveSpan(self, span, time.perf_counter())

    def record_timed(
        self,
        stage: str,
        start_s: float,
        duration_s: float,
        parent: SpanContext | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Record a span whose interval was measured externally.

        The queue-wait path needs this: the batcher knows each request's
        enqueue time and flush time but holds no open span object across
        the wait.
        """
        if parent is not None:
            tid, pid = parent.trace_id, parent.span_id
        else:
            tid, pid = (trace_id if trace_id is not None else self.new_trace_id()), None
        span = Span(
            trace_id=tid,
            span_id=self.new_span_id(),
            parent_id=pid,
            stage=stage,
            start_s=start_s,
            duration_s=max(0.0, duration_s),
            attrs=attrs,
        )
        self.record(span)
        return span

    def record(self, span: Span) -> None:
        """Add one finished span (local or deserialized off the wire)."""
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    def record_many(self, spans: "list[Span]") -> None:
        """Add finished spans under one lock acquisition.

        The batcher records one ``queue_wait`` span per coalesced
        request at flush time — up to 64 at once on the event-loop
        thread, where per-span locking is measurable.
        """
        with self._lock:
            self._spans.extend(spans)
            self.recorded += len(spans)

    def adopt(self, records: Iterable[dict[str, Any]]) -> list[Span]:
        """Deserialize and record spans that rode a RESULT frame.

        Malformed records raise ``ValueError`` (the frame was already
        validated structurally; a bad span is a peer bug worth surfacing,
        not silently dropping).
        """
        adopted = [Span.from_dict(r) for r in records]
        for span in adopted:
            self.record(span)
        return adopted

    # -- reading --------------------------------------------------------------

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Snapshot of retained spans, optionally one trace's."""
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        return out

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently retained, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            buffered = len(self._spans)
            recorded = self.recorded
        return {
            "recorded": recorded,
            "buffered": buffered,
            "evicted": recorded - buffered,
            "capacity": self._spans.maxlen,
        }

    def to_jsonl(self, trace_id: str | None = None) -> str:
        """One span per line — the flight-recorder-adjacent dump form."""
        return "\n".join(
            json.dumps(s.to_dict(), sort_keys=True) for s in self.spans(trace_id)
        )


def span_tree(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Assemble spans into ``{"span": Span, "children": [...]}`` trees.

    Returns the list of roots (spans whose parent is ``None`` or not in
    the input — a truncated collector window must still assemble).
    Children are ordered by start time.  Typically fed one trace:
    ``span_tree(tracer.spans(trace_id))``.
    """
    spans = sorted(spans, key=lambda s: s.start_s)
    nodes = {s.span_id: {"span": s, "children": []} for s in spans}
    roots: list[dict[str, Any]] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def tree_stages(tree: dict[str, Any]) -> set[str]:
    """Every stage name reachable from one :func:`span_tree` node."""
    stages = {tree["span"].stage}
    for child in tree["children"]:
        stages |= tree_stages(child)
    return stages
