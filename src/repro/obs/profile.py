"""Continuous stage profiling: where serving time goes, as histograms.

Tracing (:mod:`repro.obs.tracing`) answers "where did *this* request's
time go" — one span tree, high fidelity, bounded retention.  The stage
profiler answers the fleet-wide version: the full *distribution* of
per-stage durations (``queue_wait``, ``coalesce``, ``shard_dispatch``,
``wire``, ``server_execute``), keyed by the executor variant label
(``fused:dense`` / ``fused:segmented`` / ``fused:generated`` /
``bitplane`` / ...), continuously, for every request — which is what
proving the paper's latency/throughput envelope under live traffic
requires.  That only works if recording is near-free, so:

* **Log-bucketed fixed bins.**  Bucket edges are precomputed
  (log-spaced, 10 µs to 10 s by default) and shared by every series;
  recording is one ``searchsorted`` plus an integer increment into a
  preallocated counts array — no per-sample allocation, no growing
  reservoir.  Batched recording (``record_many``) bins a whole
  duration array with one ``searchsorted`` + ``bincount``.
* **Mergeable.**  A snapshot is plain counts; snapshots from every
  host in a fleet (service-side stages from the client,
  ``server_execute`` from each :class:`~repro.cluster.server.ShardServer`'s
  STATS) merge by addition in :meth:`FleetMetrics.collect
  <repro.obs.metrics.FleetMetrics.collect>`, provided they share the
  same edges.
* **Prometheus-native.**  The snapshot renders as a *real* Prometheus
  histogram family (``repro_stage_duration_seconds_bucket`` with
  cumulative ``le`` buckets, ``_sum``, ``_count``) via
  :func:`repro.obs.metrics.to_prometheus` — quantiles come out of
  ``histogram_quantile()`` downstream, not out of this process.

Opt-in like the tracer: every hook takes ``profiler=None`` and
instruments nothing by default.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

__all__ = ["DEFAULT_EDGES", "StageProfiler"]

#: Default histogram bucket upper bounds (seconds): log-spaced, four
#: buckets per decade from 10 µs to 10 s.  Everything above the last
#: edge lands in the implicit ``+Inf`` overflow bucket.  One shared
#: edge vector per fleet is what makes snapshots mergeable.
DEFAULT_EDGES = np.logspace(-5, 1, 25)

#: How specific a stage is within the request pipeline, used when a
#: caller (the SLO engine) must attribute a regression to one stage and
#: several nested stages moved together — ``wire`` contains
#: ``server_execute``, ``shard_dispatch`` contains ``wire``, and so on,
#: so ties between a parent and the child that explains it resolve to
#: the child.
STAGE_SPECIFICITY = {
    "request": 0,
    "queue_wait": 1,
    "coalesce": 1,
    "shard_dispatch": 2,
    "wire": 3,
    "server_execute": 4,
}


class _Series:
    """One (stage, variant) histogram: preallocated counts + sum/count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, bins: int) -> None:
        self.counts = np.zeros(bins, dtype=np.int64)
        self.sum = 0.0
        self.count = 0


class StageProfiler:
    """Streaming per-stage duration histograms (see module docstring).

    Thread-safe: recorders are shard-pool threads, the asyncio loop
    thread, and (server-side) executor workers; snapshotters are
    telemetry scrapes.  The per-record critical section is two integer
    adds and one float add.

    Args:
        edges: increasing histogram bucket upper bounds in seconds
            (default :data:`DEFAULT_EDGES`).  All profilers that will be
            merged fleet-wide must share the same edges.
    """

    def __init__(self, edges: Iterable[float] | None = None) -> None:
        arr = np.asarray(
            DEFAULT_EDGES if edges is None else list(edges), dtype=float
        )
        if arr.ndim != 1 or arr.size < 1:
            raise ValueError("edges must be a non-empty 1-D sequence")
        if not np.all(np.diff(arr) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = arr
        self._bins = arr.size + 1  # + the +Inf overflow bucket
        self._lock = threading.Lock()
        self._series: dict[tuple[str, str], _Series] = {}

    # -- recording -----------------------------------------------------------

    def _get(self, stage: str, variant: str) -> _Series:
        key = (stage, variant)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(self._bins)
        return series

    def record(self, stage: str, duration_s: float, variant: str = "") -> None:
        """Count one stage duration (seconds) into its bucket."""
        duration = float(duration_s)
        # side="left": bucket i holds durations <= edges[i], matching
        # Prometheus ``le`` (less-or-equal) bucket semantics.
        idx = int(np.searchsorted(self.edges, duration, side="left"))
        with self._lock:
            series = self._get(stage, variant)
            series.counts[idx] += 1
            series.sum += duration
            series.count += 1

    def record_many(
        self, stage: str, durations_s, variant: str = ""
    ) -> None:
        """Count a whole array of durations in one binning pass."""
        arr = np.asarray(durations_s, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr, side="left")
        binned = np.bincount(idx, minlength=self._bins)
        total = float(arr.sum())
        with self._lock:
            series = self._get(stage, variant)
            series.counts += binned
            series.sum += total
            series.count += int(arr.size)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable state: edges plus every series' counts.

        The wire/merge form: ``{"edges": [...], "stages": [{"stage",
        "variant", "counts", "sum", "count"}, ...]}``, stages sorted for
        stable output.
        """
        with self._lock:
            stages = [
                {
                    "stage": stage,
                    "variant": variant,
                    "counts": [int(c) for c in series.counts],
                    "sum": round(series.sum, 9),
                    "count": series.count,
                }
                for (stage, variant), series in sorted(self._series.items())
            ]
        return {"edges": [float(e) for e in self.edges], "stages": stages}

    def stats(self) -> dict[str, Any]:
        """Collector-health digest for the service telemetry block."""
        with self._lock:
            return {
                "series": len(self._series),
                "samples": sum(s.count for s in self._series.values()),
                "buckets": self._bins,
            }

    @staticmethod
    def merge(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any] | None:
        """Sum compatible snapshots into one fleet-wide snapshot.

        Snapshots must share bucket edges to be addable; a snapshot
        whose edges differ from the first usable one is skipped (and
        counted in the result's ``"skipped"`` field) rather than
        corrupting the merged counts — mixed-version fleets degrade to
        partial coverage, never to wrong numbers.  Returns ``None``
        when nothing usable was given.
        """
        edges: list[float] | None = None
        merged: dict[tuple[str, str], dict[str, Any]] = {}
        skipped = 0
        for snap in snapshots:
            if not isinstance(snap, dict) or "edges" not in snap:
                continue
            snap_edges = [float(e) for e in snap["edges"]]
            if edges is None:
                edges = snap_edges
            elif snap_edges != edges:
                skipped += 1
                continue
            for entry in snap.get("stages", []):
                key = (str(entry["stage"]), str(entry.get("variant", "")))
                into = merged.get(key)
                if into is None:
                    merged[key] = {
                        "stage": key[0],
                        "variant": key[1],
                        "counts": [int(c) for c in entry["counts"]],
                        "sum": float(entry["sum"]),
                        "count": int(entry["count"]),
                    }
                else:
                    into["counts"] = [
                        a + int(b) for a, b in zip(into["counts"], entry["counts"])
                    ]
                    into["sum"] += float(entry["sum"])
                    into["count"] += int(entry["count"])
        if edges is None:
            return None
        for entry in merged.values():
            entry["sum"] = round(entry["sum"], 9)
        doc: dict[str, Any] = {
            "edges": edges,
            "stages": [merged[key] for key in sorted(merged)],
        }
        if skipped:
            doc["skipped"] = skipped
        return doc

    @staticmethod
    def stage_totals(snapshot: dict[str, Any] | None) -> dict[str, dict[str, float]]:
        """Per-stage ``{"sum": seconds, "count": n}`` across variants.

        The reduction the SLO engine diffs between history samples to
        attribute a latency regression to one pipeline stage.
        """
        totals: dict[str, dict[str, float]] = {}
        for entry in (snapshot or {}).get("stages", []):
            stage = str(entry["stage"])
            into = totals.setdefault(stage, {"sum": 0.0, "count": 0.0})
            into["sum"] += float(entry["sum"])
            into["count"] += float(entry["count"])
        return totals
