"""The flight recorder: a bounded ring buffer of operational events.

Telemetry snapshots answer "how is the fleet doing *now*"; the flight
recorder answers "what happened *just before* it stopped doing well".
It is the black box an operator reads after an incident: a bounded,
thread-safe ring of structured events that the serve and cluster layers
emit into as they act —

* deployment lifecycle: ``deploy`` / ``undeploy`` / ``swap`` /
  ``service_close``;
* shard link health: ``shard_unhealthy`` (with the error that killed
  it), ``shard_revived`` (manual or automatic), ``local_fallback``
  (a batch served in-process because its link was down), and
  ``probe_failed`` revival attempts;
* fault campaigns' override pushes (``fault_sync``),
* overload protection: ``request_shed`` (a request rejected by
  admission control or expired past its deadline, with tenant and
  reason) and ``drain_abandoned`` (a swap's drain timed out and the
  old executor was force-closed with work still in flight), and
* ``slow_request`` exemplars — requests whose end-to-end latency
  crossed the service's threshold, each carrying its ``trace_id`` so
  the span tree of precisely that slow request can be pulled from the
  :class:`~repro.obs.tracing.Tracer`.

Events are plain dicts (``ts`` wall-clock, ``seq`` monotonic sequence
number, ``kind``, free-form fields), dumpable as JSONL on demand —
or *automatically*: a recorder constructed with ``auto_dump_path``
writes the whole ring to disk the moment an event of an
``auto_dump_kinds`` kind (by default ``shard_unhealthy``) is recorded,
so the window of events leading up to a shard death is preserved even
if the process never gets another chance.

The ring is bounded (default 1024 events) and eviction is counted, so
an always-on recorder in a long-lived service is a window, not a leak.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded, thread-safe ring buffer of structured events.

    Args:
        capacity: events retained (oldest evicted first).
        auto_dump_path: when set, recording an event whose kind is in
            ``auto_dump_kinds`` immediately dumps the ring there as
            JSONL (atomic replace, last dump wins).
        auto_dump_kinds: event kinds that trigger the automatic dump.
        clock: wall-clock callable stamped on every event (tests inject
            a fake for deterministic dumps).
    """

    def __init__(
        self,
        capacity: int = 1024,
        auto_dump_path: str | os.PathLike | None = None,
        auto_dump_kinds: Iterable[str] = ("shard_unhealthy",),
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._clock = clock
        self._seq = 0
        self._dump_id = 0
        self.recorded = 0
        self.auto_dumps = 0
        self.auto_dump_path = (
            pathlib.Path(auto_dump_path) if auto_dump_path is not None else None
        )
        self.auto_dump_kinds = frozenset(auto_dump_kinds)

    def record(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the stored record.

        Field values should be JSON-serializable (the dump path will
        fall back to ``str()`` rather than fail — a black box that
        raises while recording a crash would be worse than lossy).
        """
        with self._lock:
            event = {"ts": round(self._clock(), 6), "seq": self._seq, "kind": kind}
            event.update(fields)
            self._seq += 1
            self._events.append(event)
            self.recorded += 1
        if self.auto_dump_path is not None and kind in self.auto_dump_kinds:
            try:
                self.dump_jsonl(self.auto_dump_path)
                with self._lock:
                    self.auto_dumps += 1
            except OSError:
                # The black box must never take the service down over a
                # full disk; the in-memory ring still holds the events.
                pass
        return event

    # -- reading --------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Snapshot of retained events, oldest first (optionally one kind)."""
        with self._lock:
            out = [dict(e) for e in self._events]
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            buffered = len(self._events)
            recorded = self.recorded
            return {
                "recorded": recorded,
                "buffered": buffered,
                "evicted": recorded - buffered,
                "capacity": self._events.maxlen,
                "auto_dumps": self.auto_dumps,
            }

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- dumping --------------------------------------------------------------

    def to_jsonl(self, kind: str | None = None) -> str:
        """The ring as JSONL text, oldest event first."""
        return "\n".join(
            json.dumps(e, sort_keys=True, default=str) for e in self.events(kind)
        )

    def dump_jsonl(self, path: str | os.PathLike) -> pathlib.Path:
        """Write the ring to ``path`` as JSONL (atomic rename-in-place).

        The staging-plus-``os.replace`` discipline of the artifact store
        (:mod:`repro.core.serialize`): a reader never sees a torn dump,
        concurrent dumpers are last-writer-wins on complete files.
        """
        target = pathlib.Path(path)
        text = self.to_jsonl()
        # The staging name must be unique per *call*, not per recorder:
        # concurrent dumpers sharing one staging file would interleave
        # and could publish a torn dump.
        with self._lock:
            self._dump_id += 1
            dump_id = self._dump_id
        tmp = target.with_name(
            f"{target.name}.tmp-{os.getpid()}-{threading.get_ident()}-{dump_id}"
        )
        tmp.write_text(text + ("\n" if text else ""))
        os.replace(tmp, target)
        return target
