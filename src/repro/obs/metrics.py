"""Fleet metrics: one merged document, one scrape format.

The stack already measures a lot — every deployment's
:class:`~repro.serve.telemetry.DeploymentTelemetry` snapshot, every
shard link's health/RTT block, every server's STATS counters — but each
lives behind a different call on a different object.  This module
merges them into **one JSON document per collection**, which is what an
adaptive controller wants to read and what a dashboard wants to poll:

* :class:`FleetMetrics` — bind a :class:`~repro.serve.MatMulService`
  (the client-side view: deployments, batchers, shard links, compile
  cache, tracer/recorder occupancy) and optionally the fleet's
  endpoints (the server-side view: per-server STATS scraped over
  throwaway connections, dead hosts degrading to error entries).
  :meth:`FleetMetrics.collect` returns the merged document with a
  fleet-level rollup (total executes/loads, per-engine batch mix,
  healthy-host count) computed across both sides.
* :func:`to_prometheus` — render any collected document as
  Prometheus text exposition (version 0.0.4), dependency-free: the
  container has no prometheus client, and the format is simple enough
  that a writer is smaller than the dependency gate would be.  Metric
  names are stable (``repro_*``); labels carry deployment, shard,
  server, and engine identities.

``python -m repro.obs.top`` (:mod:`repro.obs.top`) is the terminal
consumer of the same documents.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

__all__ = ["FleetMetrics", "to_prometheus"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import MatMulService


class FleetMetrics:
    """Merge client-side telemetry and scraped server STATS (see module).

    Args:
        service: the serving side whose deployments to report (optional
            — a pure scraper passes only endpoints).
        endpoints: ``[(host, port), ...]`` fleet servers to scrape for
            STATS; defaults to the service's endpoints when it has any.
        timeout_s: per-server scrape timeout (scrapes use throwaway
            connections, so a dead host costs one timeout and an error
            entry, never a wedged collection).
        auth_secret: shared secret for fleets whose servers demand the
            HMAC handshake; defaults to the service's secret when it
            has one.
    """

    def __init__(
        self,
        service: "MatMulService | None" = None,
        endpoints: list[tuple[str, int]] | None = None,
        timeout_s: float = 2.0,
        auth_secret: str | None = None,
    ) -> None:
        if service is None and not endpoints:
            raise ValueError(
                "FleetMetrics needs a service, endpoints, or both"
            )
        self.service = service
        if endpoints is None and service is not None and service.endpoints:
            endpoints = list(service.endpoints)
        if auth_secret is None and service is not None:
            auth_secret = getattr(service, "auth_secret", None)
        self.endpoints = [(str(h), int(p)) for h, p in endpoints] if endpoints else []
        self.timeout_s = float(timeout_s)
        self.auth_secret = auth_secret

    def scrape_servers(self) -> list[dict[str, Any]]:
        """Per-server STATS (``{"endpoint": ..., "error": ...}`` for dead
        hosts); empty list when no endpoints are configured."""
        if not self.endpoints:
            return []
        # Imported lazily so a purely local service can collect metrics
        # without the cluster subsystem in its import graph.
        from repro.cluster.client import ClusterClient

        client = ClusterClient(
            self.endpoints,
            timeout_s=self.timeout_s,
            auth_secret=self.auth_secret,
        )
        return client.fleet_stats()

    def collect(self) -> dict[str, Any]:
        """One merged metrics document (JSON-serializable).

        When the service carries a stage profiler and/or scraped
        servers report one in STATS, their snapshots are merged by
        addition into a fleet-wide ``"profile"`` section (client-side
        stages plus every host's ``server_execute`` in one histogram
        set — see :class:`repro.obs.profile.StageProfiler`).
        """
        doc: dict[str, Any] = {"collected_at": round(time.time(), 6)}
        if self.service is not None:
            doc["service"] = self.service.telemetry()
        servers = self.scrape_servers()
        if self.endpoints:
            doc["servers"] = servers
        doc["fleet"] = self._rollup(doc.get("service"), servers)
        snapshots = []
        profiler = getattr(self.service, "profiler", None)
        if profiler is not None:
            snapshots.append(profiler.snapshot())
        snapshots.extend(
            stats["profile"] for stats in servers if "profile" in stats
        )
        if snapshots:
            from repro.obs.profile import StageProfiler

            merged = StageProfiler.merge(snapshots)
            if merged is not None:
                doc["profile"] = merged
        return doc

    @staticmethod
    def _rollup(
        service: dict[str, Any] | None, servers: list[dict[str, Any]]
    ) -> dict[str, Any]:
        """Fleet-level aggregates across deployments and servers."""
        deployments = (service or {}).get("deployments", {})
        engine_batches: dict[str, int] = {}
        requests = products = batches = arrivals = 0
        sheds = quota_rejections = expired = 0
        arrival = served = 0.0
        shard_links = healthy_links = fallbacks = revivals = 0
        for snap in deployments.values():
            requests += snap.get("requests", 0)
            products += snap.get("products", 0)
            batches += snap.get("batches", 0)
            arrivals += snap.get("arrivals", 0)
            admission = snap.get("admission", {})
            sheds += admission.get("sheds", 0)
            quota_rejections += admission.get("quota_rejections", 0)
            expired += admission.get("expired", 0)
            arrival += snap.get("arrival_rate_rps", 0.0)
            served += snap.get("throughput_rps_windowed", 0.0)
            for engine, count in snap.get("engine", {}).get("batches", {}).items():
                engine_batches[engine] = engine_batches.get(engine, 0) + count
            for shard in snap.get("shards", {}).get("per_shard", []):
                if "healthy" in shard:
                    shard_links += 1
                    healthy_links += bool(shard["healthy"])
                    fallbacks += shard.get("local_fallbacks", 0)
                    revivals += shard.get("probe", {}).get("auto_revivals", 0)
        server_engine: dict[str, int] = {}
        executes = loads = 0
        errors = expired_skips = auth_failures = 0
        reachable = 0
        for stats in servers:
            if "error" in stats:
                continue
            reachable += 1
            executes += stats.get("executes", 0)
            loads += stats.get("loads", 0)
            errors += stats.get("errors", 0)
            expired_skips += stats.get("expired_skips", 0)
            auth_failures += stats.get("auth_failures", 0)
            for engine, count in stats.get("engine_batches", {}).items():
                server_engine[engine] = server_engine.get(engine, 0) + count
        return {
            "deployments": len(deployments),
            "requests": requests,
            "products": products,
            "batches": batches,
            # Lifetime offered load: the denominator availability SLOs
            # delta against (arrivals == requests + sheds + quota +
            # expired for a quiesced deployment).
            "arrivals": arrivals,
            "arrival_rate_rps": round(arrival, 3),
            "throughput_rps_windowed": round(served, 3),
            "engine_batches": engine_batches,
            "shed": {
                "queue_full": sheds,
                "quota": quota_rejections,
                "expired": expired,
            },
            "remote_links": {
                "total": shard_links,
                "healthy": healthy_links,
                "local_fallbacks": fallbacks,
                # Automatic link revivals (probe- or traffic-driven):
                # a counter family MetricsHistory turns into a rate.
                "revivals": revivals,
            },
            "servers": {
                "configured": len(servers),
                "reachable": reachable,
                "executes": executes,
                "loads": loads,
                "errors": errors,
                "expired_skips": expired_skips,
                "auth_failures": auth_failures,
                "engine_batches": server_engine,
            },
        }


# -- Prometheus text exposition ----------------------------------------------


def _escape(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Exposition:
    """Accumulates samples grouped per metric, then renders the text."""

    def __init__(self) -> None:
        self._metrics: dict[str, tuple[str, str, list[str]]] = {}

    def add(
        self,
        name: str,
        mtype: str,
        help_text: str,
        value: float | int,
        **labels: Any,
    ) -> None:
        if name not in self._metrics:
            self._metrics[name] = (mtype, help_text, [])
        label_text = ""
        if labels:
            body = ",".join(
                f'{key}="{_escape(val)}"' for key, val in sorted(labels.items())
            )
            label_text = "{" + body + "}"
        rounded = round(float(value), 9)
        rendered = repr(int(rounded)) if rounded == int(rounded) else repr(rounded)
        self._metrics[name][2].append(f"{name}{label_text} {rendered}")

    def add_histogram(
        self,
        name: str,
        help_text: str,
        edges: list[float],
        counts: list[int],
        total_sum: float,
        total_count: int,
        **labels: Any,
    ) -> None:
        """One Prometheus histogram: cumulative ``le`` buckets (ending in
        ``+Inf``) plus ``_sum`` / ``_count``, all samples registered
        under the base ``name`` so one TYPE/HELP header covers them —
        the shape ``histogram_quantile()`` requires."""
        if name not in self._metrics:
            self._metrics[name] = ("histogram", help_text, [])
        samples = self._metrics[name][2]

        def label_text(extra: dict[str, Any]) -> str:
            merged = {**labels, **extra}
            body = ",".join(
                f'{key}="{_escape(val)}"' for key, val in sorted(merged.items())
            )
            return "{" + body + "}" if body else ""

        cumulative = 0
        for edge, count in zip(edges, counts):
            cumulative += int(count)
            samples.append(
                f"{name}_bucket{label_text({'le': repr(float(edge))})} {cumulative}"
            )
        samples.append(
            f"{name}_bucket{label_text({'le': '+Inf'})} {int(total_count)}"
        )
        rounded = round(float(total_sum), 9)
        rendered = repr(int(rounded)) if rounded == int(rounded) else repr(rounded)
        samples.append(f"{name}_sum{label_text({})} {rendered}")
        samples.append(f"{name}_count{label_text({})} {int(total_count)}")

    def render(self) -> str:
        lines: list[str] = []
        for name, (mtype, help_text, samples) in self._metrics.items():
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"


def to_prometheus(doc: dict[str, Any]) -> str:
    """Render one :meth:`FleetMetrics.collect` document as Prometheus
    text exposition (format 0.0.4).

    Counter samples map to ``*_total`` names, point-in-time values to
    gauges, and latency digests to quantile-labelled gauge families —
    the conventional shape a Prometheus (or victoria/grafana-agent)
    scraper expects from a ``/metrics`` page.
    """
    exp = _Exposition()
    service = doc.get("service", {})
    for name, snap in service.get("deployments", {}).items():
        labels = {"deployment": name}
        exp.add(
            "repro_uptime_seconds", "gauge",
            "Deployment uptime.", snap.get("uptime_s", 0.0), **labels,
        )
        exp.add(
            "repro_requests_total", "counter",
            "Requests completed through submit().", snap.get("requests", 0), **labels,
        )
        exp.add(
            "repro_products_total", "counter",
            "Vector products computed.", snap.get("products", 0), **labels,
        )
        exp.add(
            "repro_batches_total", "counter",
            "Hardware batches dispatched.", snap.get("batches", 0), **labels,
        )
        exp.add(
            "repro_swaps_total", "counter",
            "Zero-downtime matrix swaps.", snap.get("swaps", 0), **labels,
        )
        exp.add(
            "repro_throughput_rps", "gauge",
            "Lifetime products per second.", snap.get("throughput_rps", 0.0), **labels,
        )
        exp.add(
            "repro_throughput_windowed_rps", "gauge",
            "Windowed products per second.",
            snap.get("throughput_rps_windowed", 0.0), **labels,
        )
        exp.add(
            "repro_arrival_rate_rps", "gauge",
            "Windowed request arrival rate.",
            snap.get("arrival_rate_rps", 0.0), **labels,
        )
        exp.add(
            "repro_lane_occupancy", "gauge",
            "Mean fraction of batch lanes filled.",
            snap.get("lane_occupancy", 0.0), **labels,
        )
        latency = snap.get("latency_s", {})
        for key, quantile in (("p50", "0.5"), ("p99", "0.99"), ("p99_9", "0.999")):
            if key in latency:
                exp.add(
                    "repro_request_latency_seconds", "gauge",
                    "End-to-end request latency quantiles.",
                    latency[key], quantile=quantile, **labels,
                )
        admission = snap.get("admission", {})
        if admission:
            for reason, count in (
                ("queue_full", admission.get("sheds", 0)),
                ("quota", admission.get("quota_rejections", 0)),
                ("expired", admission.get("expired", 0)),
            ):
                exp.add(
                    "repro_requests_shed_total", "counter",
                    "Requests shed by admission control or deadline expiry.",
                    count, reason=reason, **labels,
                )
            for tenant, per_reason in admission.get("per_tenant", {}).items():
                for reason, count in per_reason.items():
                    exp.add(
                        "repro_tenant_requests_shed_total", "counter",
                        "Per-tenant shed breakdown by reason.",
                        count, tenant=tenant, reason=reason, **labels,
                    )
        for engine, count in snap.get("engine", {}).get("batches", {}).items():
            exp.add(
                "repro_engine_batches_total", "counter",
                "Hardware batches per resolved engine.",
                count, engine=engine, **labels,
            )
        for shard in snap.get("shards", {}).get("per_shard", []):
            shard_labels = {**labels, "shard": shard.get("shard", 0)}
            exp.add(
                "repro_shard_busy_seconds", "counter",
                "Cumulative shard execution time.",
                shard.get("busy_s", 0.0), **shard_labels,
            )
            exp.add(
                "repro_shard_calls_total", "counter",
                "Batches executed by the shard.",
                shard.get("calls", 0), **shard_labels,
            )
            if "healthy" in shard:
                exp.add(
                    "repro_shard_healthy", "gauge",
                    "1 when the shard's remote link is healthy.",
                    int(bool(shard["healthy"])),
                    endpoint=shard.get("endpoint", ""), **shard_labels,
                )
                exp.add(
                    "repro_shard_local_fallbacks_total", "counter",
                    "Batches served locally because the link was down.",
                    shard.get("local_fallbacks", 0), **shard_labels,
                )
    cache = service.get("cache")
    if cache:
        for key in ("hits", "kernel_hits", "disk_hits", "misses"):
            exp.add(
                "repro_compile_cache_lookups_total", "counter",
                "Compile cache lookups by outcome.",
                cache.get(key, 0), outcome=key,
            )
    obs = service.get("observability", {})
    if "tracer" in obs:
        exp.add(
            "repro_tracer_spans_total", "counter",
            "Spans recorded by the service tracer.",
            obs["tracer"].get("recorded", 0),
        )
    if "flight_recorder" in obs:
        exp.add(
            "repro_flight_recorder_events_total", "counter",
            "Events recorded by the flight recorder.",
            obs["flight_recorder"].get("recorded", 0),
        )
    for stats in doc.get("servers", []):
        endpoint = stats.get("endpoint", "")
        if "error" in stats:
            exp.add(
                "repro_server_up", "gauge",
                "1 when the shard server answered STATS.", 0, endpoint=endpoint,
            )
            continue
        labels = {"endpoint": endpoint, "server": stats.get("name", "")}
        exp.add(
            "repro_server_up", "gauge",
            "1 when the shard server answered STATS.", 1, endpoint=endpoint,
        )
        exp.add(
            "repro_server_uptime_seconds", "gauge",
            "Shard server uptime.", stats.get("uptime_s", 0.0), **labels,
        )
        exp.add(
            "repro_server_executes_total", "counter",
            "Batches executed by the server.", stats.get("executes", 0), **labels,
        )
        exp.add(
            "repro_server_loads_total", "counter",
            "Kernel LOADs answered by the server.", stats.get("loads", 0), **labels,
        )
        exp.add(
            "repro_server_errors_total", "counter",
            "Request errors answered by the server.", stats.get("errors", 0), **labels,
        )
        exp.add(
            "repro_server_expired_skips_total", "counter",
            "Batches skipped because their deadline budget expired in queue.",
            stats.get("expired_skips", 0), **labels,
        )
        exp.add(
            "repro_server_auth_failures_total", "counter",
            "Connections rejected by the HELLO auth handshake.",
            stats.get("auth_failures", 0), **labels,
        )
        for engine, count in stats.get("engine_batches", {}).items():
            exp.add(
                "repro_server_engine_batches_total", "counter",
                "Server batches per resolved engine.", count,
                engine=engine, **labels,
            )
    fleet = doc.get("fleet", {})
    if fleet:
        links = fleet.get("remote_links", {})
        exp.add(
            "repro_fleet_remote_links", "gauge",
            "Remote shard links across all deployments.", links.get("total", 0),
        )
        exp.add(
            "repro_fleet_remote_links_healthy", "gauge",
            "Healthy remote shard links.", links.get("healthy", 0),
        )
        exp.add(
            "repro_fleet_servers_reachable", "gauge",
            "Fleet servers that answered the scrape.",
            fleet.get("servers", {}).get("reachable", 0),
        )
        for reason, count in fleet.get("shed", {}).items():
            exp.add(
                "repro_fleet_requests_shed_total", "counter",
                "Requests shed across all deployments, by reason.",
                count, reason=reason,
            )
    profile = doc.get("profile", {})
    for entry in profile.get("stages", []):
        exp.add_histogram(
            "repro_stage_duration_seconds",
            "Per-stage serving durations (fleet-merged histograms).",
            profile.get("edges", []),
            entry.get("counts", []),
            entry.get("sum", 0.0),
            entry.get("count", 0),
            stage=entry.get("stage", ""),
            variant=entry.get("variant", ""),
        )
    for status in doc.get("slo", []):
        slo_label = {"slo": status.get("slo", "")}
        exp.add(
            "repro_slo_error_budget_remaining", "gauge",
            "Fraction of the SLO error budget left over the slow window.",
            status.get("error_budget_remaining", 1.0), **slo_label,
        )
        for window in ("fast", "slow"):
            burn = status.get(f"burn_{window}")
            if burn is not None:
                exp.add(
                    "repro_slo_burn_rate", "gauge",
                    "Error-budget burn rate (error fraction / budget).",
                    burn, window=window, **slo_label,
                )
        exp.add(
            "repro_slo_firing", "gauge",
            "1 while the SLO's multi-window burn alert is firing.",
            int(bool(status.get("firing"))), **slo_label,
        )
    return exp.render()
