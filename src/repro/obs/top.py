"""``python -m repro.obs.top`` — a terminal view of a shard fleet.

The ``top(1)`` of the cluster: scrape every fleet server's STATS over
throwaway connections (the same :meth:`ClusterClient.fleet_stats` path
telemetry uses, safe to run while deployments stream batches) and
render one table per collection — one-shot by default, a refreshing
watch loop with ``--watch``:

.. code-block:: console

    $ python -m repro.obs.top --endpoints hostA:9401,hostB:9401,hostC:9401
    FLEET  3/3 up   executes 4231   loads 6   errors 0
    ENDPOINT          SERVER     UP  UPTIME    LOADS  EXECUTES  ENGINES
    hostA:9401        shard-a    up  633.2s        2      1411  fused:1411
    hostB:9401        shard-b    up  633.1s        2      1410  fused:1410
    hostC:9401        shard-c    up  633.0s        2      1410  fused:1410

``--format prom`` emits the Prometheus text exposition instead
(:func:`repro.obs.metrics.to_prometheus`), ``--format json`` the raw
merged document — so the same command backs a human, a scraper, and a
script.  Exit status is 0 when every server answered, 1 when any
scrape failed (watchable by a cron probe).

Watch mode keeps a :class:`~repro.obs.history.MetricsHistory` across
iterations, which buys two things a one-shot scrape cannot produce:

* an **EXEC/s** column (and a fleet-wide exec/s on the FLEET line) —
  true per-endpoint execute rates over the trailing watch window;
* optional **SLO status lines** — ``--slo-availability 0.999`` runs a
  server-side availability SLO (errors + expired skips over executes)
  through the burn-rate engine every collection and prints
  ``SLO <name> OK|FIRING`` lines under the table (``--slo-fast`` /
  ``--slo-slow`` / ``--slo-threshold`` tune the rule).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.obs.history import MetricsHistory
from repro.obs.metrics import FleetMetrics, to_prometheus

__all__ = ["exec_rates", "main", "parse_endpoints", "render_table"]


def parse_endpoints(text: str) -> list[tuple[str, int]]:
    """``"hostA:9401,hostB:9402"`` → ``[("hostA", 9401), ...]``."""
    endpoints: list[tuple[str, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ValueError(f"endpoint {part!r} is not host:port")
        try:
            endpoints.append((host, int(port)))
        except ValueError as exc:
            raise ValueError(f"endpoint {part!r} has a non-integer port") from exc
    if not endpoints:
        raise ValueError("no endpoints given")
    return endpoints


def _engines(stats: dict[str, Any]) -> str:
    batches = stats.get("engine_batches", {})
    if not batches:
        return "-"
    return ",".join(f"{k}:{v}" for k, v in sorted(batches.items()))


def exec_rates(history: MetricsHistory) -> dict[str, float]:
    """Per-endpoint execute rates (per second) over the history span.

    ``{"hostA:9401": 12.5, ...}`` from the first and last samples in
    the ring; empty with fewer than two samples (a one-shot run has no
    rates).  Down endpoints simply carry no counter and are skipped.
    """
    entries = history.samples()
    if len(entries) < 2:
        return {}
    span = entries[-1]["ts"] - entries[0]["ts"]
    if span <= 0:
        return {}

    def per_endpoint(entry: dict[str, Any]) -> dict[str, float]:
        return {
            stats["endpoint"]: float(stats.get("executes", 0))
            for stats in entry["doc"].get("servers", [])
            if "error" not in stats and "endpoint" in stats
        }

    first, last = per_endpoint(entries[0]), per_endpoint(entries[-1])
    return {
        endpoint: max(0.0, executes - first.get(endpoint, 0.0)) / span
        for endpoint, executes in sorted(last.items())
    }


def render_table(
    doc: dict[str, Any], rates: dict[str, float] | None = None
) -> str:
    """The human rendering of one collected metrics document.

    ``rates`` (from :func:`exec_rates`) adds the EXEC/s column and the
    fleet-wide exec/s figure; SLO statuses attached to the document
    (``doc["slo"]``) render as trailing ``SLO ...`` lines.
    """
    servers = doc.get("servers", [])
    fleet = doc.get("fleet", {}).get("servers", {})
    fleet_line = (
        f"FLEET  {fleet.get('reachable', 0)}/{fleet.get('configured', 0)} up"
        f"   executes {fleet.get('executes', 0)}"
        f"   loads {fleet.get('loads', 0)}"
    )
    if rates:
        fleet_line += f"   exec/s {sum(rates.values()):.1f}"
    lines = [fleet_line]
    header = ["ENDPOINT", "SERVER", "UP", "UPTIME", "LOADS", "EXECUTES"]
    if rates is not None:
        header.append("EXEC/s")
    header.append("ENGINES")
    rows = [tuple(header)]
    for stats in servers:
        endpoint = stats.get("endpoint", "?")
        if "error" in stats:
            row = [endpoint, "-", "DOWN", "-", "-", "-"]
            if rates is not None:
                row.append("-")
            row.append(stats["error"][:40])
            rows.append(tuple(row))
            continue
        row = [
            endpoint,
            str(stats.get("name", "-")),
            "up",
            f"{stats.get('uptime_s', 0.0):.1f}s",
            str(stats.get("loads", 0)),
            str(stats.get("executes", 0)),
        ]
        if rates is not None:
            rate = rates.get(endpoint)
            row.append(f"{rate:.1f}" if rate is not None else "-")
        row.append(_engines(stats))
        rows.append(tuple(row))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    for status in doc.get("slo", []):
        state = "OK"
        if status.get("firing"):
            stage = status.get("offending_stage")
            state = f"FIRING stage={stage}" if stage else "FIRING"
        burn_fast = status.get("burn_fast")
        burn_slow = status.get("burn_slow")
        lines.append(
            f"SLO {status.get('slo', '?')}  {state}"
            f"   burn fast={burn_fast if burn_fast is not None else '-'}"
            f" slow={burn_slow if burn_slow is not None else '-'}"
            f"   budget left {status.get('error_budget_remaining', 1.0):.1%}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.top",
        description="Scrape and render shard-fleet metrics (one-shot or watch).",
    )
    parser.add_argument(
        "--endpoints",
        required=True,
        help="comma-separated host:port list of fleet servers to scrape",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="output form: human table (default), merged JSON document, "
        "or Prometheus text exposition",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-collect and re-render every SECONDS (one-shot when omitted)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="with --watch: stop after this many collections "
        "(default: until interrupted)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        help="per-server scrape timeout in seconds (default 2.0)",
    )
    parser.add_argument(
        "--slo-availability",
        type=float,
        default=None,
        metavar="TARGET",
        help="run a server-side availability SLO (errors + expired skips "
        "over executes) at this target, e.g. 0.999; statuses render as "
        "SLO lines (table), doc['slo'] (json), repro_slo_* (prom)",
    )
    parser.add_argument(
        "--slo-fast",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="burn-rate fast window (default 300)",
    )
    parser.add_argument(
        "--slo-slow",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="burn-rate slow window (default 3600)",
    )
    parser.add_argument(
        "--slo-threshold",
        type=float,
        default=10.0,
        help="burn rate both windows must exceed to fire (default 10)",
    )
    args = parser.parse_args(argv)
    try:
        endpoints = parse_endpoints(args.endpoints)
    except ValueError as exc:
        parser.error(str(exc))

    metrics = FleetMetrics(endpoints=endpoints, timeout_s=args.timeout)
    history = MetricsHistory(metrics)
    engine = None
    if args.slo_availability is not None:
        from repro.obs.slo import AvailabilitySLO, BurnRatePolicy, SLOEngine

        engine = SLOEngine(
            history,
            [
                AvailabilitySLO(
                    "fleet-availability",
                    target=args.slo_availability,
                    bad_paths=(
                        "fleet.servers.errors",
                        "fleet.servers.expired_skips",
                    ),
                    total_path="fleet.servers.executes",
                )
            ],
            policy=BurnRatePolicy(
                fast_window_s=args.slo_fast,
                slow_window_s=args.slo_slow,
                threshold=args.slo_threshold,
            ),
        )
    iterations = 1 if args.watch is None else args.count
    all_up = True
    done = 0
    try:
        while iterations is None or done < iterations:
            doc = history.sample()["doc"]
            if engine is not None:
                engine.evaluate()
                engine.attach(doc)
            rates = exec_rates(history) if args.watch is not None else None
            if args.format == "json":
                print(json.dumps(doc, indent=2))
            elif args.format == "prom":
                print(to_prometheus(doc), end="")
            else:
                print(render_table(doc, rates=rates))
            sys.stdout.flush()
            all_up = all(
                "error" not in s for s in doc.get("servers", [])
            ) and bool(doc.get("servers"))
            done += 1
            if args.watch is not None and (iterations is None or done < iterations):
                time.sleep(args.watch)
                print()
    except KeyboardInterrupt:
        pass
    return 0 if all_up else 1


if __name__ == "__main__":
    raise SystemExit(main())
