"""``python -m repro.obs.top`` — a terminal view of a shard fleet.

The ``top(1)`` of the cluster: scrape every fleet server's STATS over
throwaway connections (the same :meth:`ClusterClient.fleet_stats` path
telemetry uses, safe to run while deployments stream batches) and
render one table per collection — one-shot by default, a refreshing
watch loop with ``--watch``:

.. code-block:: console

    $ python -m repro.obs.top --endpoints hostA:9401,hostB:9401,hostC:9401
    FLEET  3/3 up   executes 4231   loads 6   errors 0
    ENDPOINT          SERVER     UP  UPTIME    LOADS  EXECUTES  ENGINES
    hostA:9401        shard-a    up  633.2s        2      1411  fused:1411
    hostB:9401        shard-b    up  633.1s        2      1410  fused:1410
    hostC:9401        shard-c    up  633.0s        2      1410  fused:1410

``--format prom`` emits the Prometheus text exposition instead
(:func:`repro.obs.metrics.to_prometheus`), ``--format json`` the raw
merged document — so the same command backs a human, a scraper, and a
script.  Exit status is 0 when every server answered, 1 when any
scrape failed (watchable by a cron probe).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.obs.metrics import FleetMetrics, to_prometheus

__all__ = ["main", "parse_endpoints", "render_table"]


def parse_endpoints(text: str) -> list[tuple[str, int]]:
    """``"hostA:9401,hostB:9402"`` → ``[("hostA", 9401), ...]``."""
    endpoints: list[tuple[str, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ValueError(f"endpoint {part!r} is not host:port")
        try:
            endpoints.append((host, int(port)))
        except ValueError as exc:
            raise ValueError(f"endpoint {part!r} has a non-integer port") from exc
    if not endpoints:
        raise ValueError("no endpoints given")
    return endpoints


def _engines(stats: dict[str, Any]) -> str:
    batches = stats.get("engine_batches", {})
    if not batches:
        return "-"
    return ",".join(f"{k}:{v}" for k, v in sorted(batches.items()))


def render_table(doc: dict[str, Any]) -> str:
    """The human rendering of one collected metrics document."""
    servers = doc.get("servers", [])
    fleet = doc.get("fleet", {}).get("servers", {})
    lines = [
        f"FLEET  {fleet.get('reachable', 0)}/{fleet.get('configured', 0)} up"
        f"   executes {fleet.get('executes', 0)}"
        f"   loads {fleet.get('loads', 0)}"
    ]
    rows = [("ENDPOINT", "SERVER", "UP", "UPTIME", "LOADS", "EXECUTES", "ENGINES")]
    for stats in servers:
        if "error" in stats:
            rows.append(
                (stats.get("endpoint", "?"), "-", "DOWN", "-", "-", "-",
                 stats["error"][:40])
            )
            continue
        rows.append(
            (
                stats.get("endpoint", "?"),
                str(stats.get("name", "-")),
                "up",
                f"{stats.get('uptime_s', 0.0):.1f}s",
                str(stats.get("loads", 0)),
                str(stats.get("executes", 0)),
                _engines(stats),
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.top",
        description="Scrape and render shard-fleet metrics (one-shot or watch).",
    )
    parser.add_argument(
        "--endpoints",
        required=True,
        help="comma-separated host:port list of fleet servers to scrape",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="output form: human table (default), merged JSON document, "
        "or Prometheus text exposition",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-collect and re-render every SECONDS (one-shot when omitted)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="with --watch: stop after this many collections "
        "(default: until interrupted)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        help="per-server scrape timeout in seconds (default 2.0)",
    )
    args = parser.parse_args(argv)
    try:
        endpoints = parse_endpoints(args.endpoints)
    except ValueError as exc:
        parser.error(str(exc))

    metrics = FleetMetrics(endpoints=endpoints, timeout_s=args.timeout)
    iterations = 1 if args.watch is None else args.count
    all_up = True
    done = 0
    try:
        while iterations is None or done < iterations:
            doc = metrics.collect()
            if args.format == "json":
                print(json.dumps(doc, indent=2))
            elif args.format == "prom":
                print(to_prometheus(doc), end="")
            else:
                print(render_table(doc))
            sys.stdout.flush()
            all_up = all(
                "error" not in s for s in doc.get("servers", [])
            ) and bool(doc.get("servers"))
            done += 1
            if args.watch is not None and (iterations is None or done < iterations):
                time.sleep(args.watch)
                print()
    except KeyboardInterrupt:
        pass
    return 0 if all_up else 1


if __name__ == "__main__":
    raise SystemExit(main())
