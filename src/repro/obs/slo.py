"""Declarative SLOs with SRE-style multi-window burn-rate alerting.

An SLO here is a *target fraction of good service* over time —
"99.9% of samples keep p99 submit latency under 25 ms", "99.9% of
offered requests are neither shed nor expired" — and the quantity that
matters operationally is how fast the error budget (the allowed
``1 - target`` bad fraction) is being spent.  **Burn rate** is that
speed, normalized: observed error fraction divided by the budget, so
burn 1.0 spends exactly the budget over the objective window and burn
10 spends it ten times too fast.

Alerting follows the multi-window rule from the SRE workbook: page only
when the burn rate exceeds the threshold over **both** a fast window
(default 5 minutes — catches the onset quickly) *and* a slow window
(default 1 hour — proves it is sustained, not a blip).  The alert
clears when the fast window recovers.  Both windows and the threshold
are injectable — the benchmark runs them in subseconds on a fake clock.

:class:`SLOEngine` evaluates a set of SLOs against a
:class:`~repro.obs.history.MetricsHistory` (typically as an
``on_sample`` listener, so every fresh collection re-evaluates), emits
``slo_burn`` / ``slo_ok`` transition events into the flight recorder —
the ``slo_burn`` event carries the **offending pipeline stage**,
attributed by diffing the stage profiler's histograms across the fast
window — and publishes per-SLO status the Prometheus exposition renders
as ``repro_slo_error_budget_remaining`` and ``repro_slo_burn_rate``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.history import MetricsHistory
from repro.obs.profile import STAGE_SPECIFICITY, StageProfiler

__all__ = ["AvailabilitySLO", "BurnRatePolicy", "LatencySLO", "SLOEngine"]

#: Default bad-event counter paths for :class:`AvailabilitySLO`: every
#: way the service refuses or abandons an offered request.
DEFAULT_BAD_PATHS = (
    "fleet.shed.queue_full",
    "fleet.shed.quota",
    "fleet.shed.expired",
)


class BurnRatePolicy:
    """The multi-window rule: windows and the shared burn threshold.

    ``fast_window_s`` / ``slow_window_s`` default to the classic
    5 m / 1 h pairing; ``threshold`` is the burn rate both windows must
    exceed to fire.  All three are plain floats so tests and benchmarks
    shrink them to subsecond scales under a fake clock.
    """

    def __init__(
        self,
        fast_window_s: float = 300.0,
        slow_window_s: float = 3600.0,
        threshold: float = 10.0,
    ) -> None:
        if not 0 < fast_window_s <= slow_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast_window_s <= slow_window_s, "
                f"got {fast_window_s} / {slow_window_s}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.threshold = float(threshold)


class _SLO:
    """Shared shape: a name, a target, and an error-fraction query."""

    kind = "slo"

    def __init__(self, name: str, target: float) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.name = str(name)
        self.target = float(target)

    @property
    def budget(self) -> float:
        """The allowed bad fraction: ``1 - target``."""
        return 1.0 - self.target

    def error_fraction(
        self, history: MetricsHistory, window_s: float
    ) -> float | None:
        """Observed bad fraction over the trailing window, or ``None``
        when the history cannot answer yet (too few samples)."""
        raise NotImplementedError


class LatencySLO(_SLO):
    """"``point`` submit latency stays under ``threshold_s``".

    Each history sample is judged good or bad by its instantaneous
    latency quantile (``deployment=None`` takes the worst across
    deployments); the error fraction over a window is the bad-sample
    fraction.  ``target`` is the required good fraction.
    """

    kind = "latency"

    def __init__(
        self,
        name: str,
        threshold_s: float,
        target: float = 0.999,
        point: str = "p99",
        deployment: str | None = None,
    ) -> None:
        super().__init__(name, target)
        if threshold_s <= 0:
            raise ValueError(f"threshold_s must be > 0, got {threshold_s}")
        self.threshold_s = float(threshold_s)
        self.point = str(point)
        self.deployment = deployment

    def error_fraction(
        self, history: MetricsHistory, window_s: float
    ) -> float | None:
        points = history.percentile_series(
            deployment=self.deployment, point=self.point, window_s=window_s
        )
        if not points:
            return None
        bad = sum(1 for _, value in points if value > self.threshold_s)
        return bad / len(points)


class AvailabilitySLO(_SLO):
    """"The shed+expired fraction of offered requests stays under
    ``1 - target``".

    Counter-delta math over the history: bad events are the increases
    of ``bad_paths`` over the window, the denominator the increase of
    ``total_path`` (offered load).  Zero offered load means zero error
    — an idle fleet is not failing.  The paths are injectable so the
    same class expresses a server-side view (``fleet.servers.errors``
    over ``fleet.servers.executes``) for scrape-only consumers like
    ``repro.obs.top``.
    """

    kind = "availability"

    def __init__(
        self,
        name: str,
        target: float = 0.999,
        bad_paths: tuple[str, ...] = DEFAULT_BAD_PATHS,
        total_path: str = "fleet.arrivals",
    ) -> None:
        super().__init__(name, target)
        if not bad_paths:
            raise ValueError("bad_paths must name at least one counter")
        self.bad_paths = tuple(bad_paths)
        self.total_path = str(total_path)

    def error_fraction(
        self, history: MetricsHistory, window_s: float
    ) -> float | None:
        total = history.delta(self.total_path, window_s)
        if total is None:
            return None
        if total <= 0:
            return 0.0
        bad = 0.0
        for path in self.bad_paths:
            increase = history.delta(path, window_s)
            if increase is not None:
                bad += increase
        return min(1.0, bad / total)


class SLOEngine:
    """Evaluate SLOs over a history; emit transitions; expose status.

    Args:
        history: the :class:`MetricsHistory` to read (evaluation uses
            its clock, so fake-clock histories evaluate deterministically).
        slos: the objectives; each needs a distinct ``name``.
        policy: the shared :class:`BurnRatePolicy` (default 5 m / 1 h,
            burn 10).
        recorder: optional flight recorder receiving ``slo_burn`` /
            ``slo_ok`` events on firing transitions — *transitions*
            only, one event per edge, so a sustained burn is one event
            and a flapping SLO is legible as alternating pairs.

    Use as a sampler listener (``history.add_listener(lambda _:
    engine.evaluate())``) or call :meth:`evaluate` on your own cadence.
    """

    def __init__(
        self,
        history: MetricsHistory,
        slos: list[_SLO],
        policy: BurnRatePolicy | None = None,
        recorder: Any = None,
    ) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"SLO names must be unique, got {names}")
        self.history = history
        self.slos = list(slos)
        self.policy = policy if policy is not None else BurnRatePolicy()
        self.recorder = recorder
        self._firing: dict[str, bool] = {}
        self._statuses: list[dict[str, Any]] = []

    # -- evaluation ----------------------------------------------------------

    @staticmethod
    def _burn(fraction: float | None, budget: float) -> float | None:
        if fraction is None:
            return None
        return fraction / budget

    def evaluate(self) -> list[dict[str, Any]]:
        """Re-evaluate every SLO against the history now.

        Returns (and retains, see :attr:`statuses`) one status dict per
        SLO: burn rates over both windows, error budget remaining over
        the slow window, firing state, and — while firing — the
        offending stage from the profiler history.
        """
        policy = self.policy
        statuses: list[dict[str, Any]] = []
        for slo in self.slos:
            fast = slo.error_fraction(self.history, policy.fast_window_s)
            slow = slo.error_fraction(self.history, policy.slow_window_s)
            burn_fast = self._burn(fast, slo.budget)
            burn_slow = self._burn(slow, slo.budget)
            was_firing = self._firing.get(slo.name, False)
            if was_firing:
                # Clear when the fast window recovers: the slow window
                # keeps the stale burn long after mitigation, and
                # holding the page open on it teaches operators to
                # ignore it.
                firing = burn_fast is not None and burn_fast > policy.threshold
            else:
                firing = (
                    burn_fast is not None
                    and burn_slow is not None
                    and burn_fast > policy.threshold
                    and burn_slow > policy.threshold
                )
            remaining = 1.0
            if slow is not None:
                remaining = max(0.0, min(1.0, 1.0 - slow / slo.budget))
            stage = (
                self.offending_stage(policy.fast_window_s) if firing else None
            )
            status = {
                "slo": slo.name,
                "kind": slo.kind,
                "target": slo.target,
                "burn_fast": round(burn_fast, 6) if burn_fast is not None else None,
                "burn_slow": round(burn_slow, 6) if burn_slow is not None else None,
                "error_budget_remaining": round(remaining, 6),
                "firing": firing,
                "offending_stage": stage,
                "fast_window_s": policy.fast_window_s,
                "slow_window_s": policy.slow_window_s,
                "threshold": policy.threshold,
            }
            statuses.append(status)
            if firing != was_firing and self.recorder is not None:
                if firing:
                    self.recorder.record(
                        "slo_burn",
                        slo=slo.name,
                        slo_kind=slo.kind,
                        burn_fast=status["burn_fast"],
                        burn_slow=status["burn_slow"],
                        error_budget_remaining=status["error_budget_remaining"],
                        threshold=policy.threshold,
                        stage=stage,
                    )
                else:
                    self.recorder.record(
                        "slo_ok",
                        slo=slo.name,
                        slo_kind=slo.kind,
                        burn_fast=status["burn_fast"],
                        error_budget_remaining=status["error_budget_remaining"],
                    )
            self._firing[slo.name] = firing
        self._statuses = statuses
        return statuses

    def listener(self) -> Callable[[dict[str, Any]], None]:
        """An ``on_sample`` callback re-evaluating after every sample."""
        return lambda _entry: self.evaluate()

    @property
    def statuses(self) -> list[dict[str, Any]]:
        """The most recent :meth:`evaluate` result (empty before one)."""
        return list(self._statuses)

    def attach(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Merge the latest statuses into a collected document (under
        ``"slo"``) so ``to_prometheus`` renders the SLO families."""
        doc["slo"] = self.statuses
        return doc

    # -- stage attribution ---------------------------------------------------

    def offending_stage(self, window_s: float) -> str | None:
        """Which pipeline stage a fresh regression lives in.

        Diffs the merged profiler histograms carried in the history
        samples: each stage's *total recorded seconds* over the trailing
        window, minus the same total over the preceding equal-length
        window, is its regression score.  Nested stages move together —
        ``shard_dispatch`` contains ``wire`` contains
        ``server_execute`` — so among stages whose scores are within
        25% of the best, the most *specific* stage wins
        (:data:`~repro.obs.profile.STAGE_SPECIFICITY`): a chaos-delayed
        link is attributed to ``wire``, a slow kernel to
        ``server_execute``.  ``None`` without profile data.
        """
        entries = self.history.samples(2.0 * window_s)
        if len(entries) < 2:
            return None
        now = entries[-1]["ts"]
        recent_start = None
        for entry in entries:
            if entry["ts"] >= now - window_s:
                recent_start = entry
                break
        if recent_start is None or recent_start is entries[-1]:
            return None

        def totals(entry: dict[str, Any]) -> dict[str, dict[str, float]]:
            return StageProfiler.stage_totals(entry["doc"].get("profile"))

        first, mid, last = totals(entries[0]), totals(recent_start), totals(entries[-1])
        scores: dict[str, float] = {}
        for stage, end in last.items():
            recent = end["sum"] - mid.get(stage, {"sum": 0.0})["sum"]
            previous = (
                mid.get(stage, {"sum": 0.0})["sum"]
                - first.get(stage, {"sum": 0.0})["sum"]
            )
            scores[stage] = recent - previous
        positive = {s: v for s, v in scores.items() if v > 0}
        if not positive:
            return None
        best = max(positive.values())
        contenders = [s for s, v in positive.items() if v >= 0.75 * best]
        return max(
            contenders,
            key=lambda s: (STAGE_SPECIFICITY.get(s, 1), positive[s]),
        )
