"""Signed-weight handling via positive/negative matrix splitting.

"An easy way to implement signed weights is to separate the positive and
negative terms of the b vector into two separate unsigned vectors, and
simply subtract the two resultant streams.  Because the number of ones in
the two matrices is conserved by this transform, it makes almost no impact
on the total area, and adds a single cycle to the latency." (Sec. III)

Two recoding schemes build the ``(P, N)`` pair:

* ``"pn"`` — plain split: ``P = max(V, 0)``, ``N = max(-V, 0)``.
* ``"csd"`` — CSD recoding of both split matrices (Sec. V): positive CSD
  digits of ``P`` stay in ``P``; negative digits transfer to ``N`` (and
  vice versa), so ``V == P - N`` still holds with fewer total set bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bits import matrix_popcount, min_bits_unsigned
from repro.core.csd import csd_split_unsigned, naf_split_unsigned

__all__ = ["SplitMatrix", "pn_split", "split_matrix", "RECODING_SCHEMES"]

RECODING_SCHEMES = ("pn", "csd", "naf")
"""``pn`` and ``csd`` are the paper's schemes (Secs. III and V); ``naf``
is this reproduction's extension — the optimal non-adjacent form, a lower
bound on any chain recoder's weight."""


@dataclass(frozen=True)
class SplitMatrix:
    """An integer matrix expressed as ``positive - negative``.

    Attributes:
        positive: unsigned matrix of the positive terms.
        negative: unsigned matrix of the negative terms.
        width: unsigned bit width sufficient for every entry of both planes.
        scheme: the recoding that produced the pair (``"pn"`` or ``"csd"``).
    """

    positive: np.ndarray
    negative: np.ndarray
    width: int
    scheme: str

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self.positive.shape)

    @property
    def rows(self) -> int:
        return int(self.positive.shape[0])

    @property
    def cols(self) -> int:
        return int(self.positive.shape[1])

    def reconstruct(self) -> np.ndarray:
        """The original signed matrix ``positive - negative``."""
        return self.positive.astype(np.int64) - self.negative.astype(np.int64)

    def total_ones(self) -> int:
        """Combined popcount of both planes — the hardware cost driver."""
        return matrix_popcount(self.positive) + matrix_popcount(self.negative)


def _required_width(positive: np.ndarray, negative: np.ndarray) -> int:
    hi = 0
    if positive.size:
        hi = max(hi, int(positive.max()), int(negative.max()))
    return min_bits_unsigned(hi)


def pn_split(matrix: np.ndarray) -> SplitMatrix:
    """Split a signed matrix into unsigned positive/negative planes."""
    arr = np.asarray(matrix, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    positive = np.where(arr > 0, arr, 0)
    negative = np.where(arr < 0, -arr, 0)
    return SplitMatrix(
        positive=positive,
        negative=negative,
        width=_required_width(positive, negative),
        scheme="pn",
    )


def split_matrix(
    matrix: np.ndarray,
    scheme: str = "pn",
    rng: np.random.Generator | None = None,
) -> SplitMatrix:
    """Build the ``(P, N)`` pair for a signed matrix under ``scheme``.

    For ``"csd"``, the paper's procedure is followed: "we perform a CSD
    transform on both the positive and negative weight matrices.  Positive
    elements that result from CSD remain in the original matrix, and
    negative elements are transferred to the opposite weight matrix."
    ``"naf"`` applies the same procedure with the optimal non-adjacent
    form instead of Listing 1.
    """
    if scheme not in RECODING_SCHEMES:
        raise ValueError(f"unknown recoding scheme {scheme!r}; use one of {RECODING_SCHEMES}")
    base = pn_split(matrix)
    if scheme == "pn":
        return base
    if scheme == "csd":
        if rng is None:
            rng = np.random.default_rng(0)
        recoded_p = csd_split_unsigned(base.positive, base.width, rng)
        recoded_n = csd_split_unsigned(base.negative, base.width, rng)
    else:
        recoded_p = naf_split_unsigned(base.positive, base.width)
        recoded_n = naf_split_unsigned(base.negative, base.width)
    positive = recoded_p.positive + recoded_n.negative
    negative = recoded_p.negative + recoded_n.positive
    return SplitMatrix(
        positive=positive,
        negative=negative,
        width=_required_width(positive, negative),
        scheme=scheme,
    )
