"""Plan and report serialization (JSON-compatible dictionaries).

Compiling a large matrix (CSD recoding + census) is the expensive step of
a deployment flow; serialization lets a build system compile once, store
the plan next to the generated RTL, and reload it for later analysis
without recompiling — the same role a synthesis checkpoint plays in the
paper's Vivado flow.

Two content digests make the stored artifacts addressable:

* :func:`matrix_digest` — SHA-256 over the signed matrix's shape and
  canonical int64 bytes, identifying *what* is being compiled;
* :func:`plan_fingerprint` — SHA-256 over the canonical JSON form of a
  plan, identifying the *result* of a compilation (planes, widths, tree
  style).  Two plans with equal fingerprints build identical circuits.

The serve layer's compile cache (:mod:`repro.serve.cache`) keys on the
matrix digest plus compile options; :attr:`CompiledCircuit.digest
<repro.hwsim.builder.CompiledCircuit.digest>` exposes the plan
fingerprint on compiled netlists.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.core.plan import MatrixPlan
from repro.core.split import SplitMatrix
from repro.core.stats import CircuitCensus, PlaneCensus

__all__ = [
    "plan_to_dict",
    "plan_from_dict",
    "census_to_dict",
    "census_from_dict",
    "matrix_digest",
    "plan_fingerprint",
]

_FORMAT_VERSION = 1


def plan_to_dict(plan: MatrixPlan) -> dict[str, Any]:
    """JSON-compatible representation of a compilation plan."""
    return {
        "format_version": _FORMAT_VERSION,
        "positive": plan.split.positive.tolist(),
        "negative": plan.split.negative.tolist(),
        "plane_width": plan.split.width,
        "scheme": plan.split.scheme,
        "input_width": plan.input_width,
        "nominal_weight_width": plan.nominal_weight_width,
        "result_width": plan.result_width,
        "tree_style": plan.tree_style,
    }


def plan_from_dict(data: dict[str, Any]) -> MatrixPlan:
    """Rebuild a plan from :func:`plan_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version: {version!r}")
    split = SplitMatrix(
        positive=np.asarray(data["positive"], dtype=np.int64),
        negative=np.asarray(data["negative"], dtype=np.int64),
        width=int(data["plane_width"]),
        scheme=str(data["scheme"]),
    )
    return MatrixPlan(
        split=split,
        input_width=int(data["input_width"]),
        nominal_weight_width=int(data["nominal_weight_width"]),
        result_width=int(data["result_width"]),
        tree_style=str(data["tree_style"]),
    )


def matrix_digest(matrix: np.ndarray) -> str:
    """Stable SHA-256 identity of a signed integer matrix.

    Canonicalized to C-ordered int64 before hashing so the digest does
    not depend on the caller's dtype, byte order, or array layout.
    """
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=np.int64))
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    h = hashlib.sha256()
    h.update(b"repro-matrix-v1:")
    h.update(np.array(arr.shape, dtype=np.int64).tobytes())
    h.update(arr.tobytes())
    return h.hexdigest()


def plan_fingerprint(plan: MatrixPlan) -> str:
    """Stable SHA-256 fingerprint of a compilation plan.

    Computed over the canonical JSON form of :func:`plan_to_dict`, so a
    plan and its serialize/deserialize round trip fingerprint identically,
    and any change to the planes, widths, or tree style changes the
    digest.  Exposed on compiled netlists as ``CompiledCircuit.digest``.
    """
    payload = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def census_to_dict(census: CircuitCensus) -> dict[str, Any]:
    """JSON-compatible representation of a circuit census."""
    def plane(p: PlaneCensus) -> dict[str, int]:
        return {
            "tree_adders": p.tree_adders,
            "tree_dffs": p.tree_dffs,
            "chain_adders": p.chain_adders,
            "chain_dffs": p.chain_dffs,
            "live_roots": p.live_roots,
        }

    return {
        "format_version": _FORMAT_VERSION,
        "rows": census.rows,
        "cols": census.cols,
        "input_width": census.input_width,
        "plane_width": census.plane_width,
        "result_width": census.result_width,
        "reference_depth": census.reference_depth,
        "tree_style": census.tree_style,
        "ones": census.ones,
        "positive": plane(census.positive),
        "negative": plane(census.negative),
        "subtractors": census.subtractors,
        "subtract_dffs": census.subtract_dffs,
        "negators": census.negators,
        "output_pad_dffs": census.output_pad_dffs,
    }


def census_from_dict(data: dict[str, Any]) -> CircuitCensus:
    """Rebuild a census from :func:`census_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported census format version: {version!r}")

    def plane(d: dict[str, int]) -> PlaneCensus:
        return PlaneCensus(
            tree_adders=int(d["tree_adders"]),
            tree_dffs=int(d["tree_dffs"]),
            chain_adders=int(d["chain_adders"]),
            chain_dffs=int(d["chain_dffs"]),
            live_roots=int(d["live_roots"]),
        )

    return CircuitCensus(
        rows=int(data["rows"]),
        cols=int(data["cols"]),
        input_width=int(data["input_width"]),
        plane_width=int(data["plane_width"]),
        result_width=int(data["result_width"]),
        reference_depth=int(data["reference_depth"]),
        tree_style=str(data["tree_style"]),
        ones=int(data["ones"]),
        positive=plane(data["positive"]),
        negative=plane(data["negative"]),
        subtractors=int(data["subtractors"]),
        subtract_dffs=int(data["subtract_dffs"]),
        negators=int(data["negators"]),
        output_pad_dffs=int(data["output_pad_dffs"]),
    )
