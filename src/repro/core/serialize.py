"""Artifact serialization for the staged compile pipeline.

Compiling a large matrix (CSD recoding + census) is the expensive step of
a deployment flow; serialization lets a build system compile once, store
the artifacts next to the generated RTL, and reload them for later
execution or analysis without recompiling — the same role a synthesis
checkpoint plays in the paper's Vivado flow.

Three artifact kinds, one per pipeline boundary (see ``docs/artifacts.md``):

* **plans** (:func:`plan_to_dict` / :func:`plan_from_dict`) — the
  recoded planes and width analysis, as JSON;
* **kernels** (:func:`kernel_to_npz` / :func:`kernel_from_npz`) — the
  lowered flat index arrays of a
  :class:`~repro.hwsim.fast.LoweredKernel`, as a compressed ``.npz``
  with an embedded JSON header; loading one skips netlist construction
  *and* lowering entirely;
* **fused kernels** (:func:`fused_to_npz` / :func:`fused_from_npz`) —
  the static CSD shift-add schedule of a
  :class:`~repro.hwsim.fused.FusedKernel` (flat ``(out, row, shift,
  sign)`` term arrays), same ``.npz`` layout; loading one also skips
  the ``fuse`` sweep, so a warm deploy of the cycle-loop-free engine is
  pure artifact I/O;
* **censuses** (:func:`census_to_dict` / :func:`census_from_dict`) — the
  combinatorial cost model, as JSON.

A fourth pair serves the network transport rather than the disk:
:func:`array_to_payload` / :func:`array_from_payload` canonicalize one
batch or result array into ``(meta, blob)`` wire form for the cluster
protocol (:mod:`repro.cluster.protocol`).  int64 arrays travel as raw
little-endian bytes; object-dtype arrays of exact Python integers (the
>62-bit result path) travel as the self-describing ``"bigint"`` codec —
fixed-width little-endian two's-complement limbs, width in the meta —
so nothing executable ever rides a frame.  The v1-era ``"pickle"``
codec is fully retired: its one-release decode shim was dropped with
protocol v3, and any frame presenting it is rejected as malformed; see
:data:`ARRAY_CODECS`.

Two content digests make the stored artifacts addressable:

* :func:`matrix_digest` — SHA-256 over the signed matrix's shape and
  canonical int64 bytes, identifying *what* is being compiled;
* :func:`plan_fingerprint` — SHA-256 over the canonical JSON form of a
  plan, identifying the *result* of a compilation (planes, widths, tree
  style).  Two plans with equal fingerprints build identical circuits,
  and a kernel artifact carries the fingerprint of the plan it was
  lowered from.

The serve layer's compile cache (:mod:`repro.serve.cache`) keys on the
matrix digest plus compile options; :attr:`CompiledCircuit.digest
<repro.hwsim.builder.CompiledCircuit.digest>` exposes the plan
fingerprint on compiled netlists.

Forward compatibility: every artifact embeds a ``format_version``.
Loaders raise ``ValueError`` on unknown versions (and on any structural
mismatch) rather than guessing; callers that can rebuild — the compile
cache — treat a load failure as a miss and recompile, so stale artifact
stores degrade to cold starts, never to wrong answers.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.plan import MatrixPlan
from repro.core.split import SplitMatrix
from repro.core.stats import CircuitCensus, PlaneCensus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hwsim imports core)
    from repro.hwsim.fast import LoweredKernel
    from repro.hwsim.fused import FusedKernel

__all__ = [
    "plan_to_dict",
    "plan_from_dict",
    "census_to_dict",
    "census_from_dict",
    "kernel_to_npz",
    "kernel_from_npz",
    "fused_to_npz",
    "fused_from_npz",
    "npz_header",
    "matrix_digest",
    "plan_fingerprint",
    "array_to_payload",
    "array_from_payload",
    "ARRAY_CODECS",
    "MAX_BIGINT_ITEMSIZE",
    "unique_tmp",
    "atomic_write_text",
    "KERNEL_FORMAT_VERSION",
    "FUSED_FORMAT_VERSION",
]

_FORMAT_VERSION = 1

#: Version of the ``.npz`` lowered-kernel artifact layout.  Bump on any
#: change to the header fields, array set, or engine semantics the
#: arrays encode; old readers must refuse newer artifacts.
KERNEL_FORMAT_VERSION = 1

#: Version of the ``.npz`` fused-kernel (shift-add schedule) layout.
#: Same bump policy as :data:`KERNEL_FORMAT_VERSION`.
FUSED_FORMAT_VERSION = 1

_KERNEL_KIND = "repro-lowered-kernel"
_FUSED_KIND = "repro-fused-kernel"


def plan_to_dict(plan: MatrixPlan) -> dict[str, Any]:
    """JSON-compatible representation of a compilation plan."""
    return {
        "format_version": _FORMAT_VERSION,
        "positive": plan.split.positive.tolist(),
        "negative": plan.split.negative.tolist(),
        "plane_width": plan.split.width,
        "scheme": plan.split.scheme,
        "input_width": plan.input_width,
        "nominal_weight_width": plan.nominal_weight_width,
        "result_width": plan.result_width,
        "tree_style": plan.tree_style,
    }


def plan_from_dict(data: dict[str, Any]) -> MatrixPlan:
    """Rebuild a plan from :func:`plan_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version: {version!r}")
    split = SplitMatrix(
        positive=np.asarray(data["positive"], dtype=np.int64),
        negative=np.asarray(data["negative"], dtype=np.int64),
        width=int(data["plane_width"]),
        scheme=str(data["scheme"]),
    )
    return MatrixPlan(
        split=split,
        input_width=int(data["input_width"]),
        nominal_weight_width=int(data["nominal_weight_width"]),
        result_width=int(data["result_width"]),
        tree_style=str(data["tree_style"]),
    )


def matrix_digest(matrix: np.ndarray) -> str:
    """Stable SHA-256 identity of a signed integer matrix.

    Canonicalized to C-ordered int64 before hashing so the digest does
    not depend on the caller's dtype, byte order, or array layout.
    """
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=np.int64))
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    h = hashlib.sha256()
    h.update(b"repro-matrix-v1:")
    h.update(np.array(arr.shape, dtype=np.int64).tobytes())
    h.update(arr.tobytes())
    return h.hexdigest()


def plan_fingerprint(plan: MatrixPlan) -> str:
    """Stable SHA-256 fingerprint of a compilation plan.

    Computed over the canonical JSON form of :func:`plan_to_dict`, so a
    plan and its serialize/deserialize round trip fingerprint identically,
    and any change to the planes, widths, or tree style changes the
    digest.  Exposed on compiled netlists as ``CompiledCircuit.digest``.
    """
    payload = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def unique_tmp(path: str | pathlib.Path) -> pathlib.Path:
    """A sibling temp-file name no concurrent writer will collide on.

    Atomic artifact writes are temp-file + ``os.replace``; a *shared*
    temp name (``<file>.tmp``) is only atomic against crashes, not
    against a second process writing the same artifact — both would
    truncate and interleave the same temp file.  Salting with the pid
    and a random token makes every writer's staging file private, so a
    shared artifact store (a shard-server fleet on one directory) is
    last-writer-wins, never corrupted.
    """
    path = pathlib.Path(path)
    token = os.urandom(4).hex()
    return path.with_name(f"{path.name}.{os.getpid()}.{token}.tmp")


def atomic_write_text(path: str | pathlib.Path, text: str) -> None:
    """Atomically publish ``text`` at ``path`` (private tmp + ``os.replace``)."""
    path = pathlib.Path(path)
    tmp = unique_tmp(path)
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise


def _arrays_to_npz(
    artifact: Any,
    path: str | pathlib.Path,
    kind: str,
    version: int,
    extra: dict[str, Any] | None = None,
) -> None:
    """Shared ``.npz`` writer for flat-array artifacts (kernels, fused).

    Layout: one ``__header__`` entry holding a JSON string (format
    version, artifact kind, the plan fingerprint, and every scalar
    execution parameter) plus one named entry per artifact array (from
    the class's ``SCALAR_FIELDS``/``ARRAY_FIELDS`` contract).  ``extra``
    adds advisory metadata keys to the header (e.g. term statistics for
    the executor selector); readers ignore keys they do not require, so
    metadata additions never invalidate old artifacts.  The write
    is atomic (private temp file + rename, see :func:`unique_tmp`) so
    neither a crashed writer nor a concurrent one leaves a half-written
    artifact for a later reader to trip on.
    """
    path = pathlib.Path(path)
    header: dict[str, Any] = {"format_version": version, "kind": kind}
    for name in type(artifact).SCALAR_FIELDS:
        value = getattr(artifact, name)
        header[name] = value if isinstance(value, str) else int(value)
    if extra:
        header.update(extra)
    arrays = {name: getattr(artifact, name) for name in type(artifact).ARRAY_FIELDS}
    tmp = unique_tmp(path)
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, __header__=json.dumps(header), **arrays)
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise


def _arrays_from_npz(
    path: str | pathlib.Path, cls: type, kind: str, version: int
) -> Any:
    """Shared ``.npz`` reader; raises ``ValueError`` on anything that is
    not a well-formed artifact of ``kind`` at ``version`` — wrong kind,
    unknown ``format_version``, or missing entries — so callers can fall
    back to a rebuild instead of executing a misinterpreted artifact."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        if "__header__" not in data:
            raise ValueError(f"{path.name}: not a {kind} artifact (no header)")
        header = json.loads(str(data["__header__"][()]))
        if header.get("kind") != kind:
            raise ValueError(
                f"{path.name}: unexpected artifact kind {header.get('kind')!r}"
            )
        found = header.get("format_version")
        if found != version:
            raise ValueError(
                f"{path.name}: unsupported {kind} format version {found!r}"
            )
        fields: dict[str, Any] = {}
        for name in cls.SCALAR_FIELDS:
            if name not in header:
                raise ValueError(f"{path.name}: header missing {name!r}")
            fields[name] = header[name]
        for name in cls.ARRAY_FIELDS:
            if name not in data:
                raise ValueError(f"{path.name}: artifact missing array {name!r}")
            fields[name] = np.asarray(data[name], dtype=np.int64)
    fields["fingerprint"] = str(fields["fingerprint"])
    for name in cls.SCALAR_FIELDS:
        if name != "fingerprint":
            fields[name] = int(fields[name])
    return cls(**fields)


def kernel_to_npz(
    kernel: "LoweredKernel",
    path: str | pathlib.Path,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Persist a lowered kernel as a compressed ``.npz`` artifact.

    ``metadata`` adds advisory header keys — the compile cache records
    the fused schedule's ``term_count``/``term_density`` here so the
    executor selector can read them from the header alone (see
    :func:`npz_header`) without loading arrays or re-fusing.
    """
    _arrays_to_npz(kernel, path, _KERNEL_KIND, KERNEL_FORMAT_VERSION, extra=metadata)


def kernel_from_npz(path: str | pathlib.Path) -> "LoweredKernel":
    """Load a :func:`kernel_to_npz` artifact back into a ``LoweredKernel``."""
    from repro.hwsim.fast import LoweredKernel

    return _arrays_from_npz(path, LoweredKernel, _KERNEL_KIND, KERNEL_FORMAT_VERSION)


def fused_to_npz(fused: "FusedKernel", path: str | pathlib.Path) -> None:
    """Persist a fused shift-add schedule as a compressed ``.npz`` artifact.

    The header always carries ``term_count`` and ``term_density``
    (terms over ``rows * cols``) so the fused executor selector can
    pick its tier from the header alone; artifacts written before this
    metadata existed simply lack the keys and the selector falls back
    to counting the loaded term arrays (a graceful backfill — re-stored
    artifacts pick the metadata up on their next write).
    """
    terms = len(fused.term_out)
    area = int(fused.rows) * int(fused.cols)
    _arrays_to_npz(
        fused,
        path,
        _FUSED_KIND,
        FUSED_FORMAT_VERSION,
        extra={
            "term_count": terms,
            "term_density": (terms / area) if area else 0.0,
        },
    )


def npz_header(path: str | pathlib.Path) -> dict[str, Any]:
    """The parsed JSON header of any flat-array ``.npz`` artifact.

    Cheap relative to loading the arrays; lets metadata consumers (the
    executor selector, fleet tooling) inspect ``kind``, widths, and
    term statistics without materializing the artifact.  Raises
    ``ValueError`` for files without a header.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        if "__header__" not in data:
            raise ValueError(f"{path.name}: not a flat-array artifact (no header)")
        return json.loads(str(data["__header__"][()]))


def fused_from_npz(path: str | pathlib.Path) -> "FusedKernel":
    """Load a :func:`fused_to_npz` artifact back into a ``FusedKernel``."""
    from repro.hwsim.fused import FusedKernel

    return _arrays_from_npz(path, FusedKernel, _FUSED_KIND, FUSED_FORMAT_VERSION)


# -- wire codecs (the cluster protocol's array frames) -----------------------

#: Wire codecs for one 2-D batch/result array.  ``"i64"`` is raw
#: little-endian int64 bytes (canonical, endian-stable across hosts);
#: ``"bigint"`` is the self-describing exact-integer form for >62-bit
#: results — fixed-width little-endian two's-complement limbs, the
#: per-element byte width carried in the meta — so a frame never embeds
#: anything executable.  The v1-era ``"pickle"`` codec is gone: its
#: decode-only rolling-upgrade shim rode exactly one release and was
#: removed with protocol v3, so a frame presenting it now fails decode
#: like any other unknown codec.
ARRAY_CODECS = ("i64", "bigint")

#: Cap on one ``"bigint"`` element's byte width: a plausibility bound a
#: decoder checks *before* allocating, so a corrupt or hostile meta
#: cannot demand absurd per-element widths (64 KiB ≈ a 524k-bit result,
#: far beyond any servable ``result_width``).
MAX_BIGINT_ITEMSIZE = 1 << 16


def array_to_payload(arr: np.ndarray) -> tuple[dict[str, Any], bytes]:
    """Canonical ``(meta, blob)`` wire form of a 2-D batch/result array.

    int64-representable arrays become raw little-endian bytes; anything
    carrying exact Python integers (object dtype, the >62-bit result
    path) becomes the ``"bigint"`` codec: every element encoded as
    ``itemsize`` little-endian two's-complement bytes, ``itemsize``
    (the smallest width that fits the widest element) recorded in the
    meta.  The inverse is :func:`array_from_payload`.
    """
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
    if arr.dtype != object:
        canonical = np.ascontiguousarray(arr, dtype="<i8")
        return {"codec": "i64", "shape": list(arr.shape)}, canonical.tobytes()
    flat = [int(x) for x in arr.ravel()]
    # Smallest signed two's-complement width covering every element:
    # bit_length() excludes the sign bit, so one extra bit is always
    # needed (and -2**k fitting in k+1 bits just rounds up the same).
    itemsize = max(
        (x.bit_length() // 8 + 1 for x in flat),
        default=1,
    )
    if itemsize > MAX_BIGINT_ITEMSIZE:
        raise ValueError(
            f"bigint element needs {itemsize} bytes, over the "
            f"{MAX_BIGINT_ITEMSIZE}-byte cap"
        )
    blob = b"".join(x.to_bytes(itemsize, "little", signed=True) for x in flat)
    return {"codec": "bigint", "shape": list(arr.shape), "itemsize": itemsize}, blob


def array_from_payload(meta: dict[str, Any], blob: bytes) -> np.ndarray:
    """Rebuild the array of :func:`array_to_payload` output.

    Raises ``ValueError`` on unknown codecs or meta/blob disagreement —
    a malformed frame must fail the request, never decode into a
    plausible-but-wrong batch.  The v1-era ``"pickle"`` codec is no
    longer decoded (its one-release compatibility shim ended with
    protocol v3); such frames are rejected as unknown.
    """
    codec = meta.get("codec")
    try:
        shape = tuple(int(s) for s in meta["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed array payload meta: {meta!r}") from exc
    if len(shape) != 2 or any(s < 0 for s in shape):
        raise ValueError(f"array payload shape must be 2-D, got {shape}")
    count = shape[0] * shape[1]
    if codec == "i64":
        if len(blob) != count * 8:
            raise ValueError(
                f"i64 payload carries {len(blob)} bytes for shape {shape}"
            )
        flat = np.frombuffer(blob, dtype="<i8")
        return flat.astype(np.int64).reshape(shape)
    if codec == "bigint":
        try:
            itemsize = int(meta["itemsize"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"bigint payload meta lacks a valid itemsize: {meta!r}"
            ) from exc
        if not 1 <= itemsize <= MAX_BIGINT_ITEMSIZE:
            raise ValueError(f"bigint itemsize {itemsize} out of range")
        if len(blob) != count * itemsize:
            raise ValueError(
                f"bigint payload carries {len(blob)} bytes for shape "
                f"{shape} at itemsize {itemsize}"
            )
        out = np.empty(count, dtype=object)
        for i in range(count):
            out[i] = int.from_bytes(
                blob[i * itemsize : (i + 1) * itemsize], "little", signed=True
            )
        return out.reshape(shape)
    raise ValueError(f"unknown array codec {codec!r} (known: {ARRAY_CODECS})")


def census_to_dict(census: CircuitCensus) -> dict[str, Any]:
    """JSON-compatible representation of a circuit census."""
    def plane(p: PlaneCensus) -> dict[str, int]:
        return {
            "tree_adders": p.tree_adders,
            "tree_dffs": p.tree_dffs,
            "chain_adders": p.chain_adders,
            "chain_dffs": p.chain_dffs,
            "live_roots": p.live_roots,
        }

    return {
        "format_version": _FORMAT_VERSION,
        "rows": census.rows,
        "cols": census.cols,
        "input_width": census.input_width,
        "plane_width": census.plane_width,
        "result_width": census.result_width,
        "reference_depth": census.reference_depth,
        "tree_style": census.tree_style,
        "ones": census.ones,
        "positive": plane(census.positive),
        "negative": plane(census.negative),
        "subtractors": census.subtractors,
        "subtract_dffs": census.subtract_dffs,
        "negators": census.negators,
        "output_pad_dffs": census.output_pad_dffs,
    }


def census_from_dict(data: dict[str, Any]) -> CircuitCensus:
    """Rebuild a census from :func:`census_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported census format version: {version!r}")

    def plane(d: dict[str, int]) -> PlaneCensus:
        return PlaneCensus(
            tree_adders=int(d["tree_adders"]),
            tree_dffs=int(d["tree_dffs"]),
            chain_adders=int(d["chain_adders"]),
            chain_dffs=int(d["chain_dffs"]),
            live_roots=int(d["live_roots"]),
        )

    return CircuitCensus(
        rows=int(data["rows"]),
        cols=int(data["cols"]),
        input_width=int(data["input_width"]),
        plane_width=int(data["plane_width"]),
        result_width=int(data["result_width"]),
        reference_depth=int(data["reference_depth"]),
        tree_style=str(data["tree_style"]),
        ones=int(data["ones"]),
        positive=plane(data["positive"]),
        negative=plane(data["negative"]),
        subtractors=int(data["subtractors"]),
        subtract_dffs=int(data["subtract_dffs"]),
        negators=int(data["negators"]),
        output_pad_dffs=int(data["output_pad_dffs"]),
    )
