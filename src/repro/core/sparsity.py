"""Sparsity metrics used throughout the paper.

The paper distinguishes two notions of sparsity:

* **Element sparsity** — the fraction of matrix *entries* that are zero
  ("75% of the elements being 0, which we henceforth refer to as element
  sparsity").
* **Bit sparsity** — the fraction of *bits* that are zero out of the total
  number of bits ("the bit-sparsity of the weight matrix is the number of
  bits that are 0 out of the total number of bits").

Bit sparsity is a superset of element sparsity: a zero element contributes
``width`` zero bits.  The architecture's cost tracks *ones*, i.e.
``(1 - bit_sparsity) * size * width``.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import matrix_popcount

__all__ = [
    "element_sparsity",
    "bit_sparsity",
    "total_ones",
    "element_to_bit_sparsity",
    "nnz",
]


def element_sparsity(matrix: np.ndarray) -> float:
    """Fraction of entries equal to zero."""
    arr = np.asarray(matrix)
    if arr.size == 0:
        raise ValueError("element_sparsity of an empty matrix is undefined")
    return float(np.count_nonzero(arr == 0)) / arr.size


def nnz(matrix: np.ndarray) -> int:
    """Number of nonzero entries."""
    return int(np.count_nonzero(np.asarray(matrix)))


def bit_sparsity(matrix: np.ndarray, width: int) -> float:
    """Fraction of zero bits out of ``size * width`` total bits.

    The matrix must be non-negative (apply :func:`repro.core.split.pn_split`
    first for signed weights; bit sparsity is defined on the unsigned planes).
    """
    arr = np.asarray(matrix)
    if arr.size == 0:
        raise ValueError("bit_sparsity of an empty matrix is undefined")
    total_bits = arr.size * width
    return 1.0 - matrix_popcount(arr, width) / total_bits


def total_ones(matrix: np.ndarray, width: int | None = None) -> int:
    """Total set bits — the paper's fundamental hardware-cost driver."""
    return matrix_popcount(matrix, width)


def element_to_bit_sparsity(matrix: np.ndarray, width: int) -> float:
    """Bit sparsity of an element-sparse matrix (Sec. IV, Fig. 6).

    The paper "convert[s] the element-sparse value into a bit-sparse value"
    to compare the two generation schemes on a common x-axis.  This helper
    performs that conversion for a concrete matrix.
    """
    return bit_sparsity(matrix, width)
