"""Latency models — Eq. 5 of the paper plus streaming/batching extensions.

Equation 5::

    Latency = BW_i + BW_w + log2(R) + 2

"We incur the input width to stream the input in, the output width to
stream the output out, and our adder tree is logarithmic in depth.  We
incur a single cycle to accumulate across bit positions and an additional
cycle to subtract the positive and negative weight matrices."

The worked example is pinned by tests: 8-bit inputs and weights with a
1024x1024 matrix take ``8 + 8 + log2(1024) + 2 = 28`` cycles.
"""

from __future__ import annotations

import math

__all__ = [
    "latency_cycles",
    "latency_ns",
    "batch_cycles",
    "pipelined_reconfig_overhead_cycles",
]


def latency_cycles(input_width: int, weight_width: int, rows: int) -> int:
    """Eq. 5: single vector-matrix product latency in cycles."""
    if input_width < 1 or weight_width < 1:
        raise ValueError("bit widths must be >= 1")
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    return input_width + weight_width + max(0, math.ceil(math.log2(rows))) + 2


def latency_ns(input_width: int, weight_width: int, rows: int, frequency_hz: float) -> float:
    """Eq. 5 latency converted to nanoseconds at a given clock."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return latency_cycles(input_width, weight_width, rows) / frequency_hz * 1e9


def batch_cycles(
    input_width: int, weight_width: int, rows: int, batch: int
) -> int:
    """Cycles to multiply ``batch`` vectors through the fixed matrix.

    The architecture performs sequential vector products ("we have to
    stream the columns of the input matrix in one-by-one, which yields
    linear scaling"): each vector occupies the single serial output wire
    for the full result width, so vectors cannot overlap and total time is
    ``batch * latency``.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return batch * latency_cycles(input_width, weight_width, rows)


def pipelined_reconfig_overhead_cycles(rows: int, weight_width: int) -> int:
    """Extra cycles to swap the matrix under pipeline reconfiguration.

    Sec. VIII sketches "waves of configuration travelling down the tree":
    on a CGRA supporting cycle-by-cycle configuration, each tree level can
    be reconfigured as soon as the previous matrix's partial sums have
    passed, hiding reconfiguration behind the pipeline instead of the
    FPGA's ~200 ms full-device reprogram.  The residual overhead is one
    configuration wave: the tree depth plus the chain, i.e. the same
    ``log2(R) + weight_width`` the data itself needs — after which
    back-to-back matrices stream with zero dead cycles.
    """
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    return max(0, math.ceil(math.log2(rows))) + weight_width
