"""The paper's primary contribution: matrix -> spatial bit-serial circuit."""

from repro.core.bits import (
    from_twos_complement_bits,
    from_unsigned_bits,
    matrix_popcount,
    popcount,
    sign_extended_stream,
    to_twos_complement_bits,
    to_unsigned_bits,
)
from repro.core.csd import (
    CsdMatrices,
    convert_to_csd,
    convert_to_naf,
    csd_split_unsigned,
    csd_value,
    csd_variants,
    digits_to_pn,
    digits_to_value,
    naf_split_unsigned,
)
from repro.core.latency import (
    batch_cycles,
    latency_cycles,
    latency_ns,
    pipelined_reconfig_overhead_cycles,
)
from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.plan import MatrixPlan, plan_matrix, signed_width_for_range, tree_depth
from repro.core.serialize import (
    census_from_dict,
    census_to_dict,
    plan_from_dict,
    plan_to_dict,
)
from repro.core.visualize import render_column, summarize_plan
from repro.core.tiling import (
    FPGA_RECONFIGURATION_S,
    TiledMatrixMultiplier,
    plan_column_tiles,
)
from repro.core.sparsity import (
    bit_sparsity,
    element_sparsity,
    element_to_bit_sparsity,
    nnz,
    total_ones,
)
from repro.core.split import RECODING_SCHEMES, SplitMatrix, pn_split, split_matrix
from repro.core.stats import CircuitCensus, PlaneCensus, census_plan

__all__ = [
    "FixedMatrixMultiplier",
    "TiledMatrixMultiplier",
    "plan_column_tiles",
    "FPGA_RECONFIGURATION_S",
    "plan_to_dict",
    "plan_from_dict",
    "census_to_dict",
    "census_from_dict",
    "render_column",
    "summarize_plan",
    "MatrixPlan",
    "plan_matrix",
    "census_plan",
    "CircuitCensus",
    "PlaneCensus",
    "SplitMatrix",
    "pn_split",
    "split_matrix",
    "RECODING_SCHEMES",
    "convert_to_csd",
    "convert_to_naf",
    "csd_split_unsigned",
    "naf_split_unsigned",
    "csd_value",
    "csd_variants",
    "digits_to_pn",
    "digits_to_value",
    "CsdMatrices",
    "latency_cycles",
    "latency_ns",
    "batch_cycles",
    "pipelined_reconfig_overhead_cycles",
    "bit_sparsity",
    "element_sparsity",
    "element_to_bit_sparsity",
    "total_ones",
    "nnz",
    "popcount",
    "matrix_popcount",
    "to_unsigned_bits",
    "from_unsigned_bits",
    "to_twos_complement_bits",
    "from_twos_complement_bits",
    "sign_extended_stream",
    "signed_width_for_range",
    "tree_depth",
]
