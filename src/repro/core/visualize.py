"""ASCII rendering of compiled circuit columns.

Small-matrix debugging and teaching aid: draw one column's reduction
trees, bit-combination chain, and subtract stage, as the builder will
instantiate them.  Used by the docs and handy in a REPL::

    >>> from repro.core import plan_matrix
    >>> from repro.core.visualize import render_column
    >>> print(render_column(plan_matrix([[3], [1]], input_width=4), 0))
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import MatrixPlan, compact_depth

__all__ = ["render_column", "summarize_plan"]


def _plane_lines(plan: MatrixPlan, plane: np.ndarray, col: int, tag: str) -> list[str]:
    lines: list[str] = []
    width = plan.plane_width
    live_bits = []
    for bit in range(width):
        taps = plan.column_taps(plane, col, bit)
        if taps.size == 0:
            continue
        live_bits.append(bit)
        if plan.tree_style == "compact":
            depth = compact_depth(int(taps.size)) if taps.size else 0
        else:
            depth = plan.full_depth
        lines.append(
            f"  {tag} bit {bit}: taps rows {taps.tolist()} -> "
            f"{max(int(taps.size) - 1, 0)} adders, tree depth {depth}"
        )
    if not live_bits:
        lines.append(f"  {tag}: empty plane (no hardware)")
        return lines
    chain = []
    prev = False
    for bit in reversed(range(width)):
        root = bit in live_bits
        if prev and root:
            chain.append(f"SA(b{bit})")
        elif prev or root:
            chain.append(f"DFF(b{bit})")
        prev = prev or root
    lines.append(f"  {tag} chain MSb->LSb: " + " -> ".join(chain))
    return lines


def render_column(plan: MatrixPlan, col: int) -> str:
    """Human-readable structure of one output column's circuit."""
    if not 0 <= col < plan.cols:
        raise ValueError(f"column {col} out of range for {plan.cols} columns")
    lines = [
        f"column {col} of {plan.rows}x{plan.cols} "
        f"(scheme={plan.split.scheme}, style={plan.tree_style})"
    ]
    lines.extend(_plane_lines(plan, plan.split.positive, col, "P"))
    lines.extend(_plane_lines(plan, plan.split.negative, col, "N"))
    p_live = any(
        plan.column_taps(plan.split.positive, col, b).size
        for b in range(plan.plane_width)
    )
    n_live = any(
        plan.column_taps(plan.split.negative, col, b).size
        for b in range(plan.plane_width)
    )
    if p_live and n_live:
        stage = "SerialSubtractor(P - N)"
    elif p_live:
        stage = "DFF(P)  [N empty]"
    elif n_live:
        stage = "SerialNegator(-N)  [P empty]"
    else:
        stage = "constant 0  [both planes empty]"
    lines.append(f"  subtract stage: {stage}")
    lines.append(
        f"  decode: result bit k on cycle {plan.decode_delta()} + k, "
        f"{plan.result_width} bits"
    )
    return "\n".join(lines)


def summarize_plan(plan: MatrixPlan) -> str:
    """One-screen structural overview of a whole plan."""
    from repro.core.stats import census_plan

    census = census_plan(plan)
    return "\n".join(
        [
            f"{plan.rows}x{plan.cols} matrix, scheme={plan.split.scheme}, "
            f"style={plan.tree_style}",
            f"  ones: {census.ones}",
            f"  serial adders: {census.serial_adders} "
            f"(tree {census.positive.tree_adders + census.negative.tree_adders}, "
            f"chain {census.positive.chain_adders + census.negative.chain_adders}, "
            f"subtract {census.subtractors + census.negators})",
            f"  alignment DFFs: {census.dffs}",
            f"  reference depth: {census.reference_depth}",
            f"  serial result: {plan.result_width} bits from cycle "
            f"{plan.decode_delta()}",
        ]
    )
