"""Tiled execution for matrices that exceed the device (Sec. VIII).

"Even with these optimizations, there may be instances where the compute
matrix cannot entirely fit in hardware and must be tiled similar to DNN
accelerators. [...] The time to modify the interconnect matrix of the
FPGA is on the order of 200ms, which limits its practicality in moving
weights during runtime.  However, the feed-forward topology of this
network allows for the approach of pipeline reconfiguration."

This module implements that discussion end to end:

* :func:`plan_column_tiles` — greedy column partitioning under a LUT
  budget (columns are independent in this architecture, so column tiling
  needs no partial-sum plumbing: each tile produces a slice of the output
  vector);
* :class:`TiledMatrixMultiplier` — functionally exact tiled products plus
  a deployment-latency model under two reconfiguration regimes: the
  FPGA's ~200 ms full reprogram versus a CGRA's pipeline-reconfiguration
  wave of ``log2(R) + BW_w`` cycles.  The contrast is the paper's closing
  argument: tiling is impractical on the FPGA and nearly free on the
  proposed CGRA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.latency import pipelined_reconfig_overhead_cycles
from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.split import split_matrix
from repro.fpga.device import FpgaDevice, XCVU13P

__all__ = [
    "plan_column_tiles",
    "TiledMatrixMultiplier",
    "FPGA_RECONFIGURATION_S",
]

FPGA_RECONFIGURATION_S = 0.2
"""Full-device reprogram time: "on the order of 200ms" (Sec. VIII)."""


def plan_column_tiles(
    matrix: np.ndarray,
    lut_budget: int,
    scheme: str = "csd",
    rng: np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Greedy column partition so each tile's LUT demand fits the budget.

    Columns are packed left to right; a column's LUT demand is estimated
    from its recoded ones (LUTs ~ ones, the Sec. IV model) plus chain and
    subtract overhead.  Returns ``[start, stop)`` column ranges.
    """
    arr = np.asarray(matrix, dtype=np.int64)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError(f"expected a non-empty 2-D matrix, got shape {arr.shape}")
    if lut_budget < 1:
        raise ValueError(f"lut_budget must be >= 1, got {lut_budget}")
    split = split_matrix(arr, scheme=scheme, rng=rng)
    width = split.width

    def column_ones(col: int) -> int:
        total = 0
        for plane in (split.positive, split.negative):
            column = plane[:, col]
            for bit in range(width):
                total += int(np.count_nonzero((column >> bit) & 1))
        return total

    per_column = [column_ones(c) + width + 2 for c in range(arr.shape[1])]
    overhead = arr.shape[0] + 160  # input SRs + wrapper, from the mapping rules
    tiles: list[tuple[int, int]] = []
    start = 0
    running = overhead
    for col, cost in enumerate(per_column):
        if cost + overhead > lut_budget:
            raise ValueError(
                f"column {col} alone needs ~{cost + overhead} LUTs, over the "
                f"budget of {lut_budget}"
            )
        if running + cost > lut_budget and col > start:
            tiles.append((start, col))
            start = col
            running = overhead
        running += cost
    tiles.append((start, arr.shape[1]))
    return tiles


@dataclass(frozen=True)
class TiledExecutionEstimate:
    """Deployment latency for one tiled batch."""

    tiles: int
    reconfigurations: int
    reconfiguration_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.reconfiguration_s + self.compute_s

    @property
    def reconfiguration_fraction(self) -> float:
        total = self.total_s
        return self.reconfiguration_s / total if total else 0.0


class TiledMatrixMultiplier:
    """A fixed matrix too large for the device, executed tile by tile."""

    def __init__(
        self,
        matrix: np.ndarray,
        lut_budget: int,
        input_width: int = 8,
        scheme: str = "csd",
        rng: np.random.Generator | None = None,
        device: FpgaDevice = XCVU13P,
    ) -> None:
        self.matrix = np.asarray(matrix, dtype=np.int64)
        self.ranges = plan_column_tiles(self.matrix, lut_budget, scheme, rng)
        self.tiles = [
            FixedMatrixMultiplier(
                self.matrix[:, start:stop],
                input_width=input_width,
                scheme=scheme,
                rng=rng,
                device=device,
            )
            for start, stop in self.ranges
        ]
        self.lut_budget = lut_budget

    @property
    def tile_count(self) -> int:
        return len(self.tiles)

    def max_tile_luts(self) -> int:
        return max(tile.resources.luts for tile in self.tiles)

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Exact product assembled from per-tile output slices."""
        pieces = [tile.multiply(vector) for tile in self.tiles]
        return np.concatenate(pieces)

    def execution_estimate(
        self,
        batch: int = 1,
        pipeline_reconfiguration: bool = False,
        cgra_clock_hz: float = 1.2e9,
    ) -> TiledExecutionEstimate:
        """Latency of a tiled batch under a reconfiguration regime.

        Every tile must be loaded once per batch (weights are *spatial*,
        so swapping tiles means reprogramming).  On the FPGA that costs
        ~200 ms each; with pipeline reconfiguration (Sec. VIII's CGRA) a
        wave of ``log2(R) + BW_w`` cycles hides almost all of it.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        reconfigs = self.tile_count
        if pipeline_reconfiguration:
            wave = pipelined_reconfig_overhead_cycles(
                self.matrix.shape[0], self.tiles[0].plan.plane_width
            )
            reconfig_s = reconfigs * wave / cgra_clock_hz
        else:
            reconfig_s = reconfigs * FPGA_RECONFIGURATION_S
        compute_s = sum(tile.latency_s(batch=batch) for tile in self.tiles)
        return TiledExecutionEstimate(
            tiles=self.tile_count,
            reconfigurations=reconfigs,
            reconfiguration_s=reconfig_s,
            compute_s=compute_s,
        )
