"""Combinatorial circuit census — exact primitive counts in O(ones).

The gate-level builder (:mod:`repro.hwsim.builder`) instantiates one Python
object per primitive, which is fine for functional verification of small
and medium matrices but far too slow for the paper's large-scale
experiments (Figs. 10-12 reach ~1.5 million ones).  This module computes
the *exact same counts* without materializing gates.

Node rules (identical to the builder):

* tree node: two live children -> serial adder, one -> DFF, zero -> absent;
* compact style additionally pads each live tree root up to the column's
  reference depth, and each live column's output up to the design's
  global reference depth (see :mod:`repro.core.plan`);
* chain link (MSb..LSb): previous link and tree root both live -> serial
  adder; exactly one -> DFF; neither -> absent;
* subtract stage per column: P and N both live -> serial subtractor;
  only P -> DFF; only N -> serial negator; neither -> constant zero.

Tests in ``tests/core/test_stats_vs_netlist.py`` assert exact agreement
with the instantiated netlist on random matrices for both tree styles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bits import bit_plane
from repro.core.plan import MatrixPlan, compact_depth, compact_internal_dffs

__all__ = ["CircuitCensus", "census_plan", "PlaneCensus"]


@dataclass(frozen=True)
class PlaneCensus:
    """Primitive counts contributed by one unsigned plane (P or N).

    ``tree_dffs`` includes alignment flops: for the padded style, every
    one-live-child node; for the compact style, internal odd-level
    pass-throughs plus the root pads up to the column reference depth.
    """

    tree_adders: int
    tree_dffs: int
    chain_adders: int
    chain_dffs: int
    live_roots: int


@dataclass(frozen=True)
class CircuitCensus:
    """Exact primitive counts for a compiled fixed-matrix multiplier.

    All counts are totals over the whole design.  ``ones`` is the combined
    popcount of the P and N planes — the paper's fundamental cost driver.
    """

    rows: int
    cols: int
    input_width: int
    plane_width: int
    result_width: int
    reference_depth: int
    tree_style: str
    ones: int
    positive: PlaneCensus
    negative: PlaneCensus
    subtractors: int
    subtract_dffs: int
    negators: int
    output_pad_dffs: int

    @property
    def serial_adders(self) -> int:
        """All adder-class primitives (tree + chain + subtract + negate)."""
        return (
            self.positive.tree_adders
            + self.positive.chain_adders
            + self.negative.tree_adders
            + self.negative.chain_adders
            + self.subtractors
            + self.negators
        )

    @property
    def dffs(self) -> int:
        """All lone D flip-flops (alignment and degraded primitives)."""
        return (
            self.positive.tree_dffs
            + self.positive.chain_dffs
            + self.negative.tree_dffs
            + self.negative.chain_dffs
            + self.subtract_dffs
            + self.output_pad_dffs
        )

    @property
    def input_shift_registers(self) -> int:
        return self.rows

    @property
    def output_shift_registers(self) -> int:
        return self.cols


def _padded_plane_census(
    plane: np.ndarray, width: int, depth: int
) -> tuple[int, int, np.ndarray]:
    """Tree counts for the padded style via a dense level walk.

    Returns (tree_adders, tree_dffs, per-bit-per-column root liveness).
    """
    rows, cols = plane.shape
    tree_adders = 0
    tree_dffs = 0
    roots = np.zeros((width, cols), dtype=bool)
    for bit in range(width):
        live = bit_plane(plane, bit)
        for _ in range(depth):
            if live.shape[0] % 2:
                live = np.vstack([live, np.zeros((1, cols), dtype=bool)])
            a = live[0::2]
            b = live[1::2]
            tree_adders += int(np.count_nonzero(a & b))
            tree_dffs += int(np.count_nonzero(a ^ b))
            live = a | b
        roots[bit] = live[0] if live.shape[0] else np.zeros(cols, dtype=bool)
    return tree_adders, tree_dffs, roots


def _compact_plane_census(
    counts: np.ndarray, column_depths: np.ndarray, rows: int
) -> tuple[int, int, np.ndarray]:
    """Tree counts for the compact style from per-column-bit tap counts.

    ``counts`` has shape (width, cols).  Returns (tree_adders, tree_dffs,
    root liveness), where tree_dffs includes internal pass-throughs and
    root pads up to ``column_depths``.
    """
    depth_lut = np.array([0] + [compact_depth(k) for k in range(1, rows + 1)])
    internal_lut = np.array([compact_internal_dffs(k) for k in range(rows + 1)])
    live = counts > 0
    tree_adders = int(np.sum(np.maximum(counts - 1, 0)))
    internal = int(np.sum(internal_lut[counts]))
    pads = int(np.sum((column_depths[None, :] - depth_lut[counts]) * live))
    return tree_adders, internal + pads, live


def _chain_census(roots: np.ndarray) -> tuple[int, int, np.ndarray]:
    """Bit-combination chain counts; returns (adders, dffs, column liveness)."""
    width, cols = roots.shape
    chain_adders = 0
    chain_dffs = 0
    prev = np.zeros(cols, dtype=bool)
    for bit in reversed(range(width)):
        both = prev & roots[bit]
        either = prev ^ roots[bit]
        chain_adders += int(np.count_nonzero(both))
        chain_dffs += int(np.count_nonzero(either))
        prev = prev | roots[bit]
    return chain_adders, chain_dffs, prev


def census_plan(plan: MatrixPlan) -> CircuitCensus:
    """Compute the exact primitive census of the circuit a plan implies."""
    width = plan.plane_width
    column_depths = plan.column_depths()
    reference_depth = int(column_depths.max()) if column_depths.size else 0
    if plan.tree_style == "padded":
        p_adders, p_tree_dffs, p_roots = _padded_plane_census(
            plan.split.positive, width, plan.full_depth
        )
        n_adders, n_tree_dffs, n_roots = _padded_plane_census(
            plan.split.negative, width, plan.full_depth
        )
    else:
        counts = plan.bit_tap_counts()
        p_adders, p_tree_dffs, p_roots = _compact_plane_census(
            counts[0], column_depths, plan.rows
        )
        n_adders, n_tree_dffs, n_roots = _compact_plane_census(
            counts[1], column_depths, plan.rows
        )
    p_chain_adders, p_chain_dffs, pos_live = _chain_census(p_roots)
    n_chain_adders, n_chain_dffs, neg_live = _chain_census(n_roots)
    subtractors = int(np.count_nonzero(pos_live & neg_live))
    subtract_dffs = int(np.count_nonzero(pos_live & ~neg_live))
    negators = int(np.count_nonzero(~pos_live & neg_live))
    any_live = pos_live | neg_live
    output_pad_dffs = int(np.sum((reference_depth - column_depths) * any_live))
    return CircuitCensus(
        rows=plan.rows,
        cols=plan.cols,
        input_width=plan.input_width,
        plane_width=width,
        result_width=plan.result_width,
        reference_depth=reference_depth,
        tree_style=plan.tree_style,
        ones=plan.split.total_ones(),
        positive=PlaneCensus(
            tree_adders=p_adders,
            tree_dffs=p_tree_dffs,
            chain_adders=p_chain_adders,
            chain_dffs=p_chain_dffs,
            live_roots=int(np.count_nonzero(p_roots)),
        ),
        negative=PlaneCensus(
            tree_adders=n_adders,
            tree_dffs=n_tree_dffs,
            chain_adders=n_chain_adders,
            chain_dffs=n_chain_dffs,
            live_roots=int(np.count_nonzero(n_roots)),
        ),
        subtractors=subtractors,
        subtract_dffs=subtract_dffs,
        negators=negators,
        output_pad_dffs=output_pad_dffs,
    )
