"""Public facade: one object from matrix to circuit, cost, and timing.

:class:`FixedMatrixMultiplier` is the library's main entry point.  It
compiles a fixed signed integer matrix ``V`` into the paper's spatial
bit-serial architecture and exposes every analysis the paper performs:

* exact functional multiplication (``multiply``),
* cycle-accurate gate-level simulation (``simulate``, small matrices),
* resource demand on the target FPGA (``resources``),
* Eq. 5 latency, the Fig. 11 frequency model, and the Fig. 12 power model,
* SystemVerilog emission (``to_verilog``).

Example::

    >>> import numpy as np
    >>> from repro import FixedMatrixMultiplier
    >>> mult = FixedMatrixMultiplier(np.array([[3, -1], [0, 2]]), input_width=4)
    >>> mult.multiply([1, 2]).tolist()
    [3, 3]
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.latency import batch_cycles, latency_cycles
from repro.core.plan import MatrixPlan, plan_matrix
from repro.core.stats import CircuitCensus, census_plan
from repro.fpga.device import FpgaDevice, XCVU13P
from repro.fpga.mapping import MappingRules, map_census
from repro.fpga.power import DEFAULT_POWER, PowerModel
from repro.fpga.report import ResourceReport
from repro.fpga.timing import DEFAULT_TIMING, TimingEstimate, TimingModel

__all__ = ["FixedMatrixMultiplier"]


class FixedMatrixMultiplier:
    """A fixed matrix compiled to the spatial bit-serial architecture."""

    def __init__(
        self,
        matrix: np.ndarray,
        input_width: int = 8,
        scheme: str = "pn",
        rng: np.random.Generator | None = None,
        device: FpgaDevice = XCVU13P,
        timing: TimingModel = DEFAULT_TIMING,
        power: PowerModel = DEFAULT_POWER,
        mapping: MappingRules | None = None,
        tree_style: str = "compact",
        plan: MatrixPlan | None = None,
    ) -> None:
        self.matrix = np.asarray(matrix, dtype=np.int64)
        self.device = device
        self.timing = timing
        self.power = power
        self.mapping = mapping or MappingRules()
        if plan is not None:
            # Adopt a precomputed plan (e.g. from repro.serve's compile
            # cache) instead of re-planning; the plan wins over the
            # input_width/scheme/tree_style arguments.  Verified against
            # the matrix so a stale plan cannot silently serve wrong math.
            if not np.array_equal(plan.matrix(), self.matrix):
                raise ValueError("supplied plan does not implement this matrix")
            self.plan: MatrixPlan = plan
        else:
            self.plan = plan_matrix(
                self.matrix,
                input_width=input_width,
                scheme=scheme,
                rng=rng,
                tree_style=tree_style,
            )

    # -- structural properties ---------------------------------------------

    @property
    def rows(self) -> int:
        return self.plan.rows

    @property
    def cols(self) -> int:
        return self.plan.cols

    @property
    def input_width(self) -> int:
        return self.plan.input_width

    @property
    def weight_width(self) -> int:
        return self.plan.nominal_weight_width

    @property
    def scheme(self) -> str:
        return self.plan.split.scheme

    @property
    def ones(self) -> int:
        """Set bits across the recoded P/N planes — the cost driver."""
        return self.plan.split.total_ones()

    @cached_property
    def census(self) -> CircuitCensus:
        return census_plan(self.plan)

    @cached_property
    def resources(self) -> ResourceReport:
        return map_census(self.census, self.mapping)

    def fits_device(self) -> bool:
        r = self.resources
        return self.device.fits(r.luts, r.ffs, r.lutrams)

    # -- performance models --------------------------------------------------

    def latency_cycles(self) -> int:
        """Eq. 5 latency in cycles."""
        return latency_cycles(self.input_width, self.weight_width, self.rows)

    def batch_cycles(self, batch: int) -> int:
        return batch_cycles(self.input_width, self.weight_width, self.rows, batch)

    def timing_estimate(self, pipelined: bool = False) -> TimingEstimate:
        return self.timing.estimate(
            self.resources.luts,
            self.rows,
            self.device,
            pipelined=pipelined,
            fanout=self.ones / self.rows,
        )

    def fmax_hz(self, pipelined: bool = False) -> float:
        return self.timing_estimate(pipelined).fmax_hz

    def latency_s(self, batch: int = 1, pipelined: bool = False) -> float:
        estimate = self.timing_estimate(pipelined)
        cycles = self.batch_cycles(batch) + estimate.extra_pipeline_cycles
        return cycles / estimate.fmax_hz

    def latency_ns(self, batch: int = 1, pipelined: bool = False) -> float:
        return self.latency_s(batch, pipelined) * 1e9

    def power_w(self, pipelined: bool = False) -> float:
        """Total power when clocked at the achievable Fmax (Fig. 12)."""
        return self.power.total_w(self.ones, self.fmax_hz(pipelined))

    # -- functional paths -----------------------------------------------------

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Exact integer product ``a^T V`` (functional reference path).

        Falls back to arbitrary-precision Python integers when the serial
        result is too wide for int64 accumulation (possible with very
        wide weights *and* inputs on large matrices).
        """
        a = np.asarray(vector, dtype=np.int64)
        if a.ndim != 1 or a.shape[0] != self.rows:
            raise ValueError(f"expected a vector of length {self.rows}")
        if self.plan.result_width > 62:
            exact = a.astype(object) @ self.matrix.astype(object)
            return np.array([int(v) for v in exact], dtype=object)
        return a @ self.matrix

    def multiply_batch(self, vectors: np.ndarray) -> np.ndarray:
        batch = np.asarray(vectors, dtype=np.int64)
        if batch.ndim != 2 or batch.shape[1] != self.rows:
            raise ValueError(f"expected vectors of shape (batch, {self.rows})")
        if self.plan.result_width > 62:
            return np.stack([self.multiply(row) for row in batch])
        return batch @ self.matrix

    def build_circuit(self):
        """Instantiate the gate-level netlist (import deferred: heavy)."""
        from repro.hwsim.builder import build_circuit

        return build_circuit(self.plan)

    def simulate(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Cycle-accurate gate-level product (small matrices)."""
        return self.build_circuit().multiply(vector)

    def to_verilog(self, module_name: str = "fixed_matrix_mult") -> str:
        """Emit synthesizable SystemVerilog for this multiplier."""
        from repro.rtl.emitter import emit_verilog

        return emit_verilog(self.plan, module_name)

    # -- reporting --------------------------------------------------------------

    def utilization_report(self) -> str:
        """Vivado-style utilization/timing/power report for this design."""
        from repro.fpga.report_text import utilization_report

        return utilization_report(
            self.census,
            self.resources,
            self.device,
            fmax_hz=self.fmax_hz(),
            power_w=self.power_w(),
        )

    def summary(self) -> str:
        r = self.resources
        est = self.timing_estimate()
        lines = [
            f"FixedMatrixMultiplier {self.rows}x{self.cols} "
            f"(weights s{self.weight_width}, inputs s{self.input_width}, "
            f"scheme={self.scheme})",
            f"  ones:        {self.ones}",
            f"  LUTs:        {r.luts}",
            f"  FFs:         {r.ffs}",
            f"  LUTRAMs:     {r.lutrams}",
            f"  SLR span:    {est.slr_span}",
            f"  Fmax:        {est.fmax_hz / 1e6:.0f} MHz",
            f"  latency:     {self.latency_cycles()} cycles = "
            f"{self.latency_ns():.1f} ns",
            f"  power:       {self.power_w():.1f} W",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"FixedMatrixMultiplier(rows={self.rows}, cols={self.cols}, "
            f"scheme={self.scheme!r}, ones={self.ones})"
        )
