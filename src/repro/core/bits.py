"""Two's-complement bit streams and popcount utilities.

The bit-serial architecture of the paper streams integers least-significant
bit first.  Everything in this module therefore uses the *LSb-first*
convention: ``bits[0]`` is the least significant bit.

Weights travel through the compiler as *unsigned* matrices (the signed case
is handled by the positive/negative split in :mod:`repro.core.split`), while
the streamed activations are signed two's-complement values that are
sign-extended for the duration of the computation (Sec. III of the paper).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "unsigned_range",
    "signed_range",
    "to_unsigned_bits",
    "from_unsigned_bits",
    "to_twos_complement_bits",
    "from_twos_complement_bits",
    "sign_extended_stream",
    "decode_twos_complement_stream",
    "popcount",
    "matrix_popcount",
    "bit_plane",
    "bit_planes",
    "min_bits_unsigned",
]


def unsigned_range(width: int) -> tuple[int, int]:
    """Inclusive ``(lo, hi)`` range of unsigned integers of ``width`` bits."""
    _check_width(width)
    return 0, (1 << width) - 1


def signed_range(width: int) -> tuple[int, int]:
    """Inclusive ``(lo, hi)`` range of two's-complement ints of ``width`` bits."""
    _check_width(width)
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def _check_width(width: int) -> None:
    if width < 1:
        raise ValueError(f"bit width must be >= 1, got {width}")


def to_unsigned_bits(value: int, width: int) -> list[int]:
    """Encode a non-negative integer as ``width`` bits, LSb first.

    >>> to_unsigned_bits(6, 4)
    [0, 1, 1, 0]
    """
    _check_width(width)
    value = int(value)
    lo, hi = unsigned_range(width)
    if not lo <= value <= hi:
        raise ValueError(f"{value} does not fit in u{width} [{lo}, {hi}]")
    return [(value >> i) & 1 for i in range(width)]


def from_unsigned_bits(bits: list[int]) -> int:
    """Decode an LSb-first unsigned bit list back to an integer."""
    return sum(int(b) << i for i, b in enumerate(bits))


def to_twos_complement_bits(value: int, width: int) -> list[int]:
    """Encode a signed integer as ``width`` two's-complement bits, LSb first.

    >>> to_twos_complement_bits(-3, 4)
    [1, 0, 1, 1]
    """
    _check_width(width)
    value = int(value)
    lo, hi = signed_range(width)
    if not lo <= value <= hi:
        raise ValueError(f"{value} does not fit in s{width} [{lo}, {hi}]")
    return [(value >> i) & 1 for i in range(width)]


def from_twos_complement_bits(bits: list[int]) -> int:
    """Decode an LSb-first two's-complement bit list back to an integer."""
    if not bits:
        raise ValueError("cannot decode an empty bit list")
    magnitude = from_unsigned_bits(bits[:-1])
    sign = int(bits[-1])
    return magnitude - (sign << (len(bits) - 1))


def sign_extended_stream(value: int, width: int, length: int) -> list[int]:
    """Two's-complement stream of ``length`` bits with sign extension.

    This is the exact sequence an input shift register presents to the
    reduction tree: ``width`` value bits LSb first, then the sign bit
    repeated until ``length`` bits have been emitted ("we sign extend the
    input a from the shift register until the computation has finished").
    """
    if length < width:
        raise ValueError(f"stream length {length} shorter than width {width}")
    bits = to_twos_complement_bits(value, width)
    return bits + [bits[-1]] * (length - width)


def decode_twos_complement_stream(stream: list[int], width: int) -> int:
    """Decode the first ``width`` bits of a serial stream as two's complement."""
    if len(stream) < width:
        raise ValueError(f"stream of {len(stream)} bits shorter than {width}")
    return from_twos_complement_bits(list(stream[:width]))


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    value = int(value)
    if value < 0:
        raise ValueError("popcount is defined on non-negative integers")
    return value.bit_count()


def matrix_popcount(matrix: np.ndarray, width: int | None = None) -> int:
    """Total number of set bits across a non-negative integer matrix.

    This is the paper's cost driver: "the cost should be proportional to the
    number of bits set".  ``width`` only validates that entries fit.
    """
    arr = np.asarray(matrix)
    if arr.size == 0:
        return 0
    if np.any(arr < 0):
        raise ValueError("matrix_popcount expects a non-negative matrix")
    if width is not None:
        hi = unsigned_range(width)[1]
        if np.any(arr > hi):
            raise ValueError(f"matrix entries exceed u{width}")
    arr = arr.astype(np.uint64)
    total = 0
    while np.any(arr):
        total += int(np.count_nonzero(arr & np.uint64(1)))
        arr >>= np.uint64(1)
    return total


def bit_plane(matrix: np.ndarray, bit: int) -> np.ndarray:
    """Boolean plane selecting entries whose ``bit``-th bit is set."""
    if bit < 0:
        raise ValueError(f"bit index must be >= 0, got {bit}")
    arr = np.asarray(matrix)
    if np.any(arr < 0):
        raise ValueError("bit_plane expects a non-negative matrix")
    return ((arr.astype(np.int64) >> bit) & 1).astype(bool)


def bit_planes(matrix: np.ndarray, width: int) -> list[np.ndarray]:
    """All ``width`` boolean bit planes of a non-negative matrix, LSb first."""
    _check_width(width)
    return [bit_plane(matrix, b) for b in range(width)]


def min_bits_unsigned(value: int) -> int:
    """Minimum number of bits needed to store a non-negative integer."""
    value = int(value)
    if value < 0:
        raise ValueError("min_bits_unsigned expects a non-negative integer")
    return max(1, value.bit_length())
