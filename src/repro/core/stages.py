"""Compile-pipeline stage counters.

The matrix-to-hardware path is an explicit four-stage pipeline with a
serializable artifact at every boundary::

    matrix --plan--> MatrixPlan --build--> Netlist --lower--> LoweredKernel
                                                                  --fuse--> FusedKernel

Each stage is instrumented with a process-global counter so callers can
*prove* which stages ran — the warm-start contract of the serve layer's
compile cache ("a kernel-cache hit performs zero ``build``/``lower``
work") is asserted against these counters by tests and by
``benchmarks/bench_compile_cold_start.py``, not inferred from timings.

Counted stages:

* ``"plan"`` — :func:`repro.core.plan.plan_matrix` (recoding + widths);
* ``"build"`` — :func:`repro.hwsim.builder.build_circuit` (netlist
  construction);
* ``"lower"`` — :func:`repro.hwsim.fast.lower` (netlist to flat
  index/opcode arrays);
* ``"fuse"`` — :func:`repro.hwsim.fused.fuse` (kernel topology to the
  static CSD shift-add schedule the cycle-loop-free engine executes);
* ``"codegen"`` — :func:`repro.hwsim.codegen.generate_source` (fused
  schedule to specialized numpy executor source; cached as a
  ``.codegen.py`` artifact so warm deploys skip it).

The registry is intentionally open: any future stage (RTL emission,
place-and-route modelling) can count itself without touching this
module.
"""

from __future__ import annotations

import threading
from collections import Counter

__all__ = ["StageCounters", "STAGES"]


class StageCounters:
    """Thread-safe monotonic counters, one per named pipeline stage."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Counter[str] = Counter()

    def increment(self, stage: str, n: int = 1) -> None:
        """Record ``n`` executions of ``stage``."""
        with self._lock:
            self._counts[stage] += n

    def count(self, stage: str) -> int:
        with self._lock:
            return self._counts[stage]

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Per-stage growth relative to an earlier :meth:`snapshot`.

        Stages absent from both sides are omitted; a stage that never
        fired in the interval reports 0 only if it existed before.
        """
        now = self.snapshot()
        keys = set(now) | set(since)
        return {k: now.get(k, 0) - since.get(k, 0) for k in keys}

    def reset(self) -> None:
        """Zero every counter (test isolation only; production code
        should use :meth:`snapshot` + :meth:`delta` instead)."""
        with self._lock:
            self._counts.clear()


#: Process-global pipeline counters; see the module docstring.
STAGES = StageCounters()
