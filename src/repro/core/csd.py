"""Canonical Signed Digit (CSD) recoding — Sec. V / Listing 1 of the paper.

CSD decomposes an unsigned integer into a difference ``P - N`` of two
unsigned integers whose combined popcount is no larger (usually smaller)
than the original.  Because the multiplier's hardware cost is the number of
set bits, CSD directly reduces LUT count (~17% for uniform 8-bit weights).

Two recoders are provided:

* :func:`convert_to_csd` — a faithful re-implementation of the paper's
  Listing 1, including the coin flip that balances length-2 chains (the
  substitution of a length-2 chain "has no benefit and no detriment", so the
  paper randomizes it).
* :func:`convert_to_naf` — the textbook non-adjacent form, a strictly
  canonical minimal-weight recoding (Avizienis 1961); provided as the
  "optional extension" path and used by tests as a lower-bound oracle.

Digit vectors use the LSb-first convention and digits in ``{-1, 0, +1}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bits import to_unsigned_bits

__all__ = [
    "convert_to_csd",
    "convert_to_naf",
    "digits_to_value",
    "digits_to_pn",
    "csd_value",
    "csd_variants",
    "CsdMatrices",
    "csd_split_unsigned",
    "naf_split_unsigned",
]


def _convert_with_coins(num_bin_list: list[int], coin) -> list[int]:
    """Listing 1 core with an injectable coin for length-2 chains.

    ``coin()`` returns a truthy value to perform the +1/-1 substitution on
    a length-2 chain.  The public entry points wrap this with either an RNG
    (paper behaviour) or a scripted outcome sequence (variant enumeration).
    """
    local_list = [int(b) for b in num_bin_list]
    for bit in local_list:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit}")
    target = [0] * (len(local_list) + 1)
    local_list.reverse()
    chain_start = -1
    for i in range(len(target)):
        if i < len(local_list):
            bit = local_list[i]
        else:
            bit = 0
        if bit == 0:
            if chain_start == -1:
                target[i] = 0
            else:
                chain_length = i - chain_start
                if chain_length == 1:
                    target[chain_start] = 1
                elif chain_length == 2:
                    if coin():
                        target[chain_start] = -1
                        target[i] = 1
                    else:
                        target[chain_start] = 1
                        target[i - 1] = 1
                else:
                    target[chain_start] = -1
                    target[i] = 1
                chain_start = -1
        else:
            if chain_start == -1:
                chain_start = i
    target.reverse()
    return target


def convert_to_csd(
    num_bin_list: list[int], rng: np.random.Generator | None = None
) -> list[int]:
    """Recode an MSb-first bit list into signed digits (paper Listing 1).

    ``num_bin_list`` is an MSb-first list of 0/1 bits (the paper passes a
    binary string-like list).  The result is an MSb-first digit list one
    element *longer* than the input ("the bit-width of the decomposition is
    one wider than the original").

    The algorithm scans LSb→MSb for runs ("chains") of consecutive ones:

    * chain of length 1 — left alone;
    * chain of length 2 — replaced with ``+1/-1`` on a coin flip, since the
      substitution neither helps nor hurts;
    * chain of length >= 3 — replaced by ``+1`` one past the chain's MSb and
      ``-1`` at the chain's LSb (``0b0111 -> +1000 -0001``).

    ``rng`` drives the coin flip; pass a seeded generator for deterministic
    output (``None`` uses a fixed default seed so results are reproducible).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    return _convert_with_coins(num_bin_list, lambda: bool(rng.integers(0, 2)))


def csd_variants(value: int, width: int) -> list[tuple[int, int]]:
    """All equally-likely ``(P, N)`` outcomes of Listing 1 for one value.

    A value with ``k`` length-2 chains has ``2**k`` coin-flip outcomes; the
    paper's randomized algorithm draws one uniformly.  Enumerating them
    lets :func:`csd_split_unsigned` recode large matrices by unique value
    with an identical output distribution.
    """
    bits_msb_first = list(reversed(to_unsigned_bits(value, width)))
    coin_counter = [0]

    def counting_coin() -> bool:
        coin_counter[0] += 1
        return False

    _convert_with_coins(bits_msb_first, counting_coin)
    n_coins = coin_counter[0]
    variants = []
    for pattern in range(1 << n_coins):
        outcomes = iter(bool((pattern >> i) & 1) for i in range(n_coins))
        digits = _convert_with_coins(bits_msb_first, lambda: next(outcomes))
        variants.append(digits_to_pn(digits))
    return variants


def convert_to_naf(value: int, width: int | None = None) -> list[int]:
    """Non-adjacent form of a non-negative integer, MSb first.

    NAF is the canonical minimal-weight signed-digit representation: no two
    adjacent digits are nonzero, and no representation has fewer nonzero
    digits.  Output length is ``width + 1`` when ``width`` is given
    (matching :func:`convert_to_csd`'s convention), else minimal.
    """
    value = int(value)
    if value < 0:
        raise ValueError("convert_to_naf expects a non-negative integer")
    digits: list[int] = []
    v = value
    while v > 0:
        if v & 1:
            d = 2 - (v & 3)  # +1 if v % 4 == 1, -1 if v % 4 == 3
            digits.append(d)
            v -= d
        else:
            digits.append(0)
        v >>= 1
    if not digits:
        digits = [0]
    if width is not None:
        if len(digits) > width + 1:
            raise ValueError(f"{value} does not fit in {width + 1} NAF digits")
        digits += [0] * (width + 1 - len(digits))
    digits.reverse()
    return digits


def digits_to_value(digits: list[int]) -> int:
    """Value of an MSb-first signed digit list."""
    value = 0
    for d in digits:
        if d not in (-1, 0, 1):
            raise ValueError(f"digits must be in {{-1,0,1}}, got {d}")
        value = (value << 1) + d
    return value


def digits_to_pn(digits: list[int]) -> tuple[int, int]:
    """Split an MSb-first digit list into ``(positive, negative)`` integers.

    ``digits_to_value(digits) == positive - negative`` and the combined
    popcount of the pair equals the number of nonzero digits.
    """
    positive = 0
    negative = 0
    for d in digits:
        positive <<= 1
        negative <<= 1
        if d == 1:
            positive |= 1
        elif d == -1:
            negative |= 1
        elif d != 0:
            raise ValueError(f"digits must be in {{-1,0,1}}, got {d}")
    return positive, negative


def csd_value(value: int, width: int, rng: np.random.Generator | None = None) -> tuple[int, int]:
    """CSD-recode one unsigned ``width``-bit value into ``(P, N)`` parts."""
    bits_msb_first = list(reversed(to_unsigned_bits(value, width)))
    digits = convert_to_csd(bits_msb_first, rng)
    return digits_to_pn(digits)


@dataclass(frozen=True)
class CsdMatrices:
    """Positive and negative unsigned matrices produced by CSD recoding.

    ``original == positive - negative`` holds element-wise, and
    ``width`` is the unsigned bit width of the recoded planes (one more
    than the input width).
    """

    positive: np.ndarray
    negative: np.ndarray
    width: int


def csd_split_unsigned(
    matrix: np.ndarray, width: int, rng: np.random.Generator | None = None
) -> CsdMatrices:
    """Recode every element of an unsigned matrix with paper Listing 1.

    Returns unsigned ``positive``/``negative`` matrices of width
    ``width + 1`` such that ``matrix == positive - negative``.

    Implementation note: the recoding is deterministic except for one
    independent coin flip per length-2 chain, so elements are grouped by
    unique value and a variant is sampled uniformly per element — the same
    output distribution as running Listing 1 element-wise, but fast enough
    for the paper's large-scale sweeps (~10^6 elements).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    arr = np.asarray(matrix)
    if np.any(arr < 0):
        raise ValueError("csd_split_unsigned expects a non-negative matrix")
    positive = np.zeros_like(arr, dtype=np.int64)
    negative = np.zeros_like(arr, dtype=np.int64)
    flat = arr.ravel()
    pos_flat = positive.ravel()
    neg_flat = negative.ravel()
    for value in np.unique(flat):
        variants = csd_variants(int(value), width)
        indices = np.nonzero(flat == value)[0]
        if len(variants) == 1:
            p, n = variants[0]
            pos_flat[indices] = p
            neg_flat[indices] = n
        else:
            choices = rng.integers(0, len(variants), size=indices.size)
            p_options = np.array([v[0] for v in variants], dtype=np.int64)
            n_options = np.array([v[1] for v in variants], dtype=np.int64)
            pos_flat[indices] = p_options[choices]
            neg_flat[indices] = n_options[choices]
    return CsdMatrices(
        positive=pos_flat.reshape(arr.shape),
        negative=neg_flat.reshape(arr.shape),
        width=width + 1,
    )


def naf_split_unsigned(matrix: np.ndarray, width: int) -> CsdMatrices:
    """Recode every element with the optimal non-adjacent form.

    Extension beyond the paper: NAF is the provably minimal-weight signed
    digit representation, so this is a lower bound on what any chain-based
    recoder (including Listing 1) can achieve.  Deterministic — no coin
    flips — and vectorized by unique value like the CSD path.
    """
    arr = np.asarray(matrix)
    if np.any(arr < 0):
        raise ValueError("naf_split_unsigned expects a non-negative matrix")
    positive = np.zeros_like(arr, dtype=np.int64)
    negative = np.zeros_like(arr, dtype=np.int64)
    flat = arr.ravel()
    pos_flat = positive.ravel()
    neg_flat = negative.ravel()
    for value in np.unique(flat):
        p, n = digits_to_pn(convert_to_naf(int(value), width))
        indices = np.nonzero(flat == value)[0]
        pos_flat[indices] = p
        neg_flat[indices] = n
    return CsdMatrices(
        positive=pos_flat.reshape(arr.shape),
        negative=neg_flat.reshape(arr.shape),
        width=width + 1,
    )
