"""Matrix-to-circuit compilation plan.

A :class:`MatrixPlan` captures everything the downstream consumers need to
agree on a single circuit:

* the recoded ``(P, N)`` unsigned planes (:mod:`repro.core.split`),
* the streamed input bit width,
* the exact serial result width (how many output bits must be shifted out),
* the reduction-tree style and the resulting per-column pipeline depths.

Both the O(ones) combinatorial census (:mod:`repro.core.stats`) and the
gate-level netlist builder (:mod:`repro.hwsim.builder`) consume the same
plan, which is what lets tests assert that they describe the *same*
hardware.

Tree styles
-----------

``"padded"`` is the paper's Sec. III description taken literally: every
column-bit owns a balanced tree over all ``rows`` leaf slots, and a culled
node "is acting as a D-flip-flop".  This is simple and correct, but at
high sparsity the alignment flip-flops dominate (a lone tap in a
4096-leaf tree drags 12 DFFs behind it), which contradicts the paper's own
measured data — Fig. 10 shows FFs ≈ 2x LUTs up to 1.5M ones, impossible
if alignment flops scaled with ``taps * log2(rows)``.

``"compact"`` (the default) is the construction those measurements imply:
each column-bit reduces only its ``k`` live taps (depth ``ceil(log2 k)``),
the root is padded with a short DFF chain to the column's reference depth
so all bit positions stay weight-aligned, and each column's output is
padded to the design's global reference depth so every column decodes on
one schedule.  Alignment cost becomes a handful of flops per column-bit.

Both styles produce bit-identical results; tests verify this and DESIGN.md
records the discrepancy and its resolution.

Circuit structure implied by a plan (Sec. III of the paper):

* ``rows`` input shift registers, broadcast to every column;
* per plane (P, N), per column, per weight-bit position: a reduction tree
  whose nodes follow the culling rule — two live children: bit-serial
  adder; one: D flip-flop; none: absent;
* per plane, per column: a bit-combination chain from MSb to LSb.  Each
  link follows the same adder/DFF/absent rule.  The one-cycle register in
  each link provides the power-of-two weighting ("the result of a bit
  position is delayed accordingly"), and a DFF link keeps the weighting
  correct across missing bit positions;
* per column: a final bit-serial subtractor computing ``P - N`` (degrading
  to a DFF when N is empty, or a serial negator when P is empty);
* per column: an output shift register.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bits import signed_range
from repro.core.split import SplitMatrix, split_matrix
from repro.core.stages import STAGES

__all__ = [
    "MatrixPlan",
    "tree_depth",
    "compact_depth",
    "compact_internal_dffs",
    "signed_width_for_range",
    "plan_matrix",
    "TREE_STYLES",
]

TREE_STYLES = ("compact", "padded")


def tree_depth(rows: int) -> int:
    """Depth of the balanced reduction tree over ``rows`` leaf slots."""
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    return max(0, math.ceil(math.log2(rows)))


def compact_depth(taps: int) -> int:
    """Depth of a compact balanced tree over ``taps`` live leaves."""
    if taps < 1:
        raise ValueError(f"taps must be >= 1, got {taps}")
    size = taps
    depth = 0
    while size > 1:
        size = (size + 1) // 2
        depth += 1
    return depth


def compact_internal_dffs(taps: int) -> int:
    """Pass-through DFFs inside a compact tree (one per odd level size)."""
    if taps < 0:
        raise ValueError(f"taps must be >= 0, got {taps}")
    size = taps
    dffs = 0
    while size > 1:
        if size % 2:
            dffs += 1
        size = (size + 1) // 2
    return dffs


def signed_width_for_range(lo: int, hi: int) -> int:
    """Minimal two's-complement width that can hold every value in [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    width = 1
    while not (signed_range(width)[0] <= lo and hi <= signed_range(width)[1]):
        width += 1
    return width


@dataclass(frozen=True)
class MatrixPlan:
    """Fully-resolved compilation plan for one fixed matrix multiplier.

    Attributes:
        split: the recoded ``(P, N)`` planes.
        input_width: streamed activation bit width (two's complement).
        nominal_weight_width: the weight width of the original matrix,
            used by the paper's Eq. 5 latency model.
        result_width: exact number of serial output bits per column.
        tree_style: ``"compact"`` or ``"padded"`` (see module docstring).
    """

    split: SplitMatrix
    input_width: int
    nominal_weight_width: int
    result_width: int
    tree_style: str

    @property
    def rows(self) -> int:
        return self.split.rows

    @property
    def cols(self) -> int:
        return self.split.cols

    @property
    def plane_width(self) -> int:
        """Unsigned bit width of the P/N planes (CSD widens by one)."""
        return self.split.width

    @property
    def full_depth(self) -> int:
        """Depth of the padded-style tree: ``ceil(log2(rows))``."""
        return tree_depth(self.rows)

    def column_taps(self, plane: np.ndarray, col: int, bit: int) -> np.ndarray:
        """Row indices whose ``bit``-th weight bit is set in ``col``."""
        column = plane[:, col].astype(np.int64)
        return np.nonzero((column >> bit) & 1)[0]

    def bit_tap_counts(self) -> np.ndarray:
        """Tap counts ``k`` per (plane, bit, column); shape (2, width, cols).

        Plane index 0 is positive, 1 is negative.
        """
        width = self.plane_width
        counts = np.zeros((2, width, self.cols), dtype=np.int64)
        for p, plane in enumerate((self.split.positive, self.split.negative)):
            arr = plane.astype(np.int64)
            for bit in range(width):
                counts[p, bit] = ((arr >> bit) & 1).sum(axis=0)
        return counts

    def column_depths(self) -> np.ndarray:
        """Reference pipeline depth of each column's tree stage.

        For the padded style this is ``full_depth`` everywhere.  For the
        compact style it is the deepest live compact tree across both
        planes and all bit positions (0 for columns with no live taps).
        """
        if self.tree_style == "padded":
            return np.full(self.cols, self.full_depth, dtype=np.int64)
        counts = self.bit_tap_counts()
        depth_lut = _depth_lookup(self.rows)
        depths = depth_lut[counts]  # (2, width, cols)
        return depths.max(axis=(0, 1))

    def reference_depth(self) -> int:
        """Global tree-stage depth: every column is padded up to this."""
        depths = self.column_depths()
        return int(depths.max()) if depths.size else 0

    def decode_delta(self) -> int:
        """Cycle at which result bit 0 appears on every column output.

        Tree stage (reference depth) + one cycle to accumulate across bit
        positions + one cycle for the P-N subtraction.
        """
        return self.reference_depth() + 2

    def matrix(self) -> np.ndarray:
        """The signed matrix this plan implements."""
        return self.split.reconstruct()

    def fingerprint(self) -> str:
        """Stable content digest of this plan (see :mod:`repro.core.serialize`).

        Equal fingerprints mean equal planes, widths, and tree style —
        i.e. the builder would produce an identical circuit — which is
        what makes the digest a principled compile-cache key.
        """
        # Deferred import: serialize imports this module at top level.
        from repro.core.serialize import plan_fingerprint

        return plan_fingerprint(self)


def _depth_lookup(rows: int) -> np.ndarray:
    """Vectorized ``compact_depth`` table for tap counts 0..rows."""
    lut = np.zeros(rows + 1, dtype=np.int64)
    for k in range(1, rows + 1):
        lut[k] = compact_depth(k)
    return lut


def _exact_result_width(split: SplitMatrix, input_width: int) -> int:
    """Exact serial output width from per-column worst-case ranges.

    ``o_j = a . (P_j - N_j)``; with ``a`` two's complement of
    ``input_width`` bits the extremes are attained by assigning each
    ``a_i`` its max (for positive contribution) or min.  Arbitrary-
    precision Python integers are used for the extremes so wide
    configurations cannot silently overflow the bound computation.
    """
    a_lo, a_hi = signed_range(input_width)
    col_p = [int(s) for s in split.positive.sum(axis=0, dtype=object)]
    col_n = [int(s) for s in split.negative.sum(axis=0, dtype=object)]
    if not col_p:
        return 1
    hi = max(max(a_hi * p - a_lo * n for p, n in zip(col_p, col_n)), 0)
    lo = min(min(a_lo * p - a_hi * n for p, n in zip(col_p, col_n)), 0)
    return signed_width_for_range(lo, hi)


def plan_matrix(
    matrix: np.ndarray,
    input_width: int = 8,
    scheme: str = "pn",
    rng: np.random.Generator | None = None,
    tree_style: str = "compact",
) -> MatrixPlan:
    """Compile a signed integer matrix into a :class:`MatrixPlan`.

    Args:
        matrix: 2-D signed integer matrix ``V`` (rows x cols); the circuit
            computes ``o = a^T V`` for streamed vectors ``a``.
        input_width: two's-complement bit width of the streamed inputs.
        scheme: ``"pn"`` or ``"csd"`` recoding (Sec. III vs Sec. V).
        rng: generator for CSD coin flips (deterministic default).
        tree_style: ``"compact"`` (default) or ``"padded"``.
    """
    if input_width < 1:
        raise ValueError(f"input_width must be >= 1, got {input_width}")
    if tree_style not in TREE_STYLES:
        raise ValueError(f"unknown tree_style {tree_style!r}; use one of {TREE_STYLES}")
    STAGES.increment("plan")
    arr = np.asarray(matrix, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("cannot compile an empty matrix")
    split = split_matrix(arr, scheme=scheme, rng=rng)
    lo = int(arr.min())
    hi = int(arr.max())
    if lo < 0:
        nominal = signed_width_for_range(lo, hi)
    else:
        # Unsigned weight matrix: natural width of the largest entry.
        nominal = max(1, hi.bit_length())
    return MatrixPlan(
        split=split,
        input_width=input_width,
        nominal_weight_width=nominal,
        result_width=_exact_result_width(split, input_width),
        tree_style=tree_style,
    )
