"""Exact reference math used to validate every compute path.

These are the ground-truth implementations (dense numpy and scipy CSR)
that the spatial multiplier, the gate-level simulator, and the emitted RTL
are all checked against.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["gemv_exact", "gemm_exact", "to_csr", "csr_gemv"]


def gemv_exact(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """``o = a^T V`` (Eq. 3) in exact integer arithmetic."""
    v = np.asarray(matrix, dtype=np.int64)
    a = np.asarray(vector, dtype=np.int64)
    if v.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {v.shape}")
    if a.ndim != 1 or a.shape[0] != v.shape[0]:
        raise ValueError(f"vector length {a.shape} incompatible with {v.shape}")
    return a @ v


def gemm_exact(matrix: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Batched ``A V`` with exact integer arithmetic; rows are vectors."""
    v = np.asarray(matrix, dtype=np.int64)
    a = np.asarray(vectors, dtype=np.int64)
    if a.ndim != 2 or a.shape[1] != v.shape[0]:
        raise ValueError(f"batch shape {a.shape} incompatible with {v.shape}")
    return a @ v


def to_csr(matrix: np.ndarray) -> sp.csr_matrix:
    """Compressed sparse row form (the format the GPU baselines index)."""
    return sp.csr_matrix(np.asarray(matrix))


def csr_gemv(csr: sp.csr_matrix, vector: np.ndarray) -> np.ndarray:
    """``a^T V`` through the CSR representation (cross-validation path)."""
    a = np.asarray(vector)
    if a.ndim != 1 or a.shape[0] != csr.shape[0]:
        raise ValueError(f"vector length {a.shape} incompatible with {csr.shape}")
    return np.asarray((csr.T @ a)).ravel()
