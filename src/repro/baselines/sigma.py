"""Cycle-approximate SIGMA simulator (Sec. VII-B of the paper).

**Substitution notice.** The paper used the SIGMA authors' cycle-accurate
simulator (Qin et al., HPCA 2020).  That simulator is not redistributable,
so this module re-implements SIGMA's execution model at cycle granularity
from its published architecture:

* a 128x128 grid of processing elements (16384 PEs) behind a Benes
  distribution network and log-depth reduction trees (Flex-DPEs);
* only *nonzero* weights are mapped to PEs ("The advantage of SIGMA is
  that it only maps non-zero weight and activation pairs to PEs");
* when the nonzeros exceed the PE grid the computation is **tiled**: each
  tile's stationary weights are streamed in from SRAM, and partial sums
  are spilled and re-read across tiles ("This invokes extra SRAM use and
  transitions SIGMA into the memory-bound region, where it sees linear
  scaling");
* the paper clocks SIGMA at 1 GHz ("To approximate process technology
  node differences and the change to int8 from fp16, we assume that SIGMA
  can be clocked at 1GHz") with the weight matrix stationary and inputs
  streamed to minimize latency.

The cycle accounting below reproduces those regimes; per-phase
coefficients (fill bandwidth, per-tile overhead, pipeline depths) are
calibrated so the paper's anchor comparisons hold: nanosecond-scale
latency while the nonzeros fit the grid, a worst-case FPGA advantage of
~4x near the tiling boundary, >20x at dimension 4096, and batching
saturating near 5x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SigmaConfig", "SigmaBreakdown", "SigmaSimulator"]


@dataclass(frozen=True)
class SigmaConfig:
    """Microarchitectural parameters of the simulated SIGMA instance.

    Defaults are calibrated against the paper's anchor comparisons (see
    module docstring); ``psum_elements_per_cycle`` is the combined
    spill-plus-reload throughput of the partial-sum SRAM at each tile
    boundary.
    """

    pe_rows: int = 128
    pe_cols: int = 128
    clock_hz: float = 1e9
    startup_cycles: int = 100
    fill_values_per_cycle: int = 256
    tile_overhead_cycles: int = 20
    input_elements_per_cycle: int = 128
    psum_elements_per_cycle: int = 32
    pipeline_cycles: int = 16

    @property
    def pe_count(self) -> int:
        return self.pe_rows * self.pe_cols


@dataclass(frozen=True)
class SigmaBreakdown:
    """Per-phase cycle accounting for one SIGMA invocation."""

    startup: int
    fill: int
    compute: int
    tiles: int
    total: int

    def latency_s(self, clock_hz: float) -> float:
        return self.total / clock_hz


class SigmaSimulator:
    """Tile-by-tile cycle simulation of SIGMA running a fixed sparse gemm."""

    def __init__(self, config: SigmaConfig | None = None) -> None:
        self.config = config or SigmaConfig()

    def tiles(self, nnz: int) -> int:
        """Number of PE-grid tiles needed for ``nnz`` stationary weights."""
        if nnz < 0:
            raise ValueError(f"nnz must be >= 0, got {nnz}")
        return max(1, math.ceil(nnz / self.config.pe_count))

    def _per_vector_cycles(self, dim: int, tiles: int) -> int:
        """Cycles to stream one input vector through all resident tiles.

        One input broadcast through the Benes network per vector, then per
        tile: the multiplier/reduction-tree pipeline plus the partial-sum
        spill-and-reload across the tile boundary.
        """
        cfg = self.config
        input_stream = math.ceil(dim / cfg.input_elements_per_cycle)
        per_tile = cfg.pipeline_cycles + math.ceil(dim / cfg.psum_elements_per_cycle)
        return input_stream + tiles * per_tile

    def simulate(self, dim: int, nnz: int, batch: int = 1) -> SigmaBreakdown:
        """Run the cycle model for a ``dim x dim`` matrix with ``nnz`` nonzeros."""
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if nnz > dim * dim:
            raise ValueError(f"nnz {nnz} exceeds matrix size {dim * dim}")
        cfg = self.config
        tiles = self.tiles(nnz)
        fill = 0
        remaining = nnz
        for _ in range(tiles):
            tile_nnz = min(remaining, cfg.pe_count)
            remaining -= tile_nnz
            fill += math.ceil(tile_nnz / cfg.fill_values_per_cycle)
            fill += cfg.tile_overhead_cycles
        compute = batch * self._per_vector_cycles(dim, tiles)
        total = cfg.startup_cycles + fill + compute
        return SigmaBreakdown(
            startup=cfg.startup_cycles,
            fill=fill,
            compute=compute,
            tiles=tiles,
            total=total,
        )

    def latency_s(self, dim: int, nnz: int, batch: int = 1) -> float:
        return self.simulate(dim, nnz, batch).latency_s(self.config.clock_hz)

    def latency_for_matrix_s(self, matrix: np.ndarray, batch: int = 1) -> float:
        arr = np.asarray(matrix)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"expected a square matrix, got {arr.shape}")
        return self.latency_s(arr.shape[0], int(np.count_nonzero(arr)), batch)

    def is_tiled(self, nnz: int) -> bool:
        """True once the nonzeros exceed the PE grid (memory-bound regime)."""
        return nnz > self.config.pe_count
