"""Comparison systems: GPU kernel models, the SIGMA simulator, exact math."""

from repro.baselines.gpu import CUSPARSE, OPTIMIZED_KERNEL, V100, GpuKernelModel
from repro.baselines.reference import csr_gemv, gemm_exact, gemv_exact, to_csr
from repro.baselines.sigma import SigmaBreakdown, SigmaConfig, SigmaSimulator
from repro.baselines.systolic import (
    SystolicArraySimulator,
    SystolicEstimate,
    SystolicModel,
)

__all__ = [
    "GpuKernelModel",
    "CUSPARSE",
    "OPTIMIZED_KERNEL",
    "V100",
    "SigmaSimulator",
    "SigmaConfig",
    "SigmaBreakdown",
    "SystolicArraySimulator",
    "SystolicModel",
    "SystolicEstimate",
    "gemv_exact",
    "gemm_exact",
    "to_csr",
    "csr_gemv",
]
