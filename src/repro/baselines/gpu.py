"""V100 sparse-kernel latency models (Sec. VII-A of the paper).

**Substitution notice.** The paper benchmarks a physical NVIDIA V100
running cuSPARSE and the Gale et al. "Sparse GPU Kernels for Deep
Learning" (the "Optimized Kernel").  No GPU is available to this
reproduction, so both libraries are modelled analytically.  The models
capture the regimes the paper's analysis rests on, with coefficients
calibrated against the speedups it reports:

* a **latency floor**: "all these techniques require the GPU to spawn many
  more threads than the arithmetic can handle [...] In the low-latency
  regime, these techniques introduce overhead which cannot be overcome" —
  kernel launch + scheduling puts a few microseconds under every call, so
  "the GPU cannot break the 1 microsecond barrier";
* a **work term** linear in nonzeros once utilized ("at 1024x1024, the GPU
  is utilized and is no longer latency-bound, so it begins to see linear
  scaling");
* cuSPARSE's indexing-heavy gemv gives it a much higher per-nonzero cost
  than the optimized kernel, whose row-merging also improves with
  dimension (modelled as throughput growing with sqrt(dim));
* **batching** is sublinear: the first vector pays the gemv cost, and each
  additional one only the streaming-limited marginal cost ("As the GPU
  becomes more utilized, it's able to overlap computation and memory").

Both kernels run FP16 ("Neither of these libraries support integer
arithmetic, so we are using FP16 as a best-case proxy").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GpuKernelModel", "CUSPARSE", "OPTIMIZED_KERNEL", "V100"]


@dataclass(frozen=True)
class GpuDevice:
    """Device-level facts used by the kernel models."""

    name: str
    process_nm: int
    tdp_w: float
    memory_bandwidth_gbs: float
    fp16_peak_tflops: float


V100 = GpuDevice(
    name="V100",
    process_nm=12,
    tdp_w=300.0,
    memory_bandwidth_gbs=900.0,
    fp16_peak_tflops=112.0,
)


@dataclass(frozen=True)
class GpuKernelModel:
    """Latency model for one sparse library on the V100.

    Attributes:
        name: library name as used in the paper's figures.
        floor_s: latency floor (launch + scheduling overhead).
        gemv_cost_per_nnz_s: per-nonzero cost of a single gemv at the
            reference dimension; this is the indexing-plus-compute rate.
        dim_scaling: if True, throughput improves as sqrt(dim/1024)
            (row-merging efficiency of the optimized kernel).
        marginal_cost_per_nnz_s: per-nonzero cost of each *additional*
            batched vector (SpMM streaming rate).
    """

    name: str
    floor_s: float
    gemv_cost_per_nnz_s: float
    dim_scaling: bool
    marginal_cost_per_nnz_s: float
    device: GpuDevice = V100

    def _work_cost_per_nnz(self, dim: int) -> float:
        if not self.dim_scaling:
            return self.gemv_cost_per_nnz_s
        factor = math.sqrt(max(1.0, dim / 1024.0))
        return self.gemv_cost_per_nnz_s / factor

    def gemv_latency_s(self, dim: int, density: float) -> float:
        """Mean latency of one sparse matrix-vector product."""
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        nnz = dim * dim * density
        return self.floor_s + nnz * self._work_cost_per_nnz(dim)

    def spmm_latency_s(self, dim: int, density: float, batch: int) -> float:
        """Latency of a sparse matrix times ``dim x batch`` dense matrix."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        nnz = dim * dim * density
        first = self.gemv_latency_s(dim, density)
        return first + (batch - 1) * nnz * self.marginal_cost_per_nnz_s

    def throughput_vectors_per_s(self, dim: int, density: float, batch: int) -> float:
        return batch / self.spmm_latency_s(dim, density, batch)


CUSPARSE = GpuKernelModel(
    name="cuSPARSE",
    floor_s=3.3e-6,
    gemv_cost_per_nnz_s=0.19e-9,
    dim_scaling=False,
    marginal_cost_per_nnz_s=0.004e-9,
)
"""cuSPARSE csrmv: heavy indexing, ~5 Gnnz/s effective gemv rate."""

OPTIMIZED_KERNEL = GpuKernelModel(
    name="Optimized Kernel",
    floor_s=3.2e-6,
    gemv_cost_per_nnz_s=0.02e-9,
    dim_scaling=True,
    marginal_cost_per_nnz_s=0.0002e-9,
)
"""Gale et al. sparse kernels: ~50 Gnnz/s at dim 1024, improving with dim."""
