"""Dense weight-stationary systolic array — the paper's introduction foil.

"Current ML accelerators use matrix multiplication as the basic building
block.  These matrix multiplication units are primarily: Dense [...]
Small [...] Two-operand." (Sec. I)  The TPU-style systolic array is the
canonical such unit; this module provides both:

* :class:`SystolicArraySimulator` — a *functional* cycle-stepped
  simulation of a weight-stationary MAC grid: weights preloaded into PEs,
  activations skewed in from the left, partial sums flowing down.  It
  computes real products and exposes per-cycle state, so tests verify it
  bit-exactly against numpy;
* :class:`SystolicModel` — the tiled-latency model for arbitrary matrix
  sizes: a fixed ``grid x grid`` array processes a large matrix as
  ``ceil(R/grid) x ceil(C/grid)`` tiles, paying a weight-load phase per
  tile.  Utilization on a sparse matrix equals its density — the dense
  unit multiplies every zero ("most of the computation performed in
  inference using the full matrix is wasted").

Together with the spatial multiplier these quantify the intro's argument:
indexing/tiling-free spatial sparsity versus dense generality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SystolicArraySimulator", "SystolicModel", "SystolicEstimate"]


class SystolicArraySimulator:
    """Functional weight-stationary systolic array (one tile).

    The array holds a ``rows x cols`` weight tile.  Activations enter
    skewed (row ``i`` delayed ``i`` cycles); each PE computes
    ``psum_out = psum_in + weight * activation`` per cycle and passes the
    activation right and the partial sum down.  Column ``j``'s result
    emerges ``rows + j`` cycles after streaming starts.
    """

    def __init__(self, weights: np.ndarray) -> None:
        arr = np.asarray(weights, dtype=np.int64)
        if arr.ndim != 2 or arr.size == 0:
            raise ValueError(f"weights must be a non-empty 2-D tile, got {arr.shape}")
        self.weights = arr
        self.rows, self.cols = arr.shape
        self.reset()

    def reset(self) -> None:
        """Clear in-flight activations and partial sums."""
        # activation[i][j]: the activation currently held at PE (i, j).
        self._activations = np.zeros((self.rows, self.cols), dtype=np.int64)
        # psums[i][j]: partial sum leaving PE (i, j) downward this cycle.
        self._psums = np.zeros((self.rows, self.cols), dtype=np.int64)
        self._cycle = 0

    @property
    def cycle(self) -> int:
        return self._cycle

    def step(self, incoming: np.ndarray) -> np.ndarray:
        """One array cycle: feed the left edge, return the bottom edge.

        ``incoming[i]`` is the activation entering row ``i`` this cycle
        (the caller applies the skew).  Returns the partial sums leaving
        the bottom of each column this cycle.
        """
        incoming = np.asarray(incoming, dtype=np.int64)
        if incoming.shape != (self.rows,):
            raise ValueError(f"need {self.rows} incoming activations")
        # Activations shift right (no wrap); new ones enter column 0.
        self._activations = np.hstack(
            [incoming[:, None], self._activations[:, :-1]]
        )
        # Partial sums shift down; each PE adds weight * activation.
        shifted = np.vstack(
            [np.zeros((1, self.cols), dtype=np.int64), self._psums[:-1]]
        )
        self._psums = shifted + self.weights * self._activations
        self._cycle += 1
        return self._psums[-1].copy()

    def multiply(self, vector: np.ndarray) -> np.ndarray:
        """Full ``a^T W`` through the array with correct skew and drain."""
        vector = np.asarray(vector, dtype=np.int64)
        if vector.shape != (self.rows,):
            raise ValueError(f"need a vector of length {self.rows}")
        self.reset()
        total_cycles = self.rows + self.cols  # fill + drain
        outputs = np.zeros(self.cols, dtype=np.int64)
        for cycle in range(total_cycles):
            incoming = np.zeros(self.rows, dtype=np.int64)
            for row in range(self.rows):
                if cycle == row:  # skew: row i enters at cycle i
                    incoming[row] = vector[row]
            bottom = self.step(incoming)
            # Column j's completed sum exits at cycle rows + j - 1 (0-based).
            for col in range(self.cols):
                if cycle == self.rows + col - 1:
                    outputs[col] = bottom[col]
        return outputs

    @property
    def latency_cycles(self) -> int:
        """Fill + drain latency for one vector through one tile."""
        return self.rows + self.cols


@dataclass(frozen=True)
class SystolicEstimate:
    """Tiled execution estimate for a large matrix on a fixed array."""

    grid: int
    row_tiles: int
    col_tiles: int
    weight_load_cycles: int
    compute_cycles: int
    total_cycles: int
    utilization: float

    def latency_s(self, clock_hz: float) -> float:
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        return self.total_cycles / clock_hz


@dataclass(frozen=True)
class SystolicModel:
    """Latency model for a dense ``grid x grid`` weight-stationary array.

    Defaults approximate a small TPU-like inference block: 128x128 MACs
    at 700 MHz with a weight-load port of one row per cycle.  Because the
    unit is two-operand ("the matrix and the vector as stored variables"),
    every tile's weights must be loaded before use — the cost the spatial
    design eliminates by baking weights into the fabric.
    """

    grid: int = 128
    clock_hz: float = 700e6
    weight_rows_per_cycle: int = 1

    def estimate(self, rows: int, cols: int, density: float, batch: int = 1) -> SystolicEstimate:
        """Tiled gemv/gemm latency for an ``rows x cols`` matrix."""
        if rows < 1 or cols < 1:
            raise ValueError("matrix dimensions must be >= 1")
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        row_tiles = math.ceil(rows / self.grid)
        col_tiles = math.ceil(cols / self.grid)
        tiles = row_tiles * col_tiles
        load_per_tile = math.ceil(self.grid / self.weight_rows_per_cycle)
        weight_load = tiles * load_per_tile
        # Per batch element, per tile: fill + drain (grid + grid cycles);
        # column tiles for the same rows can pipeline back to back.
        per_vector = row_tiles * col_tiles * (2 * self.grid)
        compute = batch * per_vector
        # A dense array multiplies zeros too: useful work fraction is the
        # density (zero-weight MACs are wasted).
        return SystolicEstimate(
            grid=self.grid,
            row_tiles=row_tiles,
            col_tiles=col_tiles,
            weight_load_cycles=weight_load,
            compute_cycles=compute,
            total_cycles=weight_load + compute,
            utilization=density,
        )

    def latency_s(self, rows: int, cols: int, density: float, batch: int = 1) -> float:
        return self.estimate(rows, cols, density, batch).latency_s(self.clock_hz)
